"""Benchmark: composed IncShrink ∘ DP-Sync deployments (Section 8).

Not a paper table/figure — the paper discusses the composition
analytically (Theorem 17) — but the natural extension experiment: how
much accuracy does owner-side update-pattern protection cost, and does
the composed error stay inside the theorem's envelope?
"""

from conftest import emit

from repro.experiments.composed import ComposedRunConfig, run_composed_experiment
from repro.experiments.reporting import format_table

N_STEPS = 100


def test_composed_dpsync(benchmark):
    def run_all():
        rows = []
        for owner, owner_eps in (
            ("every-step", 0.0),
            ("dp-timer", 2.0),
            ("dp-timer", 0.5),
            ("dp-ant", 1.0),
        ):
            cfg = ComposedRunConfig(
                owner_strategy=owner,
                owner_epsilon=owner_eps or 1.0,
                n_steps=N_STEPS,
                seed=1,
            )
            res = run_composed_experiment(cfg)
            label = owner if owner == "every-step" else f"{owner} (ε₁={owner_eps})"
            rows.append(
                [
                    label,
                    res.summary.avg_l1_error,
                    res.owner_max_gap,
                    res.total_epsilon,
                    res.theorem17_bound,
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        format_table(
            "Composed IncShrink ∘ DP-Sync (TPC-ds, server sDPTimer ε₂=1.5)",
            ["owner strategy", "avg L1", "max owner gap", "total ε", "Thm-17 bound"],
            rows,
        )
    )

    baseline = rows[0]
    for row in rows[1:]:
        # Every composed deployment stays inside its Theorem-17 envelope…
        assert row[1] < row[4]
        # …and pays additional privacy budget for the owner side.
        assert row[3] > baseline[3]
    # The pass-through owner has no logical gap at all.
    assert baseline[2] == 0
