"""Distributed scan fabric baseline — BENCH_dist.json.

Runs the same 3-aggregate GROUP BY dashboard scan over one fixed
synthetic 8-shard view through the ``remote`` backend against real
shard-worker OS processes on localhost — fleets of 1, 2, and 4 worker
daemons — and records, per configuration:

* the **measured scatter/merge host seconds** of a warm distributed
  query (shard shipping is a once-per-deployment cost and stays outside
  the timed region, exactly like pool spawning in ``BENCH_shard.json``),
  and the speedup vs the 1-worker fleet and vs the in-process thread
  baseline;
* the equivalence checks — byte-identical answers and identical gate
  totals against the in-process executor — which hold **everywhere**
  and are asserted unconditionally (the workers run the same kernel
  under the same shipped cost model);
* a **kill-a-worker-mid-query failover latency** record: with
  replication 2 and both daemons stalling scans (the test hook), one
  daemon is SIGKILLed while its scan reply is in flight; the query
  completes byte-identically off the replica, and the extra wall clock
  over a warm query is the measured failover cost.

Measured-speedup assertions are gated on the host having ≥ 4 usable
cores (a single-core runner cannot overlap worker processes); the JSON
always records the honest numbers plus ``degraded_host``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time as _time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.common.rng import spawn
from repro.common.types import Schema
from repro.core.view_def import JoinViewDefinition
from repro.dist import RemoteScanBackend, WorkerEndpoint
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import AggregateSpec, GroupBySpec, LogicalQuery
from repro.query.parallel import ParallelScanExecutor
from repro.query.rewrite import lower_to_view_scan
from repro.query.shard_workers import usable_cpus
from repro.server.sharding import ShardLayout
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_dist.json"
SRC_DIR = Path(__file__).resolve().parents[1] / "src"

FLEET_SIZES = (1, 2, 4)
N_SHARDS = 8
VIEW_ROWS = 600_000
WALL_REPEATS = 3
MIN_CPUS_FOR_SPEEDUP_ASSERTS = 4

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))


def _view_def() -> JoinViewDefinition:
    return JoinViewDefinition(
        name="bench",
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def _dashboard(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (0, 1, 2, 3)),
    )


def _fixed_view() -> MaterializedView:
    vd = _view_def()
    gen = np.random.default_rng(42)
    rows = gen.integers(0, 8, size=(VIEW_ROWS, vd.view_schema.width)).astype(
        np.uint32
    )
    flags = gen.integers(0, 2, size=VIEW_ROWS).astype(np.uint32)
    table = SharedTable.from_plain(vd.view_schema, rows, flags, spawn(5, "bench"))
    view = MaterializedView(vd.view_schema, layout=ShardLayout(N_SHARDS))
    view.append(table, count_as_update=False)
    return view


def _spawn_daemon(extra_env=None) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.match(r"shard worker listening on [\d.]+:(\d+)", line)
    assert match, f"unexpected daemon banner: {line!r}"
    return proc, int(match.group(1))


def _kill_all(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        proc.wait(timeout=10)


def _timed_scans(executor, view, plan):
    """One warm-up execute (ships shards / spawns nothing further), then
    WALL_REPEATS timed full scans.  Returns (answer, gates, seconds)."""
    runtime = MPCRuntime(seed=0)
    answer, _ = executor.execute(runtime, 0, view, plan)
    t0 = _time.perf_counter()
    for _ in range(WALL_REPEATS):
        answer, _ = executor.execute(runtime, 0, view, plan)
    measured = (_time.perf_counter() - t0) / WALL_REPEATS
    return answer, runtime.runs[-1].gates, measured


def _measure_failover(view, plan, baseline_answer) -> dict:
    """Warm 2-worker replication-2 fleet with stalling scans; SIGKILL one
    daemon mid-query and measure the completed query's extra latency."""
    stall_ms = 150
    daemons = [
        _spawn_daemon({"REPRO_DIST_SCAN_STALL_MS": str(stall_ms)})
        for _ in range(2)
    ]
    remote = RemoteScanBackend(
        [WorkerEndpoint("127.0.0.1", port) for _, port in daemons],
        replication=2,
        heartbeat_interval=0.5,
    ).start()
    executor = ParallelScanExecutor(backend="remote", remote=remote)
    try:
        runtime = MPCRuntime(seed=0)
        executor.execute(runtime, 0, view, plan)  # ship shards, warm all
        t0 = _time.perf_counter()
        warm_answer, _ = executor.execute(runtime, 0, view, plan)
        warm_seconds = _time.perf_counter() - t0
        assert warm_answer == baseline_answer

        result = {}

        def run_query():
            t_start = _time.perf_counter()
            answer, _ = executor.execute(MPCRuntime(seed=0), 0, view, plan)
            result["seconds"] = _time.perf_counter() - t_start
            result["answer"] = answer

        thread = threading.Thread(target=run_query)
        thread.start()
        _time.sleep(stall_ms / 1000.0 / 3)  # scan frames out, both stalling
        os.kill(daemons[0][0].pid, signal.SIGKILL)
        thread.join(timeout=120)
        assert not thread.is_alive(), "failover query hung"
        assert result["answer"] == baseline_answer
        assert remote.total_rescatters > 0, "the kill must have re-scattered"
        return {
            "stall_ms": stall_ms,
            "warm_query_seconds": warm_seconds,
            "killed_query_seconds": result["seconds"],
            "failover_latency_seconds": result["seconds"] - warm_seconds,
            "rescattered_tasks": remote.total_rescatters,
            "answer_matches": True,
        }
    finally:
        remote.close()
        _kill_all([proc for proc, _ in daemons])


def _run_distributed_scan() -> dict:
    vd = _view_def()
    plan = lower_to_view_scan(_dashboard(vd), vd)
    view = _fixed_view()

    # In-process baseline: the thread backend over the same 8 shards.
    thread_answer, thread_gates, thread_seconds = _timed_scans(
        ParallelScanExecutor(backend="thread"), view, plan
    )

    records = []
    one_worker_seconds = None
    for n_workers in FLEET_SIZES:
        daemons = [_spawn_daemon() for _ in range(n_workers)]
        remote = RemoteScanBackend(
            [WorkerEndpoint("127.0.0.1", port) for _, port in daemons],
            replication=min(2, n_workers),
            heartbeat_interval=1.0,
        ).start()
        try:
            answer, gates, measured = _timed_scans(
                ParallelScanExecutor(backend="remote", remote=remote),
                view,
                plan,
            )
        finally:
            remote.close()
            _kill_all([proc for proc, _ in daemons])
        if n_workers == 1:
            one_worker_seconds = measured
        records.append(
            {
                "n_workers": n_workers,
                "replication": min(2, n_workers),
                "n_shards": N_SHARDS,
                "measured_host_seconds": measured,
                "speedup_vs_1_worker": one_worker_seconds / measured,
                "speedup_vs_in_process_thread": thread_seconds / measured,
                "answers_match_in_process": answer == thread_answer,
                "gates_match_in_process": gates == thread_gates,
            }
        )

    failover = _measure_failover(view, plan, thread_answer)

    host_cpus = usable_cpus()
    by_workers = {r["n_workers"]: r for r in records}
    return {
        "benchmark": "distributed_scan",
        "view_rows": VIEW_ROWS,
        "n_shards": N_SHARDS,
        "group_by_cells": 4,
        "aggregates": 3,
        "host_cpus": host_cpus,
        "degraded_host": host_cpus < MIN_CPUS_FOR_SPEEDUP_ASSERTS,
        "in_process_thread_seconds": thread_seconds,
        "records": records,
        # Headline: measured scatter/merge speedup of the 4-worker fleet
        # over the 1-worker fleet (true multi-process parallelism minus
        # the wire round-trip).
        "measured_speedup_4_workers_vs_1": by_workers[4][
            "speedup_vs_1_worker"
        ],
        "measured_speedup_2_workers_vs_1": by_workers[2][
            "speedup_vs_1_worker"
        ],
        "failover": failover,
    }


def test_bench_distributed_scan(benchmark):
    result = benchmark.pedantic(_run_distributed_scan, rounds=1, iterations=1)

    # Equivalence at every fleet size: byte-identical answers, identical
    # gates vs the in-process executor.  Holds on any host.
    for record in result["records"]:
        assert record["answers_match_in_process"], record
        assert record["gates_match_in_process"], record
    assert result["failover"]["answer_matches"]
    assert result["failover"]["rescattered_tasks"] > 0
    # Failover re-runs (at most) one worker's batch: bounded by roughly
    # one extra stalled scan round, not a timeout-sized cliff.
    assert (
        result["failover"]["failover_latency_seconds"]
        < 10 * max(result["failover"]["warm_query_seconds"], 0.5)
    )

    if result["degraded_host"]:
        import warnings

        warnings.warn(
            f"host has only {result['host_cpus']} usable cpus (< "
            f"{MIN_CPUS_FOR_SPEEDUP_ASSERTS}): measured-speedup assertions "
            "skipped; BENCH_dist.json is marked degraded_host=true",
            stacklevel=1,
        )
    else:
        # Scatter/merge must actually parallelize across worker
        # processes: the 4-worker fleet beats the 1-worker fleet, and
        # adding workers never slows the fleet down.
        assert result["measured_speedup_4_workers_vs_1"] >= 1.4
        seconds = [r["measured_host_seconds"] for r in result["records"]]
        assert all(a * 1.1 >= b for a, b in zip(seconds, seconds[1:])), (
            f"fleet scaling regressed: {seconds}"
        )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    lines = [
        "distributed scan fabric baseline "
        f"({result['view_rows']} view rows x {result['n_shards']} shards, "
        f"{result['host_cpus']} host cpus)"
    ]
    lines.append(
        f"  in-process thread baseline: "
        f"{result['in_process_thread_seconds']*1e3:.1f} ms"
    )
    for r in result["records"]:
        lines.append(
            f"  {r['n_workers']} worker(s) (repl {r['replication']}): "
            f"{r['measured_host_seconds']*1e3:.1f} ms host "
            f"({r['speedup_vs_1_worker']:.2f}x vs 1 worker, "
            f"{r['speedup_vs_in_process_thread']:.2f}x vs in-process), "
            f"answers+gates identical: "
            f"{r['answers_match_in_process'] and r['gates_match_in_process']}"
        )
    f = result["failover"]
    lines.append(
        f"  failover: warm {f['warm_query_seconds']*1e3:.1f} ms -> killed "
        f"{f['killed_query_seconds']*1e3:.1f} ms "
        f"(+{f['failover_latency_seconds']*1e3:.1f} ms, "
        f"{f['rescattered_tasks']} task(s) re-scattered)"
    )
    lines.append(f"  -> recorded to {BENCH_PATH.name}")
    emit("\n".join(lines))
