"""Benchmark: Figure 9 — scaling experiments (50% … 4×).

Shape claim: total MPC time and total query time grow with the data
scale for both DP protocols — superlinear but polynomial (sorting
networks are n·log²n), demonstrating practical scalability rather than
explosion.
"""

import pytest
from conftest import emit

from repro.experiments.figure9 import format_figure9, run_figure9

SCALES = (0.5, 1.0, 2.0, 4.0)
N_STEPS = 100


@pytest.mark.parametrize("dataset", ["tpcds", "cpdb"])
def test_figure9(benchmark, dataset):
    results = benchmark.pedantic(
        run_figure9,
        kwargs={"dataset": dataset, "scales": SCALES, "n_steps": N_STEPS},
        rounds=1,
        iterations=1,
    )
    emit(format_figure9(dataset, results))

    for mode in ("dp-timer", "dp-ant"):
        mpc = [results[mode][s][0] for s in SCALES]
        query = [results[mode][s][1] for s in SCALES]
        # Monotone growth across the sweep's extremes.
        assert mpc[-1] > mpc[0]
        assert query[-1] > query[0]
        # Growth from 0.5× to 4× (8× data) stays polynomial: under
        # n² × polylog headroom.
        assert mpc[-1] / mpc[0] < 64 * 16
