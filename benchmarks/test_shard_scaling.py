"""Shard-scaling baseline of the parallel scan engine — BENCH_shard.json.

Runs the same 3-aggregate GROUP BY dashboard scan over one fixed
synthetic view at 1/2/4/8 shards, under **both** execution backends
(GIL-sharing thread pool and shared-memory process pool), and records,
per (backend, shard count):

* the **simulated wall clock** — the cost model's parallelism-aware
  estimate ``gates / (throughput × effective_workers)``, the number the
  planner prices shard counts with and experiments report as protocol
  runtime (the repo-wide definition of a protocol's wall clock);
* the **simulated throughput** (gates per simulated second) the lanes
  sustain together;
* the **measured host seconds** of the Python simulation itself plus
  the **measured wall-clock speedup vs the 1-shard serial baseline** of
  the same backend.  The view is sized to be genuinely CPU-bound
  (~0.6M rows, tens of milliseconds of numpy kernel per scan) so the
  measured numbers mean something.  The speedup/monotonicity
  *assertions* are gated on the host actually having ≥ 4 usable cores:
  the process backend cannot beat serial on a single-core runner, and
  pretending otherwise would just bake flakiness into CI.  The recorded
  JSON always carries the honest measurements and the ``host_cpus``
  they were taken on;
* the equivalence checks — byte-identical answers and identical gate
  totals at every shard count and backend — which hold **everywhere**,
  single-core hosts included, and are asserted unconditionally.

Plus the snapshot size delta between a 1-shard and a 4-shard deployment
of the same state (the v2 format stores per-shard tables — the delta is
bookkeeping, not data).

The recorded JSON is the regression baseline future PRs must beat (or at
least not quietly lose).
"""

from __future__ import annotations

import json
import tempfile
import time as _time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.common.rng import spawn
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import AggregateSpec, GroupBySpec, LogicalQuery
from repro.query.parallel import ParallelScanExecutor
from repro.query.rewrite import lower_to_view_scan
from repro.query.shard_workers import shutdown_process_backend, usable_cpus
from repro.server.database import IncShrinkDatabase, ViewRegistration
from repro.server.persistence import snapshot_database
from repro.server.sharding import ShardLayout
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"

SHARD_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
#: Large enough that one scan is tens of milliseconds of numpy kernel
#: time (CPU-bound), and that every shard at 8 shards clears the
#: process backend's auto-selection threshold.
VIEW_ROWS = 600_000
WALL_REPEATS = 3
#: Measured-speedup assertions need real cores to be meaningful.
MIN_CPUS_FOR_SPEEDUP_ASSERTS = 4

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))


def _view_def() -> JoinViewDefinition:
    return JoinViewDefinition(
        name="bench",
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def _dashboard(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (0, 1, 2, 3)),
    )


def _fixed_view(n_shards: int) -> MaterializedView:
    """The benchmark view: VIEW_ROWS identical synthetic rows, scattered."""
    vd = _view_def()
    gen = np.random.default_rng(42)
    rows = gen.integers(0, 8, size=(VIEW_ROWS, vd.view_schema.width)).astype(
        np.uint32
    )
    flags = gen.integers(0, 2, size=VIEW_ROWS).astype(np.uint32)
    table = SharedTable.from_plain(vd.view_schema, rows, flags, spawn(5, "bench"))
    view = MaterializedView(vd.view_schema, layout=ShardLayout(n_shards))
    view.append(table, count_as_update=False)
    return view


def _snapshot_bytes(n_shards: int, tmp_dir: str) -> int:
    """Snapshot one identically-fed deployment at the given shard count."""
    db = IncShrinkDatabase(total_epsilon=100.0, seed=3, n_shards=n_shards)
    db.register_view(ViewRegistration(_view_def(), mode="ep"))
    gen = np.random.default_rng(8)
    for t in (1, 2, 3):
        probe = gen.integers(0, 4, size=(6, 2)).astype(np.uint32)
        driver = gen.integers(0, 4, size=(6, 2)).astype(np.uint32)
        db.upload(
            t,
            {
                "orders": RecordBatch(PROBE_SCHEMA, probe).padded_to(8),
                "shipments": RecordBatch(DRIVER_SCHEMA, driver).padded_to(8),
            },
        )
        db.step(t)
    info = snapshot_database(db, Path(tmp_dir) / f"shards-{n_shards}.snap")
    return info.bytes_written


def _run_shard_scaling() -> dict:
    vd = _view_def()
    plan = lower_to_view_scan(_dashboard(vd), vd)

    records = []
    baseline_answer = None
    baseline_gates = None
    baseline_sim_wall = None
    try:
        for backend in BACKENDS:
            executor = ParallelScanExecutor(backend=backend)
            baseline_measured = None
            for k in SHARD_COUNTS:
                runtime = MPCRuntime(seed=0)
                view = _fixed_view(k)
                # Warm up: publish shared memory / spawn the pool outside
                # the timed region (both are once-per-deployment costs).
                answer, sim_wall = executor.execute(runtime, 0, view, plan)
                t0 = _time.perf_counter()
                for _ in range(WALL_REPEATS):
                    answer, sim_wall = executor.execute(runtime, 0, view, plan)
                measured = (_time.perf_counter() - t0) / WALL_REPEATS
                gates = runtime.runs[-1].gates
                if baseline_answer is None:
                    baseline_answer, baseline_gates, baseline_sim_wall = (
                        answer,
                        gates,
                        sim_wall,
                    )
                if k == 1:
                    baseline_measured = measured
                records.append(
                    {
                        "backend": backend,
                        "resolved_backend": executor.backend_for(view),
                        "n_shards": k,
                        "effective_workers": runtime.cost_model.effective_workers(k),
                        "total_gates": gates,
                        "simulated_wall_seconds": sim_wall,
                        "simulated_throughput_gates_per_s": gates / sim_wall,
                        "measured_host_seconds": measured,
                        "wall_clock_speedup_vs_1_shard": baseline_sim_wall
                        / sim_wall,
                        "measured_wall_clock_speedup_vs_1_shard": baseline_measured
                        / measured,
                        "answers_match_1_shard": answer == baseline_answer,
                        "gates_match_1_shard": gates == baseline_gates,
                        "shard_rows": list(view.shard_lengths()),
                    }
                )
    finally:
        shutdown_process_backend()

    with tempfile.TemporaryDirectory() as tmp_dir:
        snap_1 = _snapshot_bytes(1, tmp_dir)
        snap_4 = _snapshot_bytes(4, tmp_dir)

    by_key = {(r["backend"], r["n_shards"]): r for r in records}
    host_cpus = usable_cpus()
    return {
        "benchmark": "shard_scaling",
        "view_rows": VIEW_ROWS,
        "group_by_cells": 4,
        "aggregates": 3,
        "host_cpus": host_cpus,
        # Too few cores to assert measured speedups: the recorded
        # measured_* numbers are informational only on this host, and the
        # speedup/monotonicity asserts below were skipped.  Baseline
        # comparisons should not treat degraded-host measurements as a
        # regression (or an improvement) against a full-host baseline.
        "degraded_host": host_cpus < MIN_CPUS_FOR_SPEEDUP_ASSERTS,
        "records": records,
        # Headline: the parallelism-aware wall-clock speedup at 4 shards
        # (the acceptance bar of the sharding refactor: >= 2x).
        "wall_clock_speedup_4_shards": by_key[("thread", 4)][
            "wall_clock_speedup_vs_1_shard"
        ],
        "wall_clock_speedup_8_shards": by_key[("thread", 8)][
            "wall_clock_speedup_vs_1_shard"
        ],
        # Headline of the process backend: the *measured* speedup at 4
        # shards (the acceptance bar of the multi-core backend: >= 2.5x
        # on a host with >= 4 cores).
        "measured_speedup_process_4_shards": by_key[("process", 4)][
            "measured_wall_clock_speedup_vs_1_shard"
        ],
        "snapshot_bytes_1_shard": snap_1,
        "snapshot_bytes_4_shards": snap_4,
        "snapshot_bytes_delta": snap_4 - snap_1,
    }


def test_bench_shard_scaling(benchmark):
    result = benchmark.pedantic(_run_shard_scaling, rounds=1, iterations=1)

    # Equivalence at every (backend, shard count): same answers, same
    # total gates.  These hold on any host, single-core included.
    for record in result["records"]:
        assert record["answers_match_1_shard"], record
        assert record["gates_match_1_shard"], record
        shard_rows = record["shard_rows"]
        assert sum(shard_rows) == result["view_rows"]
        assert max(shard_rows) - min(shard_rows) <= 1
        # Simulated seconds are backend-independent by construction.
        thread_twin = next(
            r
            for r in result["records"]
            if r["backend"] == "thread" and r["n_shards"] == record["n_shards"]
        )
        assert record["simulated_wall_seconds"] == thread_twin[
            "simulated_wall_seconds"
        ]

    # The acceptance bar of the sharding refactor: >= 2x *simulated*
    # wall-clock speedup at 4 shards over 1 shard on the benchmark view.
    assert result["wall_clock_speedup_4_shards"] >= 2.0
    # Simulated wall clock is monotone non-increasing in the shard count.
    for backend in BACKENDS:
        walls = [
            r["simulated_wall_seconds"]
            for r in result["records"]
            if r["backend"] == backend
        ]
        assert all(a >= b for a, b in zip(walls, walls[1:]))

    # Measured speedups need real cores; on fewer the records stay
    # informational (a single-core host cannot overlap shard scans).
    if result["degraded_host"]:
        import warnings

        warnings.warn(
            f"host has only {result['host_cpus']} usable cpus (< "
            f"{MIN_CPUS_FOR_SPEEDUP_ASSERTS}): measured-speedup assertions "
            "skipped; BENCH_shard.json is marked degraded_host=true",
            stacklevel=1,
        )
    if result["host_cpus"] >= MIN_CPUS_FOR_SPEEDUP_ASSERTS:
        process_walls = [
            r["measured_host_seconds"]
            for r in result["records"]
            if r["backend"] == "process"
            and r["n_shards"] <= result["host_cpus"]
        ]
        assert all(a >= b for a, b in zip(process_walls, process_walls[1:])), (
            "measured host seconds must decrease monotonically with shard "
            f"count under the process backend, got {process_walls}"
        )
        assert result["measured_speedup_process_4_shards"] >= 2.5

    # The per-shard snapshot layout costs bookkeeping, not data: the
    # 4-shard snapshot stays within 25% of the single-shard one.
    assert result["snapshot_bytes_delta"] < 0.25 * result["snapshot_bytes_1_shard"]

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    lines = [
        "parallel shard-scaling baseline "
        f"({result['view_rows']} view rows, 3 aggregates x 4 groups, "
        f"{result['host_cpus']} host cpus)"
    ]
    for r in result["records"]:
        lines.append(
            f"  {r['backend']:>7} x{r['n_shards']}: "
            f"{r['simulated_wall_seconds']:.4f} s simulated "
            f"({r['wall_clock_speedup_vs_1_shard']:.2f}x), "
            f"{r['measured_host_seconds']*1e3:.1f} ms host "
            f"({r['measured_wall_clock_speedup_vs_1_shard']:.2f}x measured), "
            f"gates+answers identical: "
            f"{r['gates_match_1_shard'] and r['answers_match_1_shard']}"
        )
    lines.append(
        f"  snapshot bytes: {result['snapshot_bytes_1_shard']} (1 shard) -> "
        f"{result['snapshot_bytes_4_shards']} (4 shards, "
        f"delta {result['snapshot_bytes_delta']})"
    )
    lines.append(f"  -> recorded to {BENCH_PATH.name}")
    emit("\n".join(lines))
