"""Benchmark: Figure 6 — Sparse / Standard / Burst workloads.

Shape claims (Observation 5): with both protocols configured for the
*standard* rate, sDPTimer holds its accuracy better than sDPANT on
Sparse data (its schedule is workload-independent), while sDPANT adapts
better to Burst data; efficiency stays comparable across variants.
"""

import pytest
from conftest import emit

from repro.experiments.figure6 import format_figure6, run_figure6

SEEDS = (0, 1, 2)
N_STEPS = 160


@pytest.mark.parametrize("dataset", ["tpcds", "cpdb"])
def test_figure6(benchmark, dataset):
    results = benchmark.pedantic(
        run_figure6,
        kwargs={"dataset": dataset, "seeds": SEEDS, "n_steps": N_STEPS},
        rounds=1,
        iterations=1,
    )
    emit(format_figure6(dataset, results))

    timer = results["dp-timer"]
    ant = results["dp-ant"]

    # Density tracks error for the fixed-schedule timer: more data stuck
    # in the cache between updates on denser workloads.
    assert timer["burst"][0] > timer["standard"][0] > timer["sparse"][0]

    # Efficiency stays comparable across variants for both protocols
    # (the paper's Figures 6b/6d): same padded sizes, similar views.
    for mode in ("dp-timer", "dp-ant"):
        qets = [results[mode][v][1] for v in ("sparse", "standard", "burst")]
        assert max(qets) < 8 * max(min(qets), 1e-9)

    if dataset == "cpdb":
        # The relative-advantage flip of Observation 5 shows on the
        # high-rate, ω>1 workload: the timer's L1 penalty vs ANT is
        # smaller on Sparse than on Burst.  (On TPC-ds the sparse errors
        # are ≈1 row for both protocols — too small to order reliably;
        # see EXPERIMENTS.md.)
        timer_vs_ant_sparse = timer["sparse"][0] / max(ant["sparse"][0], 1e-9)
        timer_vs_ant_burst = timer["burst"][0] / max(ant["burst"][0], 1e-9)
        assert timer_vs_ant_sparse < timer_vs_ant_burst
