"""Benchmark: Table 2 — end-to-end comparison of all five candidates.

Paper values for orientation (our substrate is a smaller simulator; the
orderings and order-of-magnitude gaps are what must reproduce):

* DP protocols beat OTM on L1 by 50-126×; EP/NM are exact.
* DP protocols beat NM on QET by 7.8e3-1.5e5×; EP beats NM by 26-1366×.
* DP view sizes beat EP's by 113-304×.
"""

from conftest import emit

from repro.experiments.table2 import format_table2, run_table2

N_STEPS = 240


def test_table2(benchmark):
    results = benchmark.pedantic(
        run_table2, kwargs={"n_steps": N_STEPS}, rounds=1, iterations=1
    )
    emit(format_table2(results))

    for dataset in ("tpcds", "cpdb"):
        get = lambda mode: results[(dataset, mode)].summary  # noqa: E731

        # Accuracy: EP and NM exact; DP small; OTM worst.
        assert get("ep").avg_l1_error == 0
        assert get("nm").avg_l1_error == 0
        for dp in ("dp-timer", "dp-ant"):
            assert get(dp).avg_l1_error < get("otm").avg_l1_error / 5

        # Efficiency: NM ≫ EP ≫ DP; OTM free.
        assert get("nm").avg_qet_seconds > 10 * get("ep").avg_qet_seconds
        for dp in ("dp-timer", "dp-ant"):
            assert get("nm").avg_qet_seconds > 100 * get(dp).avg_qet_seconds
            assert get("ep").avg_qet_seconds > get(dp).avg_qet_seconds
        assert get("otm").avg_qet_seconds == 0

        # View sizes: DP views much smaller than EP's padded view.
        for dp in ("dp-timer", "dp-ant"):
            assert get(dp).avg_view_size_mb < get("ep").avg_view_size_mb

        # The realised privacy loss equals the configured ε = 1.5.
        for dp in ("dp-timer", "dp-ant"):
            eps = results[(dataset, dp)].realized_epsilon
            assert abs(eps - 1.5) < 1e-6
