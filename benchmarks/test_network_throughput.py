"""Network serving throughput + soak — the cross-boundary trajectory.

The serving benchmark (``test_serving_throughput.py``) measures the
runtime through in-process calls; this module drives the same deployment
**across the TCP service boundary** against the reactor front end, in
two parts:

``test_bench_network_throughput``
    One owner streams the workload through ``upload`` frames in three
    modes — PR 5-style sequential JSON, sequential binary, and the
    pipelined binary burst (``upload_many``) — then ``CLIENTS``
    concurrent analyst clients replay the standard query mix.  Every
    networked answer is checked against the in-process answer at the
    same watermark, and the three upload modes must produce identical
    answers at identical realized ε (the codec changes bytes on the
    wire, not results).

``test_bench_network_soak``
    ``NET_SOAK_CONNECTIONS`` concurrent connections (default 600; CI's
    short smoke uses 64) held open for ``NET_SOAK_SECONDS`` of sustained
    mixed load — paced stats/query requests from every connection plus a
    background uploader advancing the watermark — driven by a single
    ``selectors``-based client loop so the measurement harness does not
    fight the server for the GIL.  Records p50/p95/p99 latency, the
    max/min per-connection completion ratio (fairness), and overload
    retries.

Metric labels (the PR 5 file reported a bare ``queries_per_second`` from
the client timer next to ``observability.queries_per_second`` from
server busy-time — ambiguous, now split):

* ``client_qps`` / ``client_uploads_per_second`` — completed operations
  divided by **client-observed wall clock** (includes wire, framing,
  scheduling; this is what a user experiences).
* ``server_qps`` / ``server_uploads_per_second`` — the server's own
  counters divided by **server-side busy seconds** (pure execution
  time; always ≥ the client number, the gap is the wire tax).

Everything lands in ``BENCH_network.json`` at the repo root so future
PRs optimizing the wire path have an unambiguous baseline to beat.
"""

from __future__ import annotations

import errno
import json
import os
import random
import selectors
import socket
import threading
import time as _time
from pathlib import Path

from conftest import emit

from repro.experiments.harness import MultiViewRunConfig, build_multiview_deployment
from repro.net import protocol as wire
from repro.net.client import IncShrinkClient
from repro.net.server import NetworkServer
from repro.server.runtime import DatabaseServer

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_network.json"

DATASET = "tpcds"
N_STEPS = 16
UPLOAD_CYCLES = 5
CLIENTS = 4
QUERY_ROUNDS = 3

# The PR 5 thread-per-connection server's recorded uploads/s on this
# exact workload (BENCH_network.json in git history) — the baseline the
# reactor + binary codec must beat by ≥ 2×.
PR5_UPLOADS_PER_SECOND = 842.3

SOAK_CONNECTIONS = int(os.environ.get("NET_SOAK_CONNECTIONS", "600"))
SOAK_SECONDS = float(os.environ.get("NET_SOAK_SECONDS", "8"))


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _merge_bench(section: str, payload: dict) -> None:
    """Write ``payload`` under ``section`` without clobbering the other
    section (the two tests may run in either order, or alone)."""
    record: dict = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text(encoding="utf8"))
        except ValueError:
            record = {}
    # Keep only the labelled sections — the PR 5 file's ambiguous
    # top-level rates are superseded, not carried forward.
    record = {k: record[k] for k in ("throughput", "soak") if k in record}
    record["benchmark"] = "network_throughput"
    record[section] = payload
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf8")


# ---------------------------------------------------------------------------
# Part 1 — upload codec comparison + concurrent query throughput
# ---------------------------------------------------------------------------


def _upload_mode(mode: str) -> dict:
    """Stream the full workload in one upload mode on a fresh deployment.

    The **submit** clock stops when the last ``upload_ok`` is read (every
    step accepted into the ingest queue — the wire-path cost the codec
    and pipelining can change); the **drain** clock then covers the
    server applying the queue (bounded by MPC-sim ingestion, identical
    across codecs).  Returns both, plus bytes on the wire and the
    reference answers + realized ε so the caller can assert the codec
    changed the encoding, not the results.
    """
    config = MultiViewRunConfig(dataset=DATASET, n_steps=N_STEPS, seed=5)
    deployment = build_multiview_deployment(config)
    server = DatabaseServer(deployment.database)
    codec = "json" if mode == "json_sequential" else "binary"

    with NetworkServer(server) as net:
        host, port = net.address
        steps = deployment.workload.steps
        # Cycle the workload UPLOAD_CYCLES times with advancing step
        # times: a submit phase of N_STEPS frames lasts only a few
        # milliseconds, far too short to time against scheduler noise.
        schedule = [
            (cycle * N_STEPS + step.time, deployment.upload_items(step))
            for cycle in range(UPLOAD_CYCLES)
            for step in steps
        ]
        last_time = schedule[-1][0]
        with IncShrinkClient(host, port, name=f"owner-{mode}", codec=codec) as owner:
            t0 = _time.perf_counter()
            if mode == "binary_pipelined":
                owner.upload_many(schedule)
            else:
                for step_time, items in schedule:
                    owner.upload(step_time, items)
            submit_seconds = _time.perf_counter() - t0
            # Drain: poll until the ingest loop has applied everything.
            t0 = _time.perf_counter()
            deadline = t0 + 30.0
            while _time.perf_counter() < deadline:
                stats = owner.stats()
                if stats["last_time"] == last_time and not stats["queue_depth"]:
                    break
                _time.sleep(0.005)
            drain_seconds = _time.perf_counter() - t0
            negotiated = owner.codec
            bytes_sent = owner.bytes_sent
            bytes_received = owner.bytes_received

        watermark = server.last_time
        assert watermark == last_time
        answers = [
            server.query(q, time=watermark).answers for q in deployment.step_queries
        ]
        observability = server.observability()
    server.stop()

    assert negotiated == codec
    uploads = observability["uploads"]
    return {
        "mode": mode,
        "codec": negotiated,
        "upload_frames": len(schedule),
        "uploads": uploads,
        "client_submit_seconds": submit_seconds,
        "client_drain_seconds": drain_seconds,
        "client_uploads_per_second": uploads / submit_seconds,
        "client_applied_uploads_per_second": uploads
        / (submit_seconds + drain_seconds),
        "server_uploads_per_second": observability["uploads_per_second"],
        "bytes_sent": bytes_sent,
        "bytes_received": bytes_received,
        "_answers": answers,
        "_realized_epsilon": observability["realized_epsilon"],
    }


def _best_of(mode: str, repeats: int = 3) -> dict:
    """Best-of-N submit timing: a full submit phase lasts only a few
    milliseconds, so one scheduler hiccup can double it — the minimum is
    the representative codec cost (standard micro-benchmark practice)."""
    runs = [_upload_mode(mode) for _ in range(repeats)]
    return min(runs, key=lambda r: r["client_submit_seconds"])


def _run_network() -> dict:
    # Upload phase: same workload, three wire strategies.
    modes = [
        _best_of("json_sequential"),
        _best_of("binary_sequential"),
        _best_of("binary_pipelined"),
    ]
    reference = modes[0]
    for mode in modes[1:]:
        assert mode["_answers"] == reference["_answers"], mode["mode"]
        assert mode["_realized_epsilon"] == reference["_realized_epsilon"]
    codec_comparison = {
        mode["mode"]: {k: v for k, v in mode.items() if not k.startswith("_")}
        for mode in modes
    }
    codec_comparison["binary_vs_json_upload_bytes"] = (
        modes[1]["bytes_sent"] / reference["bytes_sent"]
    )
    codec_comparison["binary_pipelined_speedup"] = (
        modes[2]["client_uploads_per_second"]
        / reference["client_uploads_per_second"]
    )

    # Query phase: one ingested deployment, concurrent analysts.
    config = MultiViewRunConfig(dataset=DATASET, n_steps=N_STEPS, seed=5)
    deployment = build_multiview_deployment(config)
    server = DatabaseServer(deployment.database)

    with NetworkServer(server) as net:
        host, port = net.address
        with IncShrinkClient(host, port, name="owner") as owner:
            owner.upload_many(
                [(s.time, deployment.upload_items(s)) for s in deployment.workload.steps],
                wait=True,
            )
        watermark = server.last_time
        expected = {
            i: server.query(q, time=watermark).answers
            for i, q in enumerate(deployment.step_queries)
        }

        latencies: list[float] = []
        latency_lock = threading.Lock()
        client_errors: list[BaseException] = []

        def analyst_loop(index: int) -> None:
            try:
                with IncShrinkClient(host, port, name=f"bench-{index}") as c:
                    for _round in range(QUERY_ROUNDS):
                        for qi, query in enumerate(deployment.step_queries):
                            t_start = _time.perf_counter()
                            result = c.query(query, time=watermark)
                            elapsed = _time.perf_counter() - t_start
                            assert result.answers == expected[qi]
                            with latency_lock:
                                latencies.append(elapsed)
            except BaseException as exc:
                client_errors.append(exc)

        t0 = _time.perf_counter()
        threads = [
            threading.Thread(target=analyst_loop, args=(i,)) for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        query_seconds = _time.perf_counter() - t0
        assert not client_errors, client_errors

        observability = server.observability()
    server.stop()

    queries = len(latencies)
    return {
        "dataset": DATASET,
        "steps": N_STEPS,
        "clients": CLIENTS,
        "metric_labels": {
            "client_qps": "completed queries / client-observed wall clock",
            "server_qps": "server query counter / server-side busy seconds",
            "client_uploads_per_second": "accepted uploads / client submit "
            "wall clock (queue drain timed separately as "
            "client_drain_seconds; applied rate is "
            "client_applied_uploads_per_second)",
            "server_uploads_per_second": "server upload counter / server-side "
            "ingest busy seconds",
        },
        "queries": queries,
        "query_seconds": query_seconds,
        "client_qps": queries / query_seconds,
        "server_qps": observability["queries_per_second"],
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "codec_comparison": codec_comparison,
        "observability": observability,
    }


def test_bench_network_throughput(benchmark):
    result = benchmark.pedantic(_run_network, rounds=1, iterations=1)
    comparison = result["codec_comparison"]

    # Loose sanity floors (the recorded JSON is the real trajectory).
    assert result["client_qps"] > 1.0
    assert result["queries"] == CLIENTS * QUERY_ROUNDS * 4
    assert (
        0.0
        < result["latency_p50_ms"]
        <= result["latency_p95_ms"]
        <= result["latency_p99_ms"]
    )
    assert result["observability"]["queries"] >= result["queries"]
    assert result["observability"]["last_time"] == N_STEPS
    # The headline acceptance: the pipelined binary path submits the
    # same workload at ≥ 2× the PR 5 baseline's uploads/s.
    pipelined = comparison["binary_pipelined"]["client_uploads_per_second"]
    assert pipelined >= 2.0 * PR5_UPLOADS_PER_SECOND, comparison
    # Relative to sequential JSON on the *same* stack the gap is mostly
    # the per-frame round trip (recorded, loosely floored: on this
    # single-CPU container the ratio jitters around ~2×).
    assert comparison["binary_pipelined_speedup"] >= 1.2, comparison
    # And raw arrays are smaller than JSON int lists on the wire.
    assert comparison["binary_vs_json_upload_bytes"] < 1.0, comparison

    _merge_bench("throughput", result)

    json_rate = comparison["json_sequential"]["client_uploads_per_second"]
    pipe_rate = comparison["binary_pipelined"]["client_uploads_per_second"]
    emit(
        "network serving throughput (localhost wall clock)\n"
        f"  uploads  : json sequential {json_rate:.0f}/s -> binary pipelined "
        f"{pipe_rate:.0f}/s ({comparison['binary_pipelined_speedup']:.1f}x), "
        f"binary/json bytes {comparison['binary_vs_json_upload_bytes']:.2f}\n"
        f"  queries  : {result['queries']} across {CLIENTS} concurrent "
        f"clients, client {result['client_qps']:.1f} q/s "
        f"(server busy-time {result['server_qps']:.1f} q/s)\n"
        f"  latency  : p50 {result['latency_p50_ms']:.2f} ms, "
        f"p95 {result['latency_p95_ms']:.2f} ms, "
        f"p99 {result['latency_p99_ms']:.2f} ms per query frame\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )


# ---------------------------------------------------------------------------
# Part 2 — many-connection soak
# ---------------------------------------------------------------------------


class _SoakConn:
    """One soaking connection inside the selector-driven client loop."""

    __slots__ = (
        "sock",
        "decoder",
        "outbox",
        "state",
        "next_at",
        "sent_at",
        "first_sent_at",
        "completions",
        "retries",
        "requests",
        "failures",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.outbox = bytearray()
        self.state = "connecting"
        self.next_at = 0.0
        self.sent_at = 0.0
        self.first_sent_at = 0.0
        self.completions = 0
        self.retries = 0
        self.requests = 0
        self.failures: list[str] = []


def _run_soak(n_connections: int, duration: float) -> dict:
    rng = random.Random(7)
    config = MultiViewRunConfig(dataset=DATASET, n_steps=N_STEPS, seed=5)
    deployment = build_multiview_deployment(config)
    server = DatabaseServer(deployment.database)
    steps = deployment.workload.steps
    warm, live = steps[: N_STEPS // 2], steps[N_STEPS // 2 :]

    net = NetworkServer(
        server,
        max_connections=n_connections + 32,
        max_inflight=32,
        loop_threads=2,
        idle_timeout=max(60.0, 4 * duration),
    ).start()
    try:
        host, port = net.address
        with IncShrinkClient(host, port, name="soak-warm") as owner:
            owner.upload_many([(s.time, deployment.upload_items(s)) for s in warm],
                              wait=True)
        watermark = server.last_time
        queries = deployment.step_queries

        # Background uploader: the watermark keeps advancing during the
        # soak (mixed load), queries stay pinned at the warm watermark.
        stop_upload = threading.Event()
        upload_errors: list[BaseException] = []

        def uploader() -> None:
            try:
                with IncShrinkClient(host, port, name="soak-upload") as up:
                    for step in live:
                        if stop_upload.wait(duration / (len(live) + 1)):
                            break
                        up.upload(step.time, deployment.upload_items(step))
            except BaseException as exc:  # surfaces in the final assert
                upload_errors.append(exc)

        upload_thread = threading.Thread(target=uploader)

        # The request each connection paces through the soak: mostly the
        # cheap stats frame, every 8th a full planned query.
        query_payloads = [
            {
                "query": wire.encode_query(q),
                "time": watermark,
                "predicate_words": 1,
                "epsilon": None,
            }
            for q in queries
        ]

        sel = selectors.DefaultSelector()
        conns: list[_SoakConn] = []
        pace = max(0.5, n_connections / 800.0)
        hello = wire.encode_frame(
            "hello", {"client": "soak", "codecs": ["json"]}
        )

        def register(conn: _SoakConn, events: int) -> None:
            try:
                sel.modify(conn.sock, events, conn)
            except KeyError:
                sel.register(conn.sock, events, conn)

        def want_events(conn: _SoakConn) -> int:
            events = selectors.EVENT_READ
            if conn.outbox or conn.state == "connecting":
                events |= selectors.EVENT_WRITE
            return events

        def send_request(conn: _SoakConn, now: float) -> None:
            conn.requests += 1
            if conn.requests % 8 == 0:
                payload = query_payloads[conn.requests // 8 % len(query_payloads)]
                conn.outbox += wire.encode_frame("query", payload)
            else:
                conn.outbox += wire.encode_frame("stats", {})
            conn.state = "waiting"
            conn.sent_at = now
            conn.first_sent_at = now
            _flush(conn)

        def _flush(conn: _SoakConn) -> None:
            while conn.outbox:
                try:
                    sent = conn.sock.send(conn.outbox)
                except BlockingIOError:
                    break
                except OSError as exc:
                    conn.failures.append(f"send: {exc}")
                    _drop(conn)
                    return
                del conn.outbox[:sent]
            register(conn, want_events(conn))

        def _drop(conn: _SoakConn) -> None:
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
            conn.state = "dead"

        latencies: list[float] = []
        overload_retries = 0

        def on_frame(conn: _SoakConn, frame_type: str, payload: dict,
                     now: float, issuing: bool) -> None:
            nonlocal overload_retries
            if conn.state == "hello":
                if frame_type != "welcome":
                    conn.failures.append(f"handshake got {frame_type}")
                    _drop(conn)
                    return
                conn.state = "ready"
                conn.next_at = now + rng.uniform(0.0, pace)
                return
            if frame_type == "error":
                if payload.get("code") == wire.ERR_OVERLOADED:
                    # Fairness under overload: back off per the server's
                    # hint and re-issue the same request slot.
                    conn.retries += 1
                    overload_retries += 1
                    conn.state = "ready"
                    conn.next_at = now + float(
                        payload.get("retry_after") or 0.05
                    ) + rng.uniform(0.0, 0.05)
                    return
                conn.failures.append(f"error: {payload.get('code')}")
                _drop(conn)
                return
            # stats_result / result — one completion.
            latencies.append(now - conn.first_sent_at)
            conn.completions += 1
            conn.state = "ready"
            if issuing:
                conn.next_at = now + pace + rng.uniform(-0.2, 0.2) * min(1.0, pace)
            else:
                conn.next_at = float("inf")

        upload_thread.start()
        to_connect = n_connections
        t_start = _time.monotonic()
        t_end = t_start + duration
        drain_deadline = t_end + max(5.0, duration)
        while True:
            now = _time.monotonic()
            issuing = now < t_end
            if now >= drain_deadline:
                break
            # Open the herd in chunks so the SYN storm stays inside the
            # listener backlog.
            for _ in range(min(128, to_connect)):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.setblocking(False)
                conn = _SoakConn(sock)
                result = sock.connect_ex((host, port))
                if result not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
                    conn.failures.append(f"connect: {errno.errorcode.get(result)}")
                else:
                    conns.append(conn)
                    sel.register(sock, selectors.EVENT_WRITE, conn)
                to_connect -= 1

            for key, events in sel.select(timeout=0.05):
                conn = key.data
                now = _time.monotonic()
                if conn.state == "connecting" and events & selectors.EVENT_WRITE:
                    err = conn.sock.getsockopt(
                        socket.SOL_SOCKET, socket.SO_ERROR
                    )
                    if err:
                        conn.failures.append(f"connect: {errno.errorcode.get(err)}")
                        _drop(conn)
                        continue
                    conn.state = "hello"
                    conn.outbox += hello
                    _flush(conn)
                    continue
                if events & selectors.EVENT_WRITE and conn.outbox:
                    _flush(conn)
                if conn.state == "dead" or not events & selectors.EVENT_READ:
                    continue
                try:
                    data = conn.sock.recv(65536)
                except BlockingIOError:
                    continue
                except OSError as exc:
                    conn.failures.append(f"recv: {exc}")
                    _drop(conn)
                    continue
                if data == b"":
                    conn.failures.append("server closed the connection")
                    _drop(conn)
                    continue
                try:
                    frames = conn.decoder.feed(data)
                except wire.WireError as exc:
                    conn.failures.append(f"decode: {exc}")
                    _drop(conn)
                    continue
                for frame_type, payload in frames:
                    if conn.state == "dead":
                        break
                    on_frame(conn, frame_type, payload, now, issuing)

            now = _time.monotonic()
            issuing = now < t_end
            idle = all(c.state in ("ready", "dead") for c in conns)
            if not issuing and to_connect == 0 and idle:
                break
            if issuing:
                for conn in conns:
                    if conn.state == "ready" and conn.next_at <= now:
                        send_request(conn, now)

        stop_upload.set()
        upload_thread.join()
        for conn in conns:
            _drop(conn)
        sel.close()
        soak_seconds = _time.monotonic() - t_start
        observability = server.observability()
    finally:
        net.close(stop_server=True)

    failures = [f for conn in conns for f in conn.failures]
    completions = [c.completions for c in conns]
    served = [c for c in completions if c > 0]
    return {
        "connections": n_connections,
        "target_seconds": duration,
        "soak_seconds": soak_seconds,
        "pace_seconds_per_connection": pace,
        "requests_completed": len(latencies),
        "client_qps": len(latencies) / soak_seconds,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "fairness_max_over_min_completions": (
            max(served) / min(served) if served else float("inf")
        ),
        "connections_served": len(served),
        "overload_retries": overload_retries,
        "upload_steps_during_soak": observability["last_time"] - N_STEPS // 2,
        "failures": failures[:20],
        "failure_count": len(failures),
        "upload_errors": [repr(e) for e in upload_errors],
    }


def test_bench_network_soak(benchmark):
    result = benchmark.pedantic(
        _run_soak, args=(SOAK_CONNECTIONS, SOAK_SECONDS), rounds=1, iterations=1
    )

    assert result["failure_count"] == 0, result["failures"]
    assert result["upload_errors"] == []
    # Every connection was admitted and served at least once — the
    # reactor sustained the whole herd, not a lucky subset.
    assert result["connections_served"] == result["connections"]
    assert result["requests_completed"] >= result["connections"]
    assert (
        0.0
        < result["latency_p50_ms"]
        <= result["latency_p95_ms"]
        <= result["latency_p99_ms"]
    )
    # The watermark advanced during the soak: the load really was mixed.
    assert result["upload_steps_during_soak"] > 0

    _merge_bench("soak", result)

    emit(
        f"network soak: {result['connections']} concurrent connections, "
        f"{result['soak_seconds']:.1f} s sustained\n"
        f"  completed: {result['requests_completed']} requests "
        f"({result['client_qps']:.0f}/s), "
        f"{result['overload_retries']} overload retries\n"
        f"  latency  : p50 {result['latency_p50_ms']:.2f} ms, "
        f"p95 {result['latency_p95_ms']:.2f} ms, "
        f"p99 {result['latency_p99_ms']:.2f} ms\n"
        f"  fairness : max/min per-connection completions "
        f"{result['fairness_max_over_min_completions']:.2f}\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )
