"""Network serving throughput baseline — the first cross-boundary trajectory.

The serving benchmark (``test_serving_throughput.py``) measures the
runtime through in-process calls; this one drives the same deployment
**across the TCP service boundary**: one owner client streams the
workload through ``upload`` frames, then ``CLIENTS`` concurrent
analyst clients replay the standard query mix, each query timed
individually at the client.  The measured rates — uploads/s, queries/s,
and the client-observed p50/p95 query latency — are recorded to
``BENCH_network.json`` at the repo root so future PRs optimizing the
wire path (batching, pipelining, serialization) have a baseline to beat.

Correctness rides along: every networked answer is checked against the
in-process answer for the same query at the same watermark, and the
final observability frame must agree with the server's own counters.
"""

from __future__ import annotations

import json
import threading
import time as _time
from pathlib import Path

from conftest import emit

from repro.experiments.harness import MultiViewRunConfig, build_multiview_deployment
from repro.net.client import IncShrinkClient
from repro.net.server import NetworkServer
from repro.server.runtime import DatabaseServer

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_network.json"

DATASET = "tpcds"
N_STEPS = 16
CLIENTS = 4
QUERY_ROUNDS = 3


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_network() -> dict:
    config = MultiViewRunConfig(dataset=DATASET, n_steps=N_STEPS, seed=5)
    deployment = build_multiview_deployment(config)
    server = DatabaseServer(deployment.database)

    with NetworkServer(server) as net:
        host, port = net.address

        # Phase 1 — one owner streams the workload over upload frames.
        t0 = _time.perf_counter()
        with IncShrinkClient(host, port, name="owner") as owner:
            steps = deployment.workload.steps
            for step in steps[:-1]:
                owner.upload(step.time, deployment.upload_items(step))
            # The last upload waits for the full queue to drain, so the
            # wall clock covers ingestion, not just socket writes.
            owner.upload(
                steps[-1].time, deployment.upload_items(steps[-1]), wait=True
            )
        upload_seconds = _time.perf_counter() - t0
        uploads = server.stats.uploads
        watermark = server.last_time

        # In-process reference answers at the drained watermark.
        expected = {
            i: server.query(q, time=watermark).answers
            for i, q in enumerate(deployment.step_queries)
        }

        # Phase 2 — concurrent analysts, per-query latency at the client.
        latencies: list[float] = []
        latency_lock = threading.Lock()
        client_errors: list[BaseException] = []

        def analyst_loop(index: int) -> None:
            try:
                with IncShrinkClient(host, port, name=f"bench-{index}") as c:
                    for _round in range(QUERY_ROUNDS):
                        for qi, query in enumerate(deployment.step_queries):
                            t_start = _time.perf_counter()
                            result = c.query(query, time=watermark)
                            elapsed = _time.perf_counter() - t_start
                            assert result.answers == expected[qi]
                            with latency_lock:
                                latencies.append(elapsed)
            except BaseException as exc:
                client_errors.append(exc)

        t0 = _time.perf_counter()
        threads = [
            threading.Thread(target=analyst_loop, args=(i,)) for i in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        query_seconds = _time.perf_counter() - t0
        assert not client_errors, client_errors

        observability = server.observability()

    server.stop()
    queries = len(latencies)
    return {
        "benchmark": "network_throughput",
        "dataset": DATASET,
        "steps": N_STEPS,
        "clients": CLIENTS,
        "uploads": uploads,
        "upload_seconds": upload_seconds,
        "uploads_per_second": uploads / upload_seconds,
        "queries": queries,
        "query_seconds": query_seconds,
        "queries_per_second": queries / query_seconds,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "observability": observability,
    }


def test_bench_network_throughput(benchmark):
    result = benchmark.pedantic(_run_network, rounds=1, iterations=1)

    # Loose sanity floors (the recorded JSON is the real trajectory): a
    # localhost round trip slower than one op per second would mean the
    # wire layer, not the simulated MPC, dominates.
    assert result["uploads_per_second"] > 1.0
    assert result["queries_per_second"] > 1.0
    assert result["queries"] == CLIENTS * QUERY_ROUNDS * 4
    assert 0.0 < result["latency_p50_ms"] <= result["latency_p95_ms"]
    # The stats frame agrees with the in-process counters (the analysts'
    # queries plus the reference queries all ran on one server).
    assert result["observability"]["queries"] >= result["queries"]
    assert result["observability"]["last_time"] == N_STEPS

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    emit(
        "network serving throughput baseline (localhost wall clock)\n"
        f"  uploads  : {result['uploads']} over one connection, "
        f"{result['uploads_per_second']:.1f} uploads/s\n"
        f"  queries  : {result['queries']} across {CLIENTS} concurrent "
        f"clients, {result['queries_per_second']:.1f} queries/s\n"
        f"  latency  : p50 {result['latency_p50_ms']:.2f} ms, "
        f"p95 {result['latency_p95_ms']:.2f} ms per query frame\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )
