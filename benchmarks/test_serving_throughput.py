"""Serving-runtime throughput baseline — the repo's first perf trajectory.

Unlike the table/figure benchmarks (which reproduce *simulated* paper
numbers), this one measures the **wall clock** of the serving runtime
itself: how fast the background ingestion loop advances the stream while
concurrent read sessions query, and how long a full snapshot/restore
cycle takes.  The measured rates are written to ``BENCH_serving.json``
at the repo root so future PRs optimizing the hot paths have a recorded
baseline to beat.

Correctness is asserted alongside the timing: the database restored
from the mid-run snapshot must answer the registered queries with the
byte-identical values and report the byte-identical realized ε — the
no-double-spend acceptance criterion of the persistence layer.
"""

from __future__ import annotations

import json
import math
import threading
import time as _time
from pathlib import Path

from conftest import emit

from repro.experiments.harness import MultiViewRunConfig, build_multiview_deployment
from repro.server.persistence import restore_database
from repro.server.runtime import DatabaseServer

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

DATASET = "tpcds"
N_STEPS = 32
CLIENTS = 3
QUERY_EVERY = 4


def _run_serving(tmp_path: Path) -> dict:
    config = MultiViewRunConfig(
        dataset=DATASET, n_steps=N_STEPS, seed=11, query_every=QUERY_EVERY
    )
    deployment = build_multiview_deployment(config)
    snapshot_path = str(tmp_path / "serving-bench.snap")
    server = DatabaseServer(deployment.database, snapshot_path=snapshot_path)
    server.start()

    stop = threading.Event()
    client_errors: list[BaseException] = []

    def client_loop(session):
        try:
            while not stop.is_set():
                if server.last_time:
                    for query in deployment.step_queries:
                        # time=None binds the watermark under the read lock
                        session.query(query, time=None)
                stop.wait(0.0005)
        except BaseException as exc:
            client_errors.append(exc)

    threads = [
        threading.Thread(
            target=client_loop, args=(server.session(f"bench-{i}"),), daemon=True
        )
        for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for step in deployment.workload.steps:
        server.submit(step.time, deployment.upload_items(step))
    server.drain()
    stop.set()
    for t in threads:
        t.join()
    assert not client_errors, client_errors

    # Snapshot + restore latency, with the equivalence check inline.
    t0 = _time.perf_counter()
    info = server.snapshot()
    snapshot_seconds = _time.perf_counter() - t0

    t0 = _time.perf_counter()
    restored = restore_database(snapshot_path)
    restore_seconds = _time.perf_counter() - t0

    db = server.database
    final_time = server.last_time
    original = [
        db.query(q, final_time).answer for q in deployment.step_queries
    ]
    recovered = [
        restored.database.query(q, final_time).answer
        for q in deployment.step_queries
    ]
    assert recovered == original, "restored answers must be byte-identical"
    assert restored.database.realized_epsilon() == db.realized_epsilon()

    # The same observability surface the network `stats` frame serves
    # (ServingStats.to_dict() + watermark, shard count, realized ε).
    observability = server.observability()
    server.stop()
    stats = server.stats
    return {
        "benchmark": "serving_throughput",
        "dataset": DATASET,
        "steps": N_STEPS,
        "clients": CLIENTS,
        "uploads": stats.uploads,
        "queries": stats.queries,
        "uploads_per_second": stats.uploads_per_second(),
        "queries_per_second": stats.queries_per_second(),
        "snapshot_seconds": snapshot_seconds,
        "restore_seconds": restore_seconds,
        "snapshot_bytes": info.bytes_written,
        "realized_epsilon": db.realized_epsilon(),
        "observability": observability,
    }


def test_bench_serving_throughput(benchmark, tmp_path):
    result = benchmark.pedantic(
        _run_serving, args=(tmp_path,), rounds=1, iterations=1
    )

    # A serving runtime that cannot outpace one upload per simulated step
    # per second would be useless; these floors are loose sanity bounds,
    # not targets (the recorded JSON is the real trajectory).
    assert result["uploads_per_second"] > 1.0
    assert result["queries_per_second"] > 1.0
    assert result["queries"] >= CLIENTS  # every session got answers
    assert result["snapshot_seconds"] < 60.0
    assert result["restore_seconds"] < 60.0
    # One observability contract across surfaces: the recorded gauges
    # are exactly what the network `stats` frame reports.
    for key in ("queue_depth", "queue_capacity", "shard_rows", "query_epsilon"):
        assert key in result["observability"]
    assert result["observability"]["last_time"] == N_STEPS

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    emit(
        "serving throughput baseline (wall clock)\n"
        f"  ingestion : {result['uploads']} uploads in total, "
        f"{result['uploads_per_second']:.1f} uploads/s\n"
        f"  queries   : {result['queries']} answered across {CLIENTS} "
        f"sessions, {result['queries_per_second']:.1f} queries/s\n"
        f"  snapshot  : {result['snapshot_bytes']} bytes in "
        f"{result['snapshot_seconds']*1000:.1f} ms\n"
        f"  restore   : {result['restore_seconds']*1000:.1f} ms "
        "(byte-identical answers + realized epsilon verified)\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )


# -- multi-tenant serving scenario ---------------------------------------------
TENANT_WEIGHTS = {"heavy": 8, "steady": 4, "light": 2, "rare": 1}
QUERY_EPSILON = 0.01


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_multi_tenant(tmp_path: Path) -> dict:
    from repro.net import protocol as wire
    from repro.net.client import IncShrinkClient
    from repro.net.server import NetworkServer
    from repro.tenancy import Tenant, TenantRegistry

    config = MultiViewRunConfig(
        dataset=DATASET, n_steps=16, seed=11, query_every=QUERY_EVERY
    )
    deployment = build_multiview_deployment(config)
    server = DatabaseServer(deployment.database)
    server.start()
    for step in deployment.workload.steps:
        server.submit(step.time, deployment.upload_items(step))
    server.drain()

    # Every analyst gets exactly the budget its skewed traffic needs;
    # "rare" gets one query less than it will ask for, so the scenario
    # also exercises a live budget-exhausted refusal under load.
    rounds = 6
    budgets = {
        tid: weight * rounds * QUERY_EPSILON
        for tid, weight in TENANT_WEIGHTS.items()
    }
    budgets["rare"] -= QUERY_EPSILON
    registry = TenantRegistry(
        [
            Tenant(tid, f"{tid}-token", role="analyst", epsilon_budget=budgets[tid])
            for tid in TENANT_WEIGHTS
        ]
    )
    latencies: dict[str, list[float]] = {tid: [] for tid in TENANT_WEIGHTS}
    refused: dict[str, int] = {tid: 0 for tid in TENANT_WEIGHTS}
    errors: list[BaseException] = []

    with NetworkServer(server, registry=registry) as net:
        host, port = net.address

        def analyst_loop(tid: str) -> None:
            try:
                with IncShrinkClient(
                    host, port, tenant=tid, token=f"{tid}-token"
                ) as client:
                    query = deployment.step_queries[0]
                    for _ in range(TENANT_WEIGHTS[tid] * rounds):
                        t0 = _time.perf_counter()
                        try:
                            client.query(query, epsilon=QUERY_EPSILON)
                        except wire.RemoteError as exc:
                            if exc.code != wire.ERR_BUDGET_EXHAUSTED:
                                raise
                            refused[tid] += 1
                        latencies[tid].append(_time.perf_counter() - t0)
            except BaseException as exc:  # surfaced by the assertion below
                errors.append(exc)

        threads = [
            threading.Thread(target=analyst_loop, args=(tid,), daemon=True)
            for tid in TENANT_WEIGHTS
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ledgers = net.server.database.tenant_epsilons()
        global_spend = net.server.database.query_epsilon()
    server.stop()
    assert not errors, errors

    per_tenant = {
        tid: {
            "queries": len(latencies[tid]),
            "refused": refused[tid],
            "epsilon_spent": ledgers.get(tid, 0.0),
            "epsilon_budget": budgets[tid],
            "p50_ms": _percentile(latencies[tid], 0.50) * 1000,
            "p95_ms": _percentile(latencies[tid], 0.95) * 1000,
        }
        for tid in TENANT_WEIGHTS
    }
    return {
        "benchmark": "multi_tenant_serving",
        "dataset": DATASET,
        "tenants": len(TENANT_WEIGHTS),
        "weights": dict(TENANT_WEIGHTS),
        "rounds": rounds,
        "query_epsilon": QUERY_EPSILON,
        "global_query_epsilon": global_spend,
        "ledger_sum": sum(ledgers.values()),
        "per_tenant": per_tenant,
    }


def test_bench_multi_tenant_serving(benchmark, tmp_path):
    result = benchmark.pedantic(
        _run_multi_tenant, args=(tmp_path,), rounds=1, iterations=1
    )
    per_tenant = result["per_tenant"]

    # Skewed traffic really is skewed: the heavy tenant asked for 8x
    # the rare tenant's load, and everyone got answers.
    assert per_tenant["heavy"]["queries"] == 8 * result["rounds"]
    assert per_tenant["rare"]["queries"] == 1 * result["rounds"]
    for tid, entry in per_tenant.items():
        assert entry["p50_ms"] > 0
        assert entry["p95_ms"] >= entry["p50_ms"]

    # ε isolation: each ledger holds precisely what its tenant released
    # (refused queries spent nothing) — compared in the ledger's own
    # accumulation order, so equality is bitwise, not approximate — and
    # the ledgers sum to the global query spend (up to float
    # re-association across tenants): attribution never distorts
    # composition.
    for tid, entry in per_tenant.items():
        served = entry["queries"] - entry["refused"]
        assert entry["epsilon_spent"] == sum(
            [result["query_epsilon"]] * served
        )
        assert entry["epsilon_spent"] <= entry["epsilon_budget"] + 1e-9
    assert math.isclose(
        result["ledger_sum"], result["global_query_epsilon"],
        rel_tol=0.0, abs_tol=1e-9,
    )

    # The under-budgeted tenant hit its cap; nobody else was refused.
    assert per_tenant["rare"]["refused"] == 1
    assert all(
        per_tenant[tid]["refused"] == 0 for tid in ("heavy", "steady", "light")
    )

    # Merge alongside the single-tenant baseline in the recorded JSON.
    doc = {}
    if BENCH_PATH.exists():
        doc = json.loads(BENCH_PATH.read_text(encoding="utf8"))
    if doc.get("benchmark") == "serving_throughput":
        doc = {"serving_throughput": doc}
    doc["multi_tenant"] = result
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf8")

    lines = [
        "multi-tenant serving (4 analysts, 8:4:2:1 skew, real TCP)",
    ]
    for tid in TENANT_WEIGHTS:
        entry = per_tenant[tid]
        lines.append(
            f"  {tid:<7}: {entry['queries']:>3} queries, "
            f"p50 {entry['p50_ms']:.1f} ms, p95 {entry['p95_ms']:.1f} ms, "
            f"eps {entry['epsilon_spent']:.4f}/{entry['epsilon_budget']:.4f}"
            + (f", {entry['refused']} refused" if entry["refused"] else "")
        )
    lines.append(
        f"  ledgers sum to the global query spend exactly "
        f"({result['ledger_sum']:.4f})\n  -> merged into {BENCH_PATH.name}"
    )
    emit("\n".join(lines))
