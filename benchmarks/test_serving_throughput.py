"""Serving-runtime throughput baseline — the repo's first perf trajectory.

Unlike the table/figure benchmarks (which reproduce *simulated* paper
numbers), this one measures the **wall clock** of the serving runtime
itself: how fast the background ingestion loop advances the stream while
concurrent read sessions query, and how long a full snapshot/restore
cycle takes.  The measured rates are written to ``BENCH_serving.json``
at the repo root so future PRs optimizing the hot paths have a recorded
baseline to beat.

Correctness is asserted alongside the timing: the database restored
from the mid-run snapshot must answer the registered queries with the
byte-identical values and report the byte-identical realized ε — the
no-double-spend acceptance criterion of the persistence layer.
"""

from __future__ import annotations

import json
import threading
import time as _time
from pathlib import Path

from conftest import emit

from repro.experiments.harness import MultiViewRunConfig, build_multiview_deployment
from repro.server.persistence import restore_database
from repro.server.runtime import DatabaseServer

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

DATASET = "tpcds"
N_STEPS = 32
CLIENTS = 3
QUERY_EVERY = 4


def _run_serving(tmp_path: Path) -> dict:
    config = MultiViewRunConfig(
        dataset=DATASET, n_steps=N_STEPS, seed=11, query_every=QUERY_EVERY
    )
    deployment = build_multiview_deployment(config)
    snapshot_path = str(tmp_path / "serving-bench.snap")
    server = DatabaseServer(deployment.database, snapshot_path=snapshot_path)
    server.start()

    stop = threading.Event()
    client_errors: list[BaseException] = []

    def client_loop(session):
        try:
            while not stop.is_set():
                if server.last_time:
                    for query in deployment.step_queries:
                        # time=None binds the watermark under the read lock
                        session.query(query, time=None)
                stop.wait(0.0005)
        except BaseException as exc:
            client_errors.append(exc)

    threads = [
        threading.Thread(
            target=client_loop, args=(server.session(f"bench-{i}"),), daemon=True
        )
        for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    for step in deployment.workload.steps:
        server.submit(step.time, deployment.upload_items(step))
    server.drain()
    stop.set()
    for t in threads:
        t.join()
    assert not client_errors, client_errors

    # Snapshot + restore latency, with the equivalence check inline.
    t0 = _time.perf_counter()
    info = server.snapshot()
    snapshot_seconds = _time.perf_counter() - t0

    t0 = _time.perf_counter()
    restored = restore_database(snapshot_path)
    restore_seconds = _time.perf_counter() - t0

    db = server.database
    final_time = server.last_time
    original = [
        db.query(q, final_time).answer for q in deployment.step_queries
    ]
    recovered = [
        restored.database.query(q, final_time).answer
        for q in deployment.step_queries
    ]
    assert recovered == original, "restored answers must be byte-identical"
    assert restored.database.realized_epsilon() == db.realized_epsilon()

    # The same observability surface the network `stats` frame serves
    # (ServingStats.to_dict() + watermark, shard count, realized ε).
    observability = server.observability()
    server.stop()
    stats = server.stats
    return {
        "benchmark": "serving_throughput",
        "dataset": DATASET,
        "steps": N_STEPS,
        "clients": CLIENTS,
        "uploads": stats.uploads,
        "queries": stats.queries,
        "uploads_per_second": stats.uploads_per_second(),
        "queries_per_second": stats.queries_per_second(),
        "snapshot_seconds": snapshot_seconds,
        "restore_seconds": restore_seconds,
        "snapshot_bytes": info.bytes_written,
        "realized_epsilon": db.realized_epsilon(),
        "observability": observability,
    }


def test_bench_serving_throughput(benchmark, tmp_path):
    result = benchmark.pedantic(
        _run_serving, args=(tmp_path,), rounds=1, iterations=1
    )

    # A serving runtime that cannot outpace one upload per simulated step
    # per second would be useless; these floors are loose sanity bounds,
    # not targets (the recorded JSON is the real trajectory).
    assert result["uploads_per_second"] > 1.0
    assert result["queries_per_second"] > 1.0
    assert result["queries"] >= CLIENTS  # every session got answers
    assert result["snapshot_seconds"] < 60.0
    assert result["restore_seconds"] < 60.0
    # One observability contract across surfaces: the recorded gauges
    # are exactly what the network `stats` frame reports.
    for key in ("queue_depth", "queue_capacity", "shard_rows", "query_epsilon"):
        assert key in result["observability"]
    assert result["observability"]["last_time"] == N_STEPS

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    emit(
        "serving throughput baseline (wall clock)\n"
        f"  ingestion : {result['uploads']} uploads in total, "
        f"{result['uploads_per_second']:.1f} uploads/s\n"
        f"  queries   : {result['queries']} answered across {CLIENTS} "
        f"sessions, {result['queries_per_second']:.1f} queries/s\n"
        f"  snapshot  : {result['snapshot_bytes']} bytes in "
        f"{result['snapshot_seconds']*1000:.1f} ms\n"
        f"  restore   : {result['restore_seconds']*1000:.1f} ms "
        "(byte-identical answers + realized epsilon verified)\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )
