"""Benchmark: Figure 7 — T/θ sweep at three privacy levels.

Shape claims (Observation 6): at ε = 0.1 the two protocols separate —
sDPANT trades efficiency for accuracy, sDPTimer the reverse; by ε = 10
their point clouds largely coincide.
"""

import pytest
from conftest import emit

from repro.experiments.figure7 import format_figure7, run_figure7

T_VALUES = (1, 2, 5, 10, 20, 50)
EPSILONS = (0.1, 1.0, 10.0)
N_STEPS = 120


@pytest.mark.parametrize("dataset", ["tpcds", "cpdb"])
def test_figure7(benchmark, dataset):
    results = benchmark.pedantic(
        run_figure7,
        kwargs={
            "dataset": dataset,
            "epsilons": EPSILONS,
            "t_values": T_VALUES,
            "n_steps": N_STEPS,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure7(dataset, results))

    def cloud_mean(eps, mode, idx):
        points = results[eps][mode]
        return sum(p[idx] for p in points) / len(points)

    # The protocols' separation in (L1, QET) space shrinks as ε grows.
    def separation(eps):
        dl1 = abs(cloud_mean(eps, "dp-timer", 1) - cloud_mean(eps, "dp-ant", 1))
        dqet = abs(cloud_mean(eps, "dp-timer", 2) - cloud_mean(eps, "dp-ant", 2))
        scale_l1 = max(cloud_mean(eps, "dp-timer", 1), cloud_mean(eps, "dp-ant", 1), 1e-9)
        scale_qet = max(cloud_mean(eps, "dp-timer", 2), cloud_mean(eps, "dp-ant", 2), 1e-9)
        return dl1 / scale_l1 + dqet / scale_qet

    assert separation(10.0) < separation(0.1)
