"""Query-compiler latency baseline — BENCH_query.json.

Extends the perf trajectory started by ``BENCH_serving.json`` with the
unified query compiler's headline numbers, measured on a tiny multi-view
deployment (the shared harness builder):

* **single-scan amortization** — a 3-aggregate query (COUNT + SUM + AVG)
  answered in one padded view scan vs the same three aggregates issued
  as sequential single-aggregate queries, in both simulated QET (gate
  model, deterministic) and wall clock;
* **shim equivalence** — the deprecated per-class API and the unified
  AST return byte-identical pre-noise answers, and pre-noise querying
  leaves the realized ε untouched;
* **plan cache** — hit rate over a repeated dashboard-style mix;
* a GROUP BY data point (one scan, all groups).

The recorded JSON is the regression baseline future PRs must beat (or at
least not quietly lose).
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path

from conftest import emit

from repro.experiments.harness import MultiViewRunConfig, build_multiview_deployment
from repro.query.ast import (
    AggregateSpec,
    GroupBySpec,
    LogicalJoinCountQuery,
    LogicalJoinSumQuery,
    LogicalQuery,
)
from repro.query.planner import VIEW_SCAN

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_query.json"

DATASET = "tpcds"
N_STEPS = 24
WALL_REPEATS = 20


def _build():
    config = MultiViewRunConfig(
        dataset=DATASET, n_steps=N_STEPS, seed=13, query_every=N_STEPS
    )
    deployment = build_multiview_deployment(config)
    for step in deployment.workload.steps:
        deployment.database.upload(step.time, deployment.upload_items(step))
        deployment.database.step(step.time)
    return deployment


def _wall(db, query, time_at) -> float:
    t0 = _time.perf_counter()
    for _ in range(WALL_REPEATS):
        db.query(query, time_at)
    return (_time.perf_counter() - t0) / WALL_REPEATS


def _run_query_latency() -> dict:
    deployment = _build()
    db = deployment.database
    vd = deployment.workload.view_def
    t = deployment.workload.steps[-1].time

    count = AggregateSpec.count()
    total = AggregateSpec.sum_of(vd.driver_table, vd.driver_ts)
    average = AggregateSpec.avg_of(vd.driver_table, vd.driver_ts)
    multi = LogicalQuery.for_view(vd, count, total, average)
    singles = [LogicalQuery.for_view(vd, agg) for agg in (count, total, average)]

    multi_result = db.query(multi, t)
    assert multi_result.plan.kind == VIEW_SCAN
    single_results = [db.query(q, t) for q in singles]

    multi_qet = multi_result.observation.qet_seconds
    singles_qet = sum(r.observation.qet_seconds for r in single_results)
    speedup_simulated = singles_qet / multi_qet

    multi_wall = _wall(db, multi, t)
    singles_wall = sum(_wall(db, q, t) for q in singles)
    speedup_wall = singles_wall / multi_wall

    # Shim equivalence: byte-identical pre-noise cells, untouched ε.
    eps_before = db.realized_epsilon()
    shim_count = db.query(LogicalJoinCountQuery.for_view(vd), t).answer
    shim_sum = db.query(
        LogicalJoinSumQuery.for_view(vd, vd.driver_table, vd.driver_ts), t
    ).answer
    ast_row = multi_result.answers.rows[0]
    shim_matches = shim_count == ast_row[0] and shim_sum == ast_row[1]
    eps_after = db.realized_epsilon()

    # GROUP BY: every group of a small public domain in one scan.
    domain = tuple(range(8))
    grouped = db.query(
        LogicalQuery.for_view(
            vd, count, total, group_by=GroupBySpec(vd.probe_table, vd.probe_key, domain)
        ),
        t,
    )

    # Plan-cache hit rate over a dashboard-style repeated mix.
    db.planner.cache_hits = db.planner.cache_misses = 0
    for _ in range(25):
        for q in (multi, *singles):
            db.query(q, t)
    cache = db.planner.cache_info()
    hit_rate = cache["hits"] / (cache["hits"] + cache["misses"])

    return {
        "benchmark": "query_latency",
        "dataset": DATASET,
        "steps": N_STEPS,
        "aggregates": 3,
        "multi_scan_qet_seconds": multi_qet,
        "sequential_scans_qet_seconds": singles_qet,
        "speedup_simulated": speedup_simulated,
        "multi_scan_wall_seconds": multi_wall,
        "sequential_scans_wall_seconds": singles_wall,
        "speedup_wall": speedup_wall,
        "group_by_cells": len(domain),
        "group_by_qet_seconds": grouped.observation.qet_seconds,
        "plan_cache_hit_rate": hit_rate,
        "shim_matches_ast": bool(shim_matches),
        "realized_epsilon_before_queries": eps_before,
        "realized_epsilon_after_queries": eps_after,
    }


def test_bench_query_latency(benchmark):
    result = benchmark.pedantic(_run_query_latency, rounds=1, iterations=1)

    # The acceptance bar of the compiler refactor: one scan computing
    # three aggregates beats three sequential scans by ≥ 1.5× in the
    # deterministic gate model (wall clock is reported alongside).
    assert result["speedup_simulated"] >= 1.5
    assert result["shim_matches_ast"], "old API and unified AST must agree"
    assert (
        result["realized_epsilon_after_queries"]
        == result["realized_epsilon_before_queries"]
    ), "pre-noise queries must not move the privacy ledger"
    assert result["plan_cache_hit_rate"] > 0.9

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    emit(
        "query compiler latency baseline\n"
        f"  3-aggregate single scan : {result['multi_scan_qet_seconds']:.6f} s QET "
        f"(simulated), {result['multi_scan_wall_seconds']*1e3:.2f} ms wall\n"
        f"  3 sequential scans      : {result['sequential_scans_qet_seconds']:.6f} s "
        f"QET, {result['sequential_scans_wall_seconds']*1e3:.2f} ms wall\n"
        f"  speedup                 : {result['speedup_simulated']:.2f}x simulated, "
        f"{result['speedup_wall']:.2f}x wall\n"
        f"  GROUP BY ({result['group_by_cells']} cells)      : "
        f"{result['group_by_qet_seconds']:.6f} s QET in one scan\n"
        f"  plan cache hit rate     : {result['plan_cache_hit_rate']:.2%}\n"
        f"  shim == AST, eps unchanged: {result['shim_matches_ast']}\n"
        f"  -> recorded to {BENCH_PATH.name}"
    )
