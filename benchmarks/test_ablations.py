"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Cache flush on/off — flushing bounds Shrink's oblivious-sort input
   (and therefore its simulated time) at the price of extra dummy rows
   in the view (Theorem 5's s·kT/f term).
2. Truncated sort-merge vs nested-loop join — identical output, very
   different circuit sizes (Example 5.1 vs Algorithm 4).
3. Joint vs trusted-curator noise — identical distribution; the joint
   sampler exists for trust reasons, not statistical ones.
4. Multi-level Transform-and-Shrink — a second (filter) level composes
   with sequential ε accounting.
"""

import numpy as np
import pytest
from conftest import emit

from repro.common.rng import spawn
from repro.dp.laplace import laplace_noise
from repro.experiments.harness import RunConfig, run_experiment
from repro.experiments.reporting import format_table
from repro.mpc.joint_noise import laplace_from_u32


def test_ablation_cache_flush(benchmark):
    def run_pair():
        with_flush = run_experiment(
            RunConfig(dataset="cpdb", mode="dp-timer", n_steps=120, flush_interval=30)
        )
        without = run_experiment(
            RunConfig(dataset="cpdb", mode="dp-timer", n_steps=120, flush_interval=10_000)
        )
        return with_flush, without

    with_flush, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    emit(
        format_table(
            "Ablation: cache flush (CPDB, sDPTimer)",
            ["variant", "avg Shrink (s)", "avg view rows", "avg L1"],
            [
                ["flush every 30", with_flush.summary.avg_shrink_seconds,
                 with_flush.summary.avg_view_size_rows, with_flush.summary.avg_l1_error],
                ["no flush", without.summary.avg_shrink_seconds,
                 without.summary.avg_view_size_rows, without.summary.avg_l1_error],
            ],
        )
    )
    # Flushing keeps the cache (and hence Shrink's sort) small …
    assert with_flush.summary.avg_shrink_seconds < without.summary.avg_shrink_seconds
    # … at the cost of extra dummy rows parked in the view.
    assert with_flush.summary.avg_view_size_rows > without.summary.avg_view_size_rows


def test_ablation_join_impl(benchmark):
    def run_pair():
        smj = run_experiment(
            RunConfig(dataset="tpcds", mode="ep", n_steps=40, join_impl="sort-merge")
        )
        nlj = run_experiment(
            RunConfig(dataset="tpcds", mode="ep", n_steps=40, join_impl="nested-loop")
        )
        return smj, nlj

    smj, nlj = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    emit(
        format_table(
            "Ablation: truncated join circuit (TPC-ds, EP mode)",
            ["operator", "avg Transform (s)", "avg L1"],
            [
                ["sort-merge (Ex. 5.1)", smj.summary.avg_transform_seconds,
                 smj.summary.avg_l1_error],
                ["nested-loop (Alg. 4)", nlj.summary.avg_transform_seconds,
                 nlj.summary.avg_l1_error],
            ],
        )
    )
    # Same answers, different circuits.
    assert smj.summary.avg_l1_error == nlj.summary.avg_l1_error == 0
    assert nlj.summary.avg_transform_seconds > 2 * smj.summary.avg_transform_seconds


def test_ablation_noise_source(benchmark):
    """Joint (in-MPC) noise vs trusted-curator noise: same law."""

    def sample():
        gen = spawn(0, "ablate")
        local = laplace_noise(gen, 2.0, size=60_000)
        zs = gen.integers(0, 2**32, size=60_000, dtype=np.uint32)
        joint = np.asarray([laplace_from_u32(z, 2.0) for z in zs])
        return local, joint

    local, joint = benchmark.pedantic(sample, rounds=1, iterations=1)
    quantiles = [0.05, 0.25, 0.5, 0.75, 0.95]
    rows = [
        [f"q{int(q*100)}", float(np.quantile(local, q)), float(np.quantile(joint, q))]
        for q in quantiles
    ]
    emit(
        format_table(
            "Ablation: trusted-curator vs joint noise quantiles (Lap(2))",
            ["quantile", "local", "joint"],
            rows,
        )
    )
    for q in quantiles:
        assert np.quantile(local, q) == pytest.approx(np.quantile(joint, q), abs=0.15)


def test_ablation_multilevel(benchmark):
    """Two-level Transform-and-Shrink (join → filter) vs single level."""
    from repro.core.engine import EngineConfig, IncShrinkEngine
    from repro.core.multilevel import MultiLevelIncShrink
    from repro.workload.tpcds import make_tpcds_workload

    def run():
        wl = make_tpcds_workload(seed=0, n_steps=60)
        engine = IncShrinkEngine(
            wl.view_def,
            EngineConfig(mode="dp-timer", epsilon=1.0, timer_interval=5),
        )
        ts_col = wl.view_def.view_schema.index("d_return_ts")
        pipeline = MultiLevelIncShrink(
            engine,
            predicate=lambda rows: rows[:, ts_col] % 2 == 0,
            epsilon_level2=0.5,
            interval=5,
        )
        for step in wl.steps:
            engine.upload(step.time, step.probe, step.driver)
            pipeline.process_step(step.time)
        return engine, pipeline

    engine, pipeline = benchmark.pedantic(run, rounds=1, iterations=1)
    with engine.runtime.protocol("audit") as ctx:
        level1_real = engine.view.real_count(ctx)
    with engine.runtime.protocol("audit2") as ctx:
        level2_real = pipeline.stage2.view.real_count(ctx)
    emit(
        format_table(
            "Ablation: multi-level Transform-and-Shrink (TPC-ds)",
            ["level", "view rows", "real rows", "epsilon"],
            [
                ["join (L1)", len(engine.view), level1_real, engine.config.epsilon],
                ["filter (L2)", len(pipeline.stage2.view), level2_real,
                 pipeline.stage2.shrink.epsilon],
            ],
        )
    )
    # The filter level holds a subset of the join level's real rows.
    assert level2_real <= level1_real
    # Sequential composition across the levels.
    assert pipeline.total_epsilon() == pytest.approx(1.5)
