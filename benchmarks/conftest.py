"""Benchmark-suite configuration.

Every benchmark reproduces one table or figure of the paper: it runs the
corresponding experiment driver once (``benchmark.pedantic`` with a
single round — the drivers are full simulations, not micro-kernels),
prints the paper-shaped rows/series to stdout, and asserts the headline
*shape* claims (who wins, monotonicity, orders of magnitude).

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced tables inline; without it they are captured.
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a reproduced table/figure with surrounding whitespace."""
    print()
    print(text)
    print()
