"""Micro-benchmarks of the MPC substrate operators.

These measure *wall-clock* performance of the simulator itself (unlike
the table/figure benches, whose interesting output is simulated
seconds).  They are true multi-round pytest-benchmark measurements.
"""

import numpy as np
import pytest

from repro.common.rng import spawn
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.filter import oblivious_count
from repro.oblivious.sort import apply_network, network_comparator_count
from repro.oblivious.sort_merge_join import truncated_sort_merge_join


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_bench_sort_network_application(benchmark, n):
    keys = spawn(0, "bench", n).integers(0, 2**32, size=n).astype(np.uint64)
    benchmark(apply_network, keys)
    # Sanity: comparator count follows the expected n·log²n trend.
    assert network_comparator_count(n) > n


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_bench_oblivious_count_scan(benchmark, n):
    rows = spawn(1, "bench", n).integers(0, 100, size=(n, 4)).astype(np.uint32)
    flags = np.ones(n, dtype=bool)

    def scan():
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("q") as ctx:
            return oblivious_count(ctx, rows, flags, None, 4)

    assert benchmark(scan) == n


@pytest.mark.parametrize("window", [64, 256])
def test_bench_truncated_smj(benchmark, window):
    gen = spawn(2, "bench", window)
    probe = np.column_stack(
        [gen.integers(1, 50, size=window), gen.integers(0, 10, size=window)]
    ).astype(np.uint32)
    driver = np.column_stack(
        [gen.integers(1, 50, size=16), gen.integers(5, 15, size=16)]
    ).astype(np.uint32)

    def join():
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("j") as ctx:
            return truncated_sort_merge_join(
                ctx,
                probe, np.ones(window, dtype=bool), 0, np.full(window, 10),
                driver, np.ones(16, dtype=bool), 0, np.full(16, 10),
                2,
                lambda p, d: 0 <= int(d[1]) - int(p[1]) <= 10,
            )

    result = benchmark(join)
    assert len(result.rows) == 2 * 16
