"""Incremental-execution baseline — BENCH_incremental.json.

The acceptance numbers of the incremental scan subsystem
(:mod:`repro.query.incremental`), measured two ways:

* **engine-level cold vs warm** — one fixed synthetic view per (backend,
  delta fraction): a cold full scan populates the accumulator cache, a
  delta of ``fraction × VIEW_ROWS`` rows is appended, and the warm
  rescan is compared against a cold rescan of the *grown* view.  The
  warm scan must return byte-identical answers, charge **exactly**
  ``delta_rows × per_row_gates`` (the suffix, nothing more), and beat
  the cold rescan by ≥ 5× in simulated gates at deltas ≤ 5% of the view
  — the headline O(n) → O(delta) claim;
* **database-level hit rates** — a dashboard-style repeated query mix
  against a small deployment, recording the accumulator cache's
  hit/miss/eviction gauges and the (validity-keyed) plan cache's hit
  rate.

The recorded JSON is the regression baseline future PRs must beat (or
at least not quietly lose).
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path

import numpy as np
from conftest import emit

from repro.common.rng import spawn
from repro.core.view_def import JoinViewDefinition
from repro.common.types import Schema
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import AggregateSpec, GroupBySpec, LogicalQuery
from repro.query.incremental import AccumulatorCache
from repro.query.parallel import ParallelScanExecutor
from repro.query.rewrite import lower_to_view_scan
from repro.query.shard_workers import shutdown_process_backend
from repro.server.sharding import ShardLayout
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"

BACKENDS = ("thread", "process")
N_SHARDS = 4
#: Large enough that the per-scan numpy kernel time is measurable and
#: every shard clears the process backend's auto-selection threshold.
VIEW_ROWS = 200_000
#: Appended suffix sizes, as fractions of the original view.
DELTA_FRACTIONS = (0.01, 0.05)
#: The acceptance bar: warm speedup at deltas <= 5% of the view.
MIN_WARM_SPEEDUP = 5.0

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))


def _view_def() -> JoinViewDefinition:
    return JoinViewDefinition(
        name="bench",
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def _dashboard(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (0, 1, 2, 3)),
    )


def _random_table(gen, n_rows: int, schema: Schema) -> SharedTable:
    rows = gen.integers(0, 8, size=(n_rows, schema.width)).astype(np.uint32)
    flags = gen.integers(0, 2, size=n_rows).astype(np.uint32)
    return SharedTable.from_plain(schema, rows, flags, spawn(5, "inc", n_rows))


def _fixed_view(gen) -> MaterializedView:
    vd = _view_def()
    view = MaterializedView(vd.view_schema, layout=ShardLayout(N_SHARDS))
    view.append(
        _random_table(gen, VIEW_ROWS, vd.view_schema), count_as_update=False
    )
    return view


def _timed_scan(executor, runtime, view, plan, cache):
    t0 = _time.perf_counter()
    answer, sim_seconds, report = executor.execute_detailed(
        runtime, 0, view, plan, cache
    )
    return answer, sim_seconds, report, _time.perf_counter() - t0


def _engine_records() -> list[dict]:
    vd = _view_def()
    plan = lower_to_view_scan(_dashboard(vd), vd)
    records = []
    try:
        for backend in BACKENDS:
            executor = ParallelScanExecutor(backend=backend)
            for fraction in DELTA_FRACTIONS:
                gen = np.random.default_rng(42)
                view = _fixed_view(gen)
                cache = AccumulatorCache()
                runtime = MPCRuntime(seed=0)
                # Warm-up (publishes shared memory / spawns the pool),
                # then the cold scan that populates the cache.
                executor.execute_detailed(runtime, 0, view, plan, None)
                _, cold_sim, cold_rep, cold_host = _timed_scan(
                    executor, runtime, view, plan, cache
                )

                delta_rows = int(VIEW_ROWS * fraction)
                view.append(
                    _random_table(gen, delta_rows, vd.view_schema),
                    count_as_update=False,
                )

                warm_answer, warm_sim, warm_rep, warm_host = _timed_scan(
                    executor, runtime, view, plan, cache
                )
                # Cold rescan of the identically grown view (no cache).
                ref_answer, ref_sim, ref_rep, ref_host = _timed_scan(
                    executor, MPCRuntime(seed=0), view, plan, None
                )

                records.append(
                    {
                        "backend": backend,
                        "resolved_backend": executor.backend_for(view),
                        "n_shards": N_SHARDS,
                        "view_rows": VIEW_ROWS,
                        "delta_fraction": fraction,
                        "delta_rows": delta_rows,
                        "cold_gates": ref_rep.gates,
                        "warm_gates": warm_rep.gates,
                        "warm_saved_gates": warm_rep.saved_gates,
                        "cold_simulated_seconds": ref_sim,
                        "warm_simulated_seconds": warm_sim,
                        "warm_speedup_simulated": ref_rep.gates
                        / warm_rep.gates,
                        "cold_host_seconds": ref_host,
                        "warm_host_seconds": warm_host,
                        "warm_host_speedup": ref_host / warm_host,
                        "answers_match_cold": warm_answer == ref_answer,
                        "per_row_gates": cold_rep.gates // cold_rep.total_rows,
                        "warm_mode": warm_rep.mode,
                        "warm_delta_rows_reported": warm_rep.delta_rows,
                    }
                )
    finally:
        shutdown_process_backend()
    return records


def _database_hit_rates() -> dict:
    """Dashboard-style repeat mix against a small live deployment."""
    from repro.experiments.harness import (
        MultiViewRunConfig,
        build_multiview_deployment,
    )

    config = MultiViewRunConfig(
        dataset="tpcds", n_steps=12, seed=13, query_every=12
    )
    deployment = build_multiview_deployment(config)
    db = deployment.database
    for step in deployment.workload.steps:
        db.upload(step.time, deployment.upload_items(step))
        db.step(step.time)
    vd = deployment.workload.view_def
    t = deployment.workload.steps[-1].time
    mix = [
        _dashboard_for(vd),
        LogicalQuery.for_view(vd, AggregateSpec.count()),
    ]
    for _ in range(20):
        for q in mix:
            db.query(q, t)
    return {
        "accumulator_cache": db.incremental_cache_stats(),
        "plan_cache_hit_rate": db.planner.hit_rate,
    }


def _dashboard_for(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of(vd.driver_table, vd.driver_ts),
        AggregateSpec.avg_of(vd.driver_table, vd.driver_ts),
    )


def _run_incremental() -> dict:
    records = _engine_records()
    db_rates = _database_hit_rates()
    return {
        "benchmark": "incremental_query",
        "view_rows": VIEW_ROWS,
        "n_shards": N_SHARDS,
        "delta_fractions": list(DELTA_FRACTIONS),
        "records": records,
        # Headline: warm speedup at the largest delta fraction <= 5%.
        "warm_speedup_at_5pct": min(
            r["warm_speedup_simulated"]
            for r in records
            if r["delta_fraction"] <= 0.05
        ),
        **db_rates,
    }


def test_bench_incremental_query(benchmark):
    result = benchmark.pedantic(_run_incremental, rounds=1, iterations=1)

    for record in result["records"]:
        # Warm scans are byte-identical to a cold rescan of the same
        # grown view, on both backends.
        assert record["answers_match_cold"], record
        assert record["warm_mode"] == "warm", record
        # The warm gate bill is exactly the suffix: delta_rows times the
        # flat per-row rate — O(delta), not O(n).
        assert record["warm_delta_rows_reported"] == record["delta_rows"]
        assert (
            record["warm_gates"]
            == record["per_row_gates"] * record["delta_rows"]
        ), record
        # And the skipped prefix is fully accounted as savings.
        assert (
            record["warm_gates"] + record["warm_saved_gates"]
            == record["cold_gates"]
        ), record

    # The acceptance bar: >= 5x simulated speedup whenever the delta is
    # <= 5% of the view rows.
    assert result["warm_speedup_at_5pct"] >= MIN_WARM_SPEEDUP

    # The repeated dashboard mix keeps both caches hot.
    assert result["accumulator_cache"]["hit_rate"] > 0.5
    assert result["plan_cache_hit_rate"] > 0.5

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n", encoding="utf8")

    lines = [
        f"incremental execution baseline ({result['view_rows']} view rows, "
        f"{result['n_shards']} shards)"
    ]
    for r in result["records"]:
        lines.append(
            f"  {r['backend']:>7} delta {r['delta_fraction']:>4.0%}: "
            f"{r['cold_gates']} cold -> {r['warm_gates']} warm gates "
            f"({r['warm_speedup_simulated']:.1f}x simulated, "
            f"{r['warm_host_speedup']:.1f}x host), answers identical: "
            f"{r['answers_match_cold']}"
        )
    lines.append(
        f"  accumulator cache: {result['accumulator_cache']}; "
        f"plan cache hit rate {result['plan_cache_hit_rate']:.2f}"
    )
    lines.append(f"  -> recorded to {BENCH_PATH.name}")
    emit("\n".join(lines))
