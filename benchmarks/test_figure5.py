"""Benchmark: Figure 5 — the 3-way trade-off (ε sweep).

Shape claims (Observations 3-4):

* QET decreases as ε grows for both protocols (less noise → fewer
  dummy tuples in the view → faster padded scans);
* sDPTimer's L1 error trends downward in ε;
* sDPANT's L1 is non-monotone (small ε triggers early/frequent updates).
"""

import pytest
from conftest import emit

from repro.experiments.figure5 import format_figure5, run_figure5

EPSILONS = (0.01, 0.1, 1.0, 1.5, 10.0, 50.0)
SEEDS = (0, 1)
N_STEPS = 160


@pytest.mark.parametrize("dataset", ["tpcds", "cpdb"])
def test_figure5(benchmark, dataset):
    results = benchmark.pedantic(
        run_figure5,
        kwargs={
            "dataset": dataset,
            "epsilons": EPSILONS,
            "seeds": SEEDS,
            "n_steps": N_STEPS,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure5(dataset, results))

    for mode in ("dp-timer", "dp-ant"):
        qet = [results[mode][e][1] for e in EPSILONS]
        # Efficiency improves from the most-private to the least-private
        # end of the sweep (allowing local non-monotonicity in between).
        assert qet[0] > qet[-1]

    timer_l1 = [results["dp-timer"][e][0] for e in EPSILONS]
    # Accuracy at high ε beats accuracy at extreme privacy for the timer.
    assert timer_l1[-1] < timer_l1[0]
