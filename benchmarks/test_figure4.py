"""Benchmark: Figure 4 — the (avg L1 × avg QET) scatter of all systems.

Shape claim: EP sits upper-left (exact, slow), OTM lower-right (instant,
useless), NM top (exact, slowest), DP protocols bottom-middle —
dominating OTM on accuracy and EP/NM on efficiency simultaneously.
"""

from conftest import emit

from repro.experiments.figure4 import format_figure4, run_figure4

N_STEPS = 200


def test_figure4(benchmark):
    points = benchmark.pedantic(
        run_figure4, kwargs={"n_steps": N_STEPS}, rounds=1, iterations=1
    )
    emit(format_figure4(points))

    for dataset in ("tpcds", "cpdb"):
        l1 = {m: points[(dataset, m)][0] for m in ("dp-timer", "dp-ant", "otm", "ep", "nm")}
        qet = {m: points[(dataset, m)][1] for m in ("dp-timer", "dp-ant", "otm", "ep", "nm")}

        # The DP points lie strictly below NM and EP on the QET axis …
        for dp in ("dp-timer", "dp-ant"):
            assert qet[dp] < qet["ep"] < qet["nm"]
            # … and strictly left of OTM on the L1 axis.
            assert l1[dp] < l1["otm"]
