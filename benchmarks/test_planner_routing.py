"""Micro-benchmarks of the multi-view query planner.

Two claims the multi-view refactor rests on:

1. routing is *free* relative to serving — planning a query costs
   orders of magnitude less wall-clock than the single padded view scan
   it picks, so a planner in front of every query adds no measurable
   latency;
2. routing is *faithful* — whenever the gate-cost model says the view
   scan (resp. NM join) is cheaper, the planner picks it, and the
   simulated execution times agree with that ranking.
"""

import time as _time

import numpy as np
import pytest

from repro.common.rng import spawn
from repro.common.types import Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import LogicalJoinCountQuery, ViewCountQuery
from repro.query.executor import execute_nm_count, execute_view_count
from repro.query.planner import NM_JOIN, VIEW_SCAN, ViewCandidate, plan_query
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView
from repro.storage.outsourced_table import OutsourcedTable

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))


def _view_def(name: str) -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=1,
        budget=10,
    )


def _count_query() -> LogicalJoinCountQuery:
    return LogicalJoinCountQuery(
        probe_table="orders",
        driver_table="shipments",
        probe_key="key",
        driver_key="key",
        probe_ts="ots",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
    )


def _materialized_view(vd: JoinViewDefinition, n_rows: int) -> MaterializedView:
    view = MaterializedView(vd.view_schema)
    gen = spawn(0, "plan-bench", n_rows)
    rows = gen.integers(0, 50, size=(n_rows, vd.view_schema.width)).astype(np.uint32)
    flags = (gen.random(n_rows) < 0.3).astype(np.uint32)
    view.append(SharedTable.from_plain(vd.view_schema, rows, flags, gen))
    return view


def _store(schema: Schema, name: str, n_rows: int, seed: int) -> OutsourcedTable:
    store = OutsourcedTable(schema, name)
    gen = spawn(seed, "plan-bench-store", n_rows)
    rows = gen.integers(0, 50, size=(n_rows, 2)).astype(np.uint32)
    flags = np.ones(n_rows, dtype=np.uint32)
    store.append_batch(SharedTable.from_plain(schema, rows, flags, gen), 1)
    return store


def test_bench_planner_routing_overhead(benchmark):
    """Planning must be negligible next to the view scan it routes to."""
    vd = _view_def("hot")
    candidates = [
        ViewCandidate(_view_def("hot"), 4096),
        ViewCandidate(_view_def("warm"), 8192),
        ViewCandidate(_view_def("cold"), 16384),
    ]
    model = MPCRuntime(seed=0).cost_model
    query = _count_query()

    plan = benchmark(
        plan_query, query, candidates, 50_000, 50_000, model, True, 1.0
    )
    assert plan.kind == VIEW_SCAN
    assert plan.view_name == "hot"

    # Wall-clock the single view scan the plan chose (4096 padded slots).
    runtime = MPCRuntime(seed=0)
    view = _materialized_view(vd, 4096)
    t0 = _time.perf_counter()
    execute_view_count(runtime, 1, view, ViewCountQuery("hot"))
    scan_wall = _time.perf_counter() - t0

    planner_wall = benchmark.stats.stats.median
    assert planner_wall < scan_wall, (
        f"planner median {planner_wall * 1e6:.1f}µs should be well under one "
        f"view scan ({scan_wall * 1e6:.1f}µs)"
    )


@pytest.mark.parametrize(
    "view_rows,store_rows,expected",
    [(128, 2048, VIEW_SCAN), (65536, 64, NM_JOIN)],
)
def test_planner_agrees_with_simulated_execution(view_rows, store_rows, expected):
    """Whenever the cost model ranks one path cheaper, the planner picks
    it — and actually executing both paths confirms the ranking."""
    vd = _view_def("v")
    runtime = MPCRuntime(seed=1)
    plan = plan_query(
        _count_query(),
        [ViewCandidate(vd, view_rows)],
        store_rows,
        store_rows,
        runtime.cost_model,
    )
    assert plan.kind == expected

    view = _materialized_view(vd, view_rows)
    probe_store = _store(PROBE_SCHEMA, "orders", store_rows, seed=2)
    driver_store = _store(DRIVER_SCHEMA, "shipments", store_rows, seed=3)
    _, scan_seconds = execute_view_count(runtime, 1, view, ViewCountQuery("v"))
    _, nm_seconds = execute_nm_count(runtime, 1, probe_store, driver_store, vd)
    simulated_winner = VIEW_SCAN if scan_seconds <= nm_seconds else NM_JOIN
    assert simulated_winner == expected
