"""Benchmark: Figure 8 — truncation bound (ω) sweep on CPDB/Q2.

Shape claims (Observations 7-8):

* L1 error is largest at the smallest ω (genuine join pairs truncated)
  and improves once ω covers the data's real multiplicity;
* QET degrades as ω grows (more padded slots to scan);
* Transform's execution time is flat in ω; Shrink's grows with ω.
"""

from conftest import emit

from repro.experiments.figure8 import format_figure8, run_figure8

OMEGAS = (2, 4, 8, 16, 32)
SEEDS = (0,)
N_STEPS = 120


def test_figure8(benchmark):
    results = benchmark.pedantic(
        run_figure8,
        kwargs={"omegas": OMEGAS, "seeds": SEEDS, "n_steps": N_STEPS},
        rounds=1,
        iterations=1,
    )
    emit(format_figure8("cpdb", results))

    for mode in ("dp-timer", "dp-ant"):
        per = results[mode]
        l1 = [per[w][0] for w in OMEGAS]
        qet = [per[w][1] for w in OMEGAS]
        transform = [per[w][2] for w in OMEGAS]
        shrink = [per[w][3] for w in OMEGAS]

        # Truncation error dominates at ω=2 relative to a saturating ω.
        assert l1[0] > l1[2]
        # Padding cost: scanning the view is slower at ω=32 than ω=2.
        assert qet[-1] > qet[0]
        # Transform is flat in ω (its input is the upload window) while
        # Shrink's oblivious sort grows with the ω-padded cache.
        assert shrink[-1] > 3 * shrink[0]
        spread = max(transform) / max(min(transform), 1e-12)
        assert spread < 2.0
