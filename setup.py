"""Thin setuptools shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs (which build an editable wheel)
fail.  Keeping a setup.py and no ``[build-system]`` table lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works everywhere.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
