"""Sharded serving: a 4-shard database through its full life cycle.

Drives a 4-shard :class:`~repro.server.runtime.DatabaseServer` through

1. **ingest** — owners stream padded batches into the background loop;
   every view and cache scatters its rows round-robin across 4 shards;
2. **checkpoint** — a mid-stream snapshot (format v2) captures the shard
   layout alongside shares, ledgers, and RNG streams;
3. **resume** — a second server restores from the snapshot and continues
   the remaining stream exactly where the first stopped;
4. **parallel query** — read sessions answer a 3-aggregate GROUP BY
   dashboard query, executed one shard per worker thread and priced at
   1/4 of the serial wall clock by the cost model.

Run:  PYTHONPATH=src python examples/sharded_serving.py
"""

import tempfile
from pathlib import Path

from repro.experiments.harness import (
    MultiViewRunConfig,
    build_multiview_deployment,
)
from repro.query.ast import AggregateSpec, LogicalQuery
from repro.server.runtime import DatabaseServer

N_SHARDS = 4
N_STEPS = 32
STOP_AFTER = 16  # checkpoint boundary: the resume continues from here


def dashboard_query(deployment) -> LogicalQuery:
    """COUNT + SUM + AVG over the canonical join — one parallel scan."""
    vd = deployment.workload.view_def
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of(vd.driver_table, vd.driver_ts),
        AggregateSpec.avg_of(vd.driver_table, vd.driver_ts),
    )


def feed(server, deployment, steps) -> None:
    for step in steps:
        server.submit(step.time, deployment.upload_items(step))
    server.drain()


def shard_report(db) -> str:
    return "\n".join(
        f"    {name:<22} {vr.mode:<9} shards={vr.view.shard_lengths()}"
        for name, vr in db.views.items()
    )


def main() -> None:
    snapshot = Path(tempfile.mkdtemp()) / "sharded.snap"
    config = MultiViewRunConfig(
        dataset="tpcds", n_steps=N_STEPS, seed=11, n_shards=N_SHARDS
    )
    deployment = build_multiview_deployment(config)

    # 1. ingest the first half of the stream through the background loop
    server = DatabaseServer(deployment.database, snapshot_path=str(snapshot))
    server.metadata["example"] = "sharded_serving"
    server.start()
    first_half = [s for s in deployment.workload.steps if s.time <= STOP_AFTER]
    feed(server, deployment, first_half)
    print(f"ingested {server.last_time}/{N_STEPS} steps into {N_SHARDS} shards:")
    print(shard_report(server.database))

    # 2. checkpoint at a step boundary and stop (simulating a restart)
    server.stop(final_snapshot=True)
    print(f"\ncheckpointed to {snapshot.name} "
          f"({server.stats.last_snapshot_bytes} bytes, format v2 carries "
          f"n_shards={server.database.n_shards})")

    # 3. resume in a "fresh process" and continue the stream
    resumed = DatabaseServer.resume(str(snapshot))
    resumed.start()
    rest = [
        s for s in deployment.workload.steps if s.time > resumed.last_time
    ]
    feed(resumed, deployment, rest)
    db = resumed.database
    print(f"\nresumed from step {STOP_AFTER}, ingested through "
          f"{resumed.last_time}; layout survived: n_shards={db.n_shards}")

    # 4. parallel queries from concurrent read sessions
    query = dashboard_query(deployment)
    sessions = [resumed.session(f"analyst-{i}") for i in range(2)]
    results = [s.query(query) for s in sessions]
    result = results[0]
    assert all(r.answers == result.answers for r in results)
    workers = db.runtime.cost_model.effective_workers(db.n_shards)
    print(f"\ndashboard query: plan={result.plan.kind} -> "
          f"{result.plan.view_name} x {result.plan.n_shards} shards")
    print(f"  columns : {result.answers.columns}")
    print(f"  answers : {result.answers.rows[0]}")
    print(f"  truth   : {result.logical_answers.rows[0]}")
    print(f"  QET     : {result.observation.qet_seconds:.4f} s simulated "
          f"({workers} parallel lanes; a 1-shard deployment would take "
          f"{result.observation.qet_seconds * workers:.4f} s)")
    print(f"  realized epsilon: {db.realized_epsilon():.4f} "
          f"<= {config.total_epsilon} (unchanged by sharding)")

    resumed.stop()


if __name__ == "__main__":
    main()
