"""The 3-way trade-off as a user-facing dial.

IncShrink's pitch is that ε is an *operational* knob: spend more privacy
budget and both accuracy and efficiency improve; spend less and the
system hides more while costing more.  This example turns the dial on
one workload and prints the resulting (privacy, accuracy, efficiency)
triples, plus the Theorem-4 deferred-data bound next to the worst
deferral actually observed — the theory and the simulation side by side.

Run:  python examples/privacy_dial.py
"""

from repro.dp.bounds import theorem4_deferred_bound
from repro.experiments.harness import RunConfig, run_experiment


def main() -> None:
    print("sDPTimer on the TPC-ds stream, 160 days, one query per day\n")
    header = (
        f"{'epsilon':>8}  {'avg L1':>8}  {'avg QET (ms)':>12}  "
        f"{'view rows':>9}  {'worst deferral':>14}  {'Thm-4 bound':>11}"
    )
    print(header)
    print("-" * len(header))
    for eps in (0.05, 0.5, 1.5, 5.0, 50.0):
        res = run_experiment(
            RunConfig(
                dataset="tpcds", mode="dp-timer", epsilon=eps,
                n_steps=160, seed=4,
            )
        )
        updates = res.engine.policy.updates_done
        bound = theorem4_deferred_bound(
            eps, res.engine.view_def.budget, max(updates, 1), beta=0.05
        )
        s = res.summary
        print(
            f"{eps:>8}  {s.avg_l1_error:8.2f}  {s.avg_qet_seconds*1e3:12.3f}  "
            f"{s.avg_view_size_rows:9.0f}  {s.max_deferred:>14}  {bound:11.1f}"
        )
    print()
    print("More privacy (small epsilon) -> noisier cache reads -> more dummy")
    print("rows in the view (slower queries) and more deferred data (larger")
    print("errors). The observed worst deferral stays under the Theorem 4")
    print("bound, which is what lets deployments pick a safe flush size.")


if __name__ == "__main__":
    main()
