"""Quickstart: deploy IncShrink on a tiny synthetic workload.

Walks the complete Figure-1 workflow in ~40 lines of driving code:

1. generate a seeded TPC-ds-style Sales/Returns stream;
2. deploy an IncShrink engine with the sDPTimer view-update protocol;
3. each simulated day: owners upload padded secret-shared batches, the
   servers run Transform (+ Shrink when the timer fires), and the
   analyst asks "how many products were returned within the window?";
4. print per-day answers and the end-of-run accuracy/efficiency/privacy
   summary.

Run:  python examples/quickstart.py
"""

from repro import EngineConfig, IncShrinkEngine
from repro.workload import make_tpcds_workload


def main() -> None:
    workload = make_tpcds_workload(seed=42, n_steps=60)
    print(f"workload: {workload.n_steps} days, "
          f"≈{workload.average_view_rate():.1f} new view entries/day")

    engine = IncShrinkEngine(
        workload.view_def,
        EngineConfig(
            mode="dp-timer",      # the timer-based Shrink protocol
            epsilon=1.5,          # total DP budget for the update leakage
            timer_interval=10,    # sync the view every 10 days
            flush_interval=30,    # recycle the secure cache periodically
            flush_size=40,
        ),
    )

    for step in workload.steps:
        engine.upload(step.time, step.probe, step.driver)
        engine.process_step(step.time)
        obs = engine.query_count(step.time)
        if step.time % 10 == 0:
            print(
                f"day {step.time:3d}: view answer = {obs.view_answer:6.0f}  "
                f"truth = {obs.logical_answer:6.0f}  "
                f"L1 = {obs.l1:5.0f}  QET = {obs.qet_seconds*1e3:7.2f} ms"
            )

    summary = engine.metrics.summary()
    print()
    print(f"avg L1 error        : {summary.avg_l1_error:.2f}")
    print(f"avg relative error  : {summary.avg_relative_error:.3f}")
    print(f"avg QET             : {summary.avg_qet_seconds*1e3:.2f} ms (simulated)")
    print(f"avg view size       : {summary.avg_view_size_rows:.0f} rows "
          f"({summary.avg_view_size_mb*1e3:.1f} KB/server)")
    print(f"realized epsilon    : {engine.realized_epsilon():.3f} "
          f"(configured {engine.config.epsilon})")


if __name__ == "__main__":
    main()
