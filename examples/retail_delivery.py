"""The paper's motivating scenario: a retailer and a courier company.

Section 1's running example: a retail store holds private sales data, a
courier company holds private delivery records, and the store owner
wants to know — continuously — how many products were delivered on time
(within 2 days of the courier accepting the package).  Neither party
trusts the cloud servers with plaintext.

This example builds the scenario from the public API directly (no
prepackaged workload generator): it defines custom schemas, a view over
the on-time-delivery join, streams both parties' uploads, and contrasts
the view-based answers against the naïve non-materialization baseline
that recomputes the join for every question.

Run:  python examples/retail_delivery.py
"""

import numpy as np

from repro import EngineConfig, IncShrinkEngine, JoinViewDefinition, Schema
from repro.common.types import RecordBatch
from repro.common.rng import spawn

SALES = Schema(("package_id", "order_day"))
DELIVERIES = Schema(("package_id", "delivery_day"))

#: a delivery is "on time" within this many days of the order
ON_TIME_WINDOW = 2
DAYS = 50
SALES_CAPACITY = 10
DELIVERY_CAPACITY = 10


def on_time_delivery_view() -> JoinViewDefinition:
    """Materialize the join of sales with their on-time deliveries."""
    return JoinViewDefinition(
        name="on-time-deliveries",
        probe_table="sales",
        probe_schema=SALES,
        probe_key="package_id",
        probe_ts="order_day",
        driver_table="deliveries",
        driver_schema=DELIVERIES,
        driver_key="package_id",
        driver_ts="delivery_day",
        window_lo=0,
        window_hi=ON_TIME_WINDOW,
        omega=1,                    # each package is delivered once
        budget=ON_TIME_WINDOW + 1,  # a sale stays joinable over the window
    )


def simulate_day(gen, day, pending):
    """The two companies' records for one day (plaintext, owner-side)."""
    n_sales = int(gen.integers(2, 7))
    sales = []
    for _ in range(n_sales):
        pid = int(gen.integers(1, 1 << 30))
        sales.append((pid, day))
        delay = int(gen.integers(0, 5))  # some deliveries miss the window
        pending.setdefault(day + delay, []).append((pid, day + delay))
    deliveries = pending.pop(day, [])
    return sales, deliveries


def main() -> None:
    view_def = on_time_delivery_view()
    gen = spawn(7, "retail")
    pending: dict[int, list[tuple[int, int]]] = {}

    engines = {
        "IncShrink (sDPANT)": IncShrinkEngine(
            view_def,
            EngineConfig(mode="dp-ant", epsilon=2.0, ant_threshold=8.0,
                         flush_interval=20, flush_size=25),
        ),
        "naive NM baseline": IncShrinkEngine(view_def, EngineConfig(mode="nm")),
    }

    for day in range(1, DAYS + 1):
        sales, deliveries = simulate_day(gen, day, pending)
        probe = RecordBatch(
            SALES, np.asarray(sales, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(SALES_CAPACITY)
        driver = RecordBatch(
            DELIVERIES, np.asarray(deliveries, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(DELIVERY_CAPACITY)
        for engine in engines.values():
            engine.upload(day, probe, driver)
            engine.process_step(day)
            engine.query_count(day)

    print(f"'How many packages were delivered within {ON_TIME_WINDOW} days?'")
    print(f"asked once per day for {DAYS} days:\n")
    rows = []
    for name, engine in engines.items():
        s = engine.metrics.summary()
        rows.append((name, s.avg_l1_error, s.avg_qet_seconds, s.total_qet_seconds))
    for name, l1, qet, total in rows:
        print(f"  {name:22s} avg L1 = {l1:6.2f}   "
              f"avg QET = {qet*1e3:9.3f} ms   total = {total:8.3f} s")
    speedup = rows[1][2] / max(rows[0][2], 1e-12)
    print(f"\nview-based answering is {speedup:,.0f}x faster per query here, "
          "and the gap widens as the outsourced history grows.")


if __name__ == "__main__":
    main()
