"""Section 8's multi-server extension: IncShrink beyond two servers.

The prototype assumes two non-colluding servers; the paper sketches how
the architecture generalises to N servers with (N, N) secret sharing,
N-party protocols, and joint noise built from one contribution per
server.  This example runs a miniature view-update round across a
4-server group and demonstrates the two security properties that make
the extension worthwhile:

1. any coalition of up to N-1 servers sees only uniform noise;
2. widening the server set does NOT add noise — the joint generator
   still produces exactly one Lap(Δ/ε) instance.

Run:  python examples/multi_server.py
"""

import numpy as np

from repro.common.types import Schema
from repro.mpc.multiparty import ServerGroup
from repro.oblivious.sort import composite_key, oblivious_sort

SCHEMA = Schema(("order_id", "day"))
N_SERVERS = 4


class _SortCostAdapter:
    """Bridge the N-party context into the shared sorting helper."""

    def __init__(self, ctx, cost_model):
        self._ctx = ctx
        self._model = cost_model

    def charge_compare_exchanges(self, count, words):
        self._ctx.charge_gates(count * self._model.compare_exchange_gates(words))


def main() -> None:
    group = ServerGroup(N_SERVERS, seed=3)
    print(f"server group: {N_SERVERS} non-colluding servers, "
          f"tolerates up to {N_SERVERS - 1} corruptions\n")

    # --- owners upload an (N,N)-shared padded cache ----------------------
    rows = np.asarray(
        [[101, 1], [0, 0], [102, 1], [103, 2], [0, 0], [0, 0]], dtype=np.uint32
    )
    flags = np.asarray([1, 0, 1, 1, 0, 0], dtype=np.uint32)
    cache = group.owner_share_table(SCHEMA, rows, flags)

    # --- what a coalition of N-1 corrupted servers learns ----------------
    coalition = list(range(N_SERVERS - 1))
    view = group.corruption_view(cache.rows, corrupted=coalition)
    print(f"coalition of servers {coalition} holding {N_SERVERS - 1}/{N_SERVERS} shares sees:")
    print(f"  {view[:3].tolist()} ...  (uniform noise, real ids are 101-103)\n")

    # --- one N-party Shrink round ----------------------------------------
    with group.protocol("shrink-n", time=1) as ctx:
        plain_rows, plain_flags = ctx.reveal_table(cache)
        keys = composite_key(
            np.where(plain_flags, 0, 1).astype(np.uint32),
            np.arange(len(plain_rows), dtype=np.uint32),
        )
        adapter = _SortCostAdapter(ctx, group.cost_model)
        _, [sorted_rows, sorted_flags] = oblivious_sort(
            adapter, keys, [plain_rows, plain_flags.astype(np.uint32)], 3
        )
        noise = ctx.joint_laplace(sensitivity=1.0, epsilon=2.0)
        size = max(0, round(int(plain_flags.sum()) + noise))
        fetched = ctx.share_table(SCHEMA, sorted_rows[:size], sorted_flags[:size])
        ctx.publish("view-update", size=size)
        print(f"joint Lap(1/2.0) noise from {N_SERVERS} contributions: {noise:+.2f}")
        print(f"DP-sized fetch: {size} of {len(plain_rows)} cached slots "
              f"({ctx.seconds*1e3:.2f} ms simulated)\n")

    # --- noise stays a single instance for any N --------------------------
    print("noise std by group size (Lap(1) has std 1.414 regardless of N):")
    for n in (2, 3, 6):
        g = ServerGroup(n, seed=1)
        with g.protocol("p") as ctx:
            draws = [ctx.joint_laplace(1.0, 1.0) for _ in range(20_000)]
        print(f"  N={n}: std = {np.std(draws):.3f}")


if __name__ == "__main__":
    main()
