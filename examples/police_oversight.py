"""The CPDB scenario: private misconduct data joined with public awards.

The paper's Q2 asks how often an officer received a departmental award
within days of being found to have committed misconduct.  The Allegation
table is sensitive (it is outsourced secret-shared); the Award table is
public.  The materialized view has join multiplicity > 1 — one
allegation can pair with several awards — which is exactly what the
truncation bound ω and contribution budget b exist for.

This example sweeps ω to show the truncation trade-off of Section 7.4:
tiny ω silently drops genuine join pairs (biased answers), generous ω
pays with more padded slots everywhere (slower Shrink and queries).

Run:  python examples/police_oversight.py
"""

from repro import EngineConfig, IncShrinkEngine
from repro.workload import make_cpdb_workload


def run_with_omega(omega: int, budget: int, n_steps: int = 80):
    workload = make_cpdb_workload(
        seed=11, n_steps=n_steps, omega=omega, budget=budget
    )
    engine = IncShrinkEngine(
        workload.view_def,
        EngineConfig(
            mode="dp-timer", epsilon=1.5, timer_interval=3,
            flush_interval=30, flush_size=170,
        ),
    )
    dropped = 0
    for step in workload.steps:
        engine.upload(step.time, step.probe, step.driver)
        report = engine.process_step(step.time)
        dropped += report.truncation_dropped
        engine.query_count(step.time)
    return engine.metrics.summary(), dropped


def main() -> None:
    print("CPDB oversight query: awards within the window of a misconduct")
    print("finding, under different truncation bounds (b = 2ω):\n")
    header = (
        f"{'omega':>5}  {'avg L1':>8}  {'rel err':>8}  {'QET (ms)':>9}  "
        f"{'Shrink (s)':>10}  {'pairs dropped':>13}"
    )
    print(header)
    print("-" * len(header))
    for omega in (1, 2, 4, 10, 20):
        summary, dropped = run_with_omega(omega, budget=2 * omega)
        print(
            f"{omega:>5}  {summary.avg_l1_error:8.2f}  "
            f"{summary.avg_relative_error:8.3f}  "
            f"{summary.avg_qet_seconds*1e3:9.2f}  "
            f"{summary.avg_shrink_seconds:10.2f}  {dropped:>13}"
        )
    print()
    print("Small omega truncates genuine pairs (large L1, zero scan cost);")
    print("large omega stops dropping pairs but pads every cache and view")
    print("slot omega-wide, so Shrink sorts and query scans keep growing.")


if __name__ == "__main__":
    main()
