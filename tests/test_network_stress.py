"""Slow-client stress tests for the reactor (ISSUE 7 satellite).

The point of the event-driven rewrite is that unproductive peers cost
state, not threads — so these tests attack exactly that:

* **slow-loris writers** dribble a frame one byte at a time, never
  completing it: the idle clock keys on *completed frames*, so the
  dribble does not keep the slot alive, and the loop timer reclaims it
  while a concurrent well-behaved client stays fully served;
* **stalled readers** stop draining their socket while pipelining
  requests: once the kernel buffers fill, the server's per-connection
  write buffer grows to its cap (or stalls past the progress deadline)
  and the connection is severed — without blocking anybody else;
* **idle herds** (100 open connections doing nothing) are reclaimed by
  the timers, returning ``open_connections`` to zero;
* **bounded reassembly** — the server-side high-water mark of the frame
  reassembly buffers never exceeds one declared frame, even under the
  dribble.
"""

from __future__ import annotations

import socket
import threading
import time as _time

import pytest

from repro.net import protocol as wire
from repro.net.client import IncShrinkClient
from repro.net.server import NetworkServer
from repro.server.runtime import DatabaseServer

from test_network import batches_at, build_database, query_mix


def _make_net(**kwargs) -> tuple[DatabaseServer, NetworkServer]:
    server = DatabaseServer(build_database(), snapshot_every=None)
    defaults = dict(max_connections=128, max_inflight=8, loop_threads=2)
    defaults.update(kwargs)
    net = NetworkServer(server, **defaults).start()
    return server, net


def _ingest(net: NetworkServer) -> None:
    host, port = net.address
    with IncShrinkClient(host, port, name="seed") as client:
        for t in range(1, 4):
            client.upload(t, batches_at(t), wait=t == 3)


def _wait_for_eof(sock: socket.socket, deadline_s: float) -> bool:
    """True when the server closes ``sock`` before the deadline."""
    sock.settimeout(deadline_s)
    try:
        while True:
            if sock.recv(65536) == b"":
                return True
    except socket.timeout:
        return False
    except OSError:
        return True


def test_slow_loris_writer_is_reaped_while_others_are_served():
    server, net = _make_net(idle_timeout=0.4)
    try:
        _ingest(net)
        host, port = net.address
        loris = socket.create_connection((host, port), timeout=10.0)
        frame = wire.encode_frame("hello", {"client": "loris"})

        reaped = []

        def dribble() -> None:
            # One byte every 50 ms: bytes keep flowing, but no frame
            # ever completes, so the idle clock never resets.
            try:
                for byte in frame[:-1]:
                    loris.sendall(bytes([byte]))
                    _time.sleep(0.05)
            except OSError:
                reaped.append(True)  # server hung up mid-dribble

        writer = threading.Thread(target=dribble)
        writer.start()

        # Meanwhile a well-behaved client gets full service.
        with IncShrinkClient(host, port, name="honest") as client:
            for _ in range(5):
                result = client.query(query_mix()[0])
                assert result.answers.rows
        writer.join()
        assert reaped or _wait_for_eof(loris, 3.0), (
            "slow-loris connection survived the idle timer"
        )
        loris.close()
        # Reassembly memory stayed bounded by the dribbled frame.
        assert net._reassembly_hwm <= max(len(frame), 4096)
        assert net._unhandled_errors == []
    finally:
        net.close(stop_server=True)


def test_partial_header_dribble_never_buffers_past_one_frame():
    server, net = _make_net(idle_timeout=0.4)
    try:
        host, port = net.address
        socks = []
        for i in range(10):
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(b"INCW"[: 1 + i % 3])  # a few magic bytes, then silence
            socks.append(sock)
        for sock in socks:
            assert _wait_for_eof(sock, 3.0)
            sock.close()
        assert net._reassembly_hwm <= 4096
        assert net._unhandled_errors == []
    finally:
        net.close(stop_server=True)


def test_stalled_reader_is_disconnected_without_blocking_others():
    # Pin SO_SNDBUF server-side: Linux autotunes it to ~4 MB otherwise,
    # and all of that kernel absorption sits between the reactor's write
    # buffer and the stalled peer, making the cap unreachable in test
    # time.  With a bounded sndbuf the cap trips after a few hundred
    # responses.
    server, net = _make_net(
        idle_timeout=0.5,
        max_write_buffer=64 * 1024,
        socket_sndbuf=32 * 1024,
    )
    try:
        _ingest(net)
        host, port = net.address

        # The stalled reader: tiny receive window, a pipelined flood of
        # stats requests, and it never reads a byte of the responses —
        # so the kernel buffers fill, the server's per-connection write
        # buffer grows past its cap (or the write-stall timer fires),
        # and the reactor severs the connection.
        stalled = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        stalled.connect((host, port))
        stalled.settimeout(5.0)
        burst = wire.encode_frame("stats", {}) * 200
        try:
            for _ in range(10):  # ~2000 pipelined requests, ~1 MB answers
                stalled.send(burst)
        except OSError:
            pass  # kernel refused more, or the server already reset us

        # Detection is server-side: the stalled conn is the only one
        # open, so the slot count dropping to zero *is* the severance.
        # (Reading the socket to watch for EOF would drain the backlog
        # and turn us back into a healthy client.)
        deadline = _time.monotonic() + 20.0
        while net.open_connections and _time.monotonic() < deadline:
            _time.sleep(0.05)
        assert net.open_connections == 0, (
            "stalled reader kept its slot past the write-buffer cap "
            "and the write-stall deadline"
        )
        stalled.close()

        # The server stayed fully live for everybody else.
        with IncShrinkClient(host, port, name="honest") as client:
            result = client.query(query_mix()[0])
            assert result.answers.rows
        assert net._unhandled_errors == []
    finally:
        net.close(stop_server=True)


@pytest.mark.parametrize("n_idle", [100])
def test_idle_herd_is_reclaimed_by_loop_timers(n_idle):
    server, net = _make_net(idle_timeout=0.5, max_connections=256)
    try:
        host, port = net.address
        herd = []
        for i in range(n_idle):
            sock = socket.create_connection((host, port), timeout=10.0)
            if i % 2 == 0:
                # Half the herd completes a handshake first: an idle
                # *authenticated* connection is reaped all the same.
                sock.sendall(wire.encode_frame("hello", {"client": f"idle{i}"}))
            herd.append(sock)
        # Wait for the herd to be fully admitted, then go silent.
        deadline = _time.monotonic() + 5.0
        while net.open_connections < n_idle and _time.monotonic() < deadline:
            _time.sleep(0.02)
        assert net.open_connections == n_idle

        # Every slot returns within a few timer periods.
        deadline = _time.monotonic() + 6.0
        while net.open_connections and _time.monotonic() < deadline:
            _time.sleep(0.05)
        assert net.open_connections == 0

        # And the server still serves new work afterwards.
        _ingest(net)
        with IncShrinkClient(host, port, name="after-herd") as client:
            assert client.query(query_mix()[0]).answers.rows
        for sock in herd:
            sock.close()
        assert net._unhandled_errors == []
    finally:
        net.close(stop_server=True)


def test_executing_connections_are_not_reaped_mid_request():
    # A request slower than the idle timeout must still get its answer:
    # the reaper skips connections with work on the executor.
    server, net = _make_net(idle_timeout=0.3)
    try:
        _ingest(net)
        host, port = net.address
        original = server.query

        def slow_query(*args, **kwargs):
            _time.sleep(0.9)  # 3x the idle timeout
            return original(*args, **kwargs)

        server.query = slow_query
        try:
            with IncShrinkClient(host, port, name="patient", timeout=30.0) as c:
                result = c.query(query_mix()[0])
                assert result.answers.rows
        finally:
            server.query = original
        assert net._unhandled_errors == []
    finally:
        net.close(stop_server=True)
