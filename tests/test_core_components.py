"""Tests for core components: counter, budget ledger, view definition."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ContributionBudgetError
from repro.common.types import Schema
from repro.core.budget import ContributionLedger
from repro.core.counter import SharedCounter
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime


class TestSharedCounter:
    def test_starts_at_zero(self, runtime):
        counter = SharedCounter()
        with runtime.protocol("p") as ctx:
            assert counter.read(ctx) == 0

    def test_add_accumulates_across_protocols(self, runtime):
        counter = SharedCounter()
        with runtime.protocol("p1") as ctx:
            assert counter.add(ctx, 5) == 5
        with runtime.protocol("p2") as ctx:
            assert counter.add(ctx, 3) == 8
            assert counter.read(ctx) == 8

    def test_reset(self, runtime):
        counter = SharedCounter()
        with runtime.protocol("p") as ctx:
            counter.add(ctx, 7)
            counter.reset(ctx)
            assert counter.read(ctx) == 0

    def test_reshare_refreshes_share_material(self, runtime):
        """Adding 0 must still re-randomise the stored shares — a server
        diffing its share across rounds learns nothing."""
        counter = SharedCounter()
        with runtime.protocol("p") as ctx:
            counter.add(ctx, 5)
            before = counter._shares.share0.copy()
            counter.add(ctx, 0)
            after = counter._shares.share0
        assert (before != after).any()

    def test_charges_counter_circuit(self, runtime):
        counter = SharedCounter()
        with runtime.protocol("p") as ctx:
            counter.add(ctx, 1)
            assert ctx.gates >= runtime.cost_model.counter_update_gates()


class TestContributionLedger:
    def test_invocation_budget_lifecycle(self):
        ledger = ContributionLedger(omega=2, budget=6)
        ledger.register_batch("t", 1, n_rows=3)
        assert ledger.remaining_uses("t", 1) == 3
        ledger.charge_invocation("t", 1, at_time=1)
        ledger.charge_invocation("t", 1, at_time=2)
        ledger.charge_invocation("t", 1, at_time=3)
        assert ledger.remaining_uses("t", 1) == 0
        with pytest.raises(ContributionBudgetError, match="no remaining"):
            ledger.charge_invocation("t", 1, at_time=4)

    def test_caps_shrink_with_emissions(self):
        ledger = ContributionLedger(omega=2, budget=6)
        ledger.register_batch("t", 1, n_rows=2)
        assert ledger.caps("t", 1).tolist() == [6, 6]
        ledger.record_emissions("t", 1, np.asarray([2, 1]))
        assert ledger.caps("t", 1).tolist() == [4, 5]

    def test_per_invocation_emission_limit(self):
        ledger = ContributionLedger(omega=2, budget=6)
        ledger.register_batch("t", 1, n_rows=1)
        with pytest.raises(ContributionBudgetError, match="omega"):
            ledger.record_emissions("t", 1, np.asarray([3]))

    def test_lifetime_emission_limit(self):
        ledger = ContributionLedger(omega=2, budget=3)
        ledger.register_batch("t", 1, n_rows=1)
        ledger.record_emissions("t", 1, np.asarray([2]))
        with pytest.raises(ContributionBudgetError, match="lifetime"):
            ledger.record_emissions("t", 1, np.asarray([2]))

    def test_duplicate_registration_rejected(self):
        ledger = ContributionLedger(omega=1, budget=2)
        ledger.register_batch("t", 1, 1)
        with pytest.raises(ContributionBudgetError):
            ledger.register_batch("t", 1, 1)

    def test_unregistered_batch_rejected(self):
        ledger = ContributionLedger(omega=1, budget=2)
        with pytest.raises(ContributionBudgetError, match="never registered"):
            ledger.caps("t", 99)

    def test_emission_shape_mismatch_rejected(self):
        ledger = ContributionLedger(omega=1, budget=2)
        ledger.register_batch("t", 1, 2)
        with pytest.raises(ContributionBudgetError, match="shape"):
            ledger.record_emissions("t", 1, np.asarray([1]))

    def test_invalid_parameters(self):
        with pytest.raises(ContributionBudgetError):
            ContributionLedger(omega=0, budget=5)
        with pytest.raises(ContributionBudgetError):
            ContributionLedger(omega=5, budget=3)

    def test_theorem3_contributions_shape(self):
        ledger = ContributionLedger(omega=2, budget=4)
        ledger.register_batch("t", 1, n_rows=2)
        ledger.charge_invocation("t", 1, at_time=1)
        contributions = ledger.theorem3_contributions(per_release_epsilon=0.1)
        assert contributions[("t", 1, 0)] == [(2.0, 0.1)]
        assert contributions[("t", 1, 1)] == [(2.0, 0.1)]

    def test_max_lifetime_emissions(self):
        ledger = ContributionLedger(omega=2, budget=6)
        ledger.register_batch("t", 1, n_rows=2)
        ledger.record_emissions("t", 1, np.asarray([2, 0]))
        ledger.record_emissions("t", 1, np.asarray([1, 1]))
        assert ledger.max_lifetime_emissions() == 3


class TestJoinViewDefinition:
    def test_window_invocations(self, tiny_view_def):
        assert tiny_view_def.window_invocations == 3  # b=6, ω=2

    def test_view_schema_prefixes(self, tiny_view_def):
        assert tiny_view_def.view_schema.fields == ("p_key", "p_ots", "d_key", "d_sts")

    def test_pair_predicate_window(self, tiny_view_def):
        probe = np.asarray([1, 10], dtype=np.uint32)
        assert tiny_view_def.pair_predicate(probe, np.asarray([1, 12], dtype=np.uint32))
        assert not tiny_view_def.pair_predicate(probe, np.asarray([1, 13], dtype=np.uint32))
        assert not tiny_view_def.pair_predicate(probe, np.asarray([1, 9], dtype=np.uint32))

    def test_logical_join_count(self, tiny_view_def):
        probe = np.asarray([[1, 10], [1, 11], [2, 10]], dtype=np.uint32)
        driver = np.asarray([[1, 12], [2, 15]], dtype=np.uint32)
        # (1,10)x(1,12): delta 2 ok; (1,11)x(1,12): delta 1 ok; (2,...) delta 5 no.
        assert tiny_view_def.logical_join_count(probe, driver) == 2

    def test_logical_join_rows_match_count(self, tiny_view_def):
        probe = np.asarray([[1, 10], [1, 11]], dtype=np.uint32)
        driver = np.asarray([[1, 12]], dtype=np.uint32)
        rows = tiny_view_def.logical_join_rows(probe, driver)
        assert rows.shape == (2, 4)

    def test_empty_inputs(self, tiny_view_def):
        empty_p = np.zeros((0, 2), dtype=np.uint32)
        empty_d = np.zeros((0, 2), dtype=np.uint32)
        assert tiny_view_def.logical_join_count(empty_p, empty_d) == 0
        assert len(tiny_view_def.logical_join_rows(empty_p, empty_d)) == 0

    def test_validation(self):
        kwargs = dict(
            name="x",
            probe_table="a",
            probe_schema=Schema(("k", "t")),
            probe_key="k",
            probe_ts="t",
            driver_table="b",
            driver_schema=Schema(("k", "t")),
            driver_key="k",
            driver_ts="t",
            window_lo=0,
            window_hi=1,
        )
        with pytest.raises(ConfigurationError):
            JoinViewDefinition(omega=0, budget=1, **kwargs)
        with pytest.raises(ConfigurationError):
            JoinViewDefinition(omega=5, budget=3, **kwargs)
        with pytest.raises(ConfigurationError):
            JoinViewDefinition(
                omega=1, budget=1, **{**kwargs, "window_lo": 5, "window_hi": 4}
            )
