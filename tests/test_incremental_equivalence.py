"""Incremental (warm-cache) execution is provably a no-op for everything
but the gate bill.

The acceptance criterion of the incremental scan subsystem
(:mod:`repro.query.incremental`): for randomized append/query
interleavings, shard counts ∈ {1, 2, 4}, and both execution backends, a
database answering repeat queries from cached per-shard prefix
accumulators returns **byte-identical** answers, reports the
**identical realized ε**, and charges **exactly the suffix gates** —
``delta_rows × per_row_gates`` — for every warm scan, compared against
a twin deployment with incremental execution disabled.

Alongside the end-to-end property suite, this file unit-tests the
:class:`~repro.query.incremental.AccumulatorCache` (validity, LRU
eviction, side-effect-free planning reads) and the invalidation paths
(``reshard`` and ``restore_state``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.query.ast import (
    AggregateSpec,
    ColumnRange,
    GroupBySpec,
    LogicalQuery,
)
from repro.query.incremental import AccumulatorCache, ShardAccumulator
from repro.query.shard_workers import shutdown_process_backend
from repro.server.database import IncShrinkDatabase, ViewRegistration

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("thread", "process")


def make_view_def(name: str = "full") -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def count_query(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(vd, AggregateSpec.count())


def dashboard_query(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (0, 1, 2, 3)),
        predicate=ColumnRange("shipments", "sts", 0, 40),
    )


def build_database(
    n_shards: int, backend: str, incremental: bool, mode: str = "dp-timer", **kwargs
) -> IncShrinkDatabase:
    db = IncShrinkDatabase(
        total_epsilon=2000.0,
        seed=7,
        n_shards=n_shards,
        scan_backend=backend,
        incremental=incremental,
        **kwargs,
    )
    reg = (
        ViewRegistration(make_view_def("full"), mode="ep")
        if mode == "ep"
        else ViewRegistration(
            make_view_def("full"), mode="dp-timer", timer_interval=1
        )
    )
    db.register_view(reg)
    return db


def upload_step(db: IncShrinkDatabase, t: int, gen: np.random.Generator) -> None:
    probe = gen.integers(1, 5, size=(int(gen.integers(0, 4)), 1)).astype(np.uint32)
    driver = gen.integers(1, 5, size=(int(gen.integers(0, 4)), 1)).astype(np.uint32)
    ts = np.full((len(probe), 1), t, dtype=np.uint32)
    dts = np.full((len(driver), 1), t, dtype=np.uint32)
    db.upload(
        t,
        {
            "orders": RecordBatch(
                PROBE_SCHEMA, np.hstack([probe, ts]).reshape(-1, 2)
            ).padded_to(4),
            "shipments": RecordBatch(
                DRIVER_SCHEMA, np.hstack([driver, dts]).reshape(-1, 2)
            ).padded_to(4),
        },
    )
    db.step(t)


def interleaved_run(n_shards: int, seed: int, backend: str, incremental: bool):
    """One randomized append/query interleaving; the schedule is a pure
    function of ``seed``, so twin runs replay it identically."""
    db = build_database(n_shards, backend, incremental)
    vd = make_view_def("full")
    queries = [count_query(vd), dashboard_query(vd)]
    answers, reports = [], []
    sched = np.random.default_rng(1000 + seed)
    gen = np.random.default_rng(seed)
    for t in range(1, 6):
        upload_step(db, t, gen)
        # 1-3 queries per step, repeats included — repeats are exactly
        # what goes warm on the incremental twin.
        for qi in sched.integers(0, 2, size=int(sched.integers(1, 4))):
            r = db.query(queries[int(qi)], t)
            answers.append(r.answers)
            reports.append(r.scan_report)
    total_gates = sum(run.gates for run in db.runtime.runs)
    return db, answers, reports, total_gates


# -- end-to-end equivalence ----------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", [0, 1])
def test_warm_equals_cold(seed, n_shards, backend):
    """Byte-identical answers, identical ε, strictly fewer gates."""
    try:
        cold_db, cold_answers, cold_reports, cold_gates = interleaved_run(
            n_shards, seed, backend, incremental=False
        )
        warm_db, warm_answers, warm_reports, warm_gates = interleaved_run(
            n_shards, seed, backend, incremental=True
        )
    finally:
        shutdown_process_backend()

    assert warm_answers == cold_answers  # byte-identical cells
    assert warm_db.realized_epsilon() == cold_db.realized_epsilon()
    assert warm_db.accountant.snapshot_state() == cold_db.accountant.snapshot_state()

    assert all(r.mode == "off" for r in cold_reports)
    modes = [r.mode for r in warm_reports]
    assert "warm" in modes  # the schedule above always repeats a query
    # Warm scans skipped work somewhere, and skipped gates never recur.
    assert warm_gates < cold_gates
    assert sum(r.saved_gates for r in warm_reports) > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_warm_scan_charges_exactly_the_suffix(backend):
    """A warm scan's gate bill is delta_rows × the cold per-row rate."""
    try:
        # EP mode materializes exact pairs eagerly, so the view holds
        # rows from the first step on.
        db = build_database(2, backend, incremental=True, mode="ep")
        vd = make_view_def("full")
        q = dashboard_query(vd)
        gen = np.random.default_rng(3)
        for t in (1, 2):
            upload_step(db, t, gen)
        cold = db.query(q, 2).scan_report
        assert cold.mode == "cold"
        assert cold.total_rows > 0 and cold.gates > 0
        per_row, rem = divmod(cold.gates, cold.total_rows)
        assert rem == 0  # padded scans charge a flat per-row rate

        # Zero delta: the repeat charges nothing at all.
        repeat = db.query(q, 2).scan_report
        assert repeat.mode == "warm"
        assert repeat.delta_rows == 0 and repeat.gates == 0
        assert repeat.saved_gates == cold.gates

        # Append, requery: exactly the suffix is billed.
        upload_step(db, 3, gen)
        upload_step(db, 4, gen)
        warm = db.query(q, 4).scan_report
        assert warm.mode == "warm"
        assert warm.total_rows > cold.total_rows
        assert warm.delta_rows == warm.total_rows - cold.total_rows
        assert warm.cached_rows == cold.total_rows
        assert warm.gates == per_row * warm.delta_rows
    finally:
        shutdown_process_backend()


def test_noisy_release_identical_at_identical_epsilon():
    """The cache sits strictly before the Laplace release: warm and cold
    twins draw the same noise and release identical values at the same ε."""
    kwargs = dict(n_shards=2, backend="thread")
    cold = build_database(incremental=False, **kwargs)
    warm = build_database(incremental=True, **kwargs)
    vd = make_view_def("full")
    q = dashboard_query(vd)
    gen_c, gen_w = np.random.default_rng(11), np.random.default_rng(11)
    for t in (1, 2):
        upload_step(cold, t, gen_c)
        upload_step(warm, t, gen_w)
    warm.query(q, 2)  # warm up the accumulator cache (no release)
    rc = cold.query(q, 2, epsilon=0.7)
    rw = warm.query(q, 2, epsilon=0.7)
    assert rw.scan_report.mode == "warm"
    assert rw.answers == rc.answers  # identical noisy released cells
    assert rw.epsilon_spent == rc.epsilon_spent
    assert warm.query_epsilon() == cold.query_epsilon()


# -- invalidation --------------------------------------------------------------
def test_reshard_invalidates_then_rewarms():
    db = build_database(1, "thread", incremental=True)
    vd = make_view_def("full")
    q = count_query(vd)
    gen = np.random.default_rng(5)
    upload_step(db, 1, gen)
    db.query(q, 1)
    assert db.query(q, 1).scan_report.mode == "warm"
    before = db.query(q, 1).answers

    db.reshard(4)
    r = db.query(q, 1)
    assert r.scan_report.mode == "cold"  # new layout, prefixes useless
    assert r.answers == before
    assert db.query(q, 1).scan_report.mode == "warm"  # rewarms cleanly
    assert db.incremental_cache_stats()["invalidations"] >= 0


def test_restore_state_invalidates_even_with_identical_content():
    """``restore_state`` replaces shard content wholesale; the cache must
    not trust it — even when the restored bytes happen to be identical."""
    db = build_database(2, "thread", incremental=True)
    vd = make_view_def("full")
    q = count_query(vd)
    gen = np.random.default_rng(6)
    upload_step(db, 1, gen)
    expected = db.query(q, 1).answers
    assert db.query(q, 1).scan_report.mode == "warm"

    view = db.views["full"].view
    view.restore_state(view.snapshot_state())
    r = db.query(q, 1)
    assert r.scan_report.mode == "cold"
    assert r.answers == expected


def test_snapshot_restore_starts_cold(tmp_path):
    """The accumulator cache is never persisted: a restored database
    answers identically but scans cold on its first repeat query."""
    from repro.server.persistence import restore_database, snapshot_database

    db = build_database(2, "thread", incremental=True)
    vd = make_view_def("full")
    q = dashboard_query(vd)
    gen = np.random.default_rng(9)
    upload_step(db, 1, gen)
    db.query(q, 1)
    warm = db.query(q, 1)
    assert warm.scan_report.mode == "warm"

    snapshot_database(db, tmp_path / "db.snap")
    restored = restore_database(tmp_path / "db.snap").database
    r = restored.query(q, 1)
    assert r.scan_report.mode == "cold"
    assert r.answers == warm.answers


# -- eviction ------------------------------------------------------------------
def test_lru_eviction_under_tiny_capacity():
    """With room for one entry, two alternating queries evict each other
    (always cold, always correct); a repeat back-to-back stays warm."""
    db = build_database(
        1, "thread", incremental=True, max_cached_queries=1
    )
    vd = make_view_def("full")
    q1, q2 = count_query(vd), dashboard_query(vd)
    gen = np.random.default_rng(4)
    upload_step(db, 1, gen)

    base1 = db.query(q1, 1).answers
    base2 = db.query(q2, 1).answers  # evicts q1's entry
    for _ in range(2):
        r1 = db.query(q1, 1)
        assert r1.scan_report.mode == "cold" and r1.answers == base1
        r2 = db.query(q2, 1)
        assert r2.scan_report.mode == "cold" and r2.answers == base2
    assert db.incremental_cache_stats()["evictions"] >= 4
    assert len(db.accumulator_cache) == 1

    db.query(q2, 1)
    assert db.query(q2, 1).scan_report.mode == "warm"


# -- cache unit tests ----------------------------------------------------------
class _FakeContainer:
    def __init__(self, uid=1, epoch=0, lengths=(3, 2)):
        self.container_uid = uid
        self.append_epoch = epoch
        self._lengths = list(lengths)

    @property
    def n_shards(self):
        return len(self._lengths)

    def shard_lengths(self):
        return tuple(self._lengths)


def _accs(watermarks):
    return [
        ShardAccumulator(
            watermark=w,
            counts=np.zeros(1, dtype=np.int64),
            sums=np.zeros((1, 0), dtype=np.uint64),
            gates=10 * w,
        )
        for w in watermarks
    ]


class TestAccumulatorCache:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError, match="max_cached_queries"):
            AccumulatorCache(0)

    def test_lookup_miss_then_hit(self):
        cache = AccumulatorCache()
        box = _FakeContainer()
        assert cache.lookup(box, "plan") is None
        cache.store(box, "plan", _accs([3, 2]))
        entry = cache.lookup(box, "plan")
        assert entry is not None
        assert [a.watermark for a in entry.shards] == [3, 2]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_epoch_bump_invalidates(self):
        cache = AccumulatorCache()
        box = _FakeContainer(epoch=0)
        cache.store(box, "plan", _accs([3, 2]))
        box.append_epoch = 1
        assert cache.lookup(box, "plan") is None
        assert cache.stats()["invalidations"] == 1

    def test_shrunken_shard_invalidates(self):
        cache = AccumulatorCache()
        box = _FakeContainer(lengths=(3, 2))
        cache.store(box, "plan", _accs([3, 2]))
        box._lengths = [3, 1]  # watermark 2 > length 1: prefix gone
        assert cache.lookup(box, "plan") is None

    def test_cached_rows_has_no_side_effects(self):
        cache = AccumulatorCache()
        box = _FakeContainer()
        cache.store(box, "plan", _accs([3, 2]))
        assert cache.cached_rows(box, "plan") == 5
        assert cache.cached_rows(box, "other") == 0
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_lru_order_and_eviction(self):
        cache = AccumulatorCache(max_cached_queries=2)
        box = _FakeContainer()
        cache.store(box, "a", _accs([1, 1]))
        cache.store(box, "b", _accs([2, 1]))
        assert cache.lookup(box, "a") is not None  # refresh a
        cache.store(box, "c", _accs([2, 2]))  # evicts b, the LRU
        assert cache.lookup(box, "b") is None
        assert cache.lookup(box, "a") is not None
        assert cache.lookup(box, "c") is not None
        assert cache.stats()["evictions"] == 1

    def test_invalidate_clears_everything(self):
        cache = AccumulatorCache()
        box = _FakeContainer()
        cache.store(box, "a", _accs([1, 1]))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup(box, "a") is None
