"""Tests for the multi-view database layer (server package).

The headline scenario mirrors the acceptance criteria of the multi-view
refactor: a database hosting three views over two shared base tables
answers mixed COUNT/SUM logical queries with the planner choosing
per-query between view scan and NM, uploads each base batch exactly
once, and reports a composed realized ε within the configured total.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SchemaError
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.dp.allocation import allocate_budget, view_operator_spec
from repro.query.ast import LogicalJoinCountQuery, LogicalJoinSumQuery
from repro.query.planner import NM_JOIN, VIEW_SCAN
from repro.server.database import IncShrinkDatabase, ViewRegistration

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
]
# Window [0, 2] qualifying pairs per step: 1, 3, 4, 4 (see test_core_engine).
# Window [0, 1] qualifying pairs per step: 1, 2, 2, 2.


def make_view(name: str, window_hi: int) -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
        omega=2,
        budget=6,
    )


def make_count(view: JoinViewDefinition) -> LogicalJoinCountQuery:
    return LogicalJoinCountQuery(
        probe_table=view.probe_table,
        driver_table=view.driver_table,
        probe_key=view.probe_key,
        driver_key=view.driver_key,
        probe_ts=view.probe_ts,
        driver_ts=view.driver_ts,
        window_lo=view.window_lo,
        window_hi=view.window_hi,
    )


def make_sum(view: JoinViewDefinition, table: str, column: str) -> LogicalJoinSumQuery:
    count = make_count(view)
    return LogicalJoinSumQuery(
        **{f: getattr(count, f) for f in (
            "probe_table", "driver_table", "probe_key", "driver_key",
            "probe_ts", "driver_ts", "window_lo", "window_hi",
        )},
        sum_table=table,
        sum_column=column,
    )


@pytest.fixture
def database():
    """Three views over the shared orders/shipments pair, fully replayed.

    * ``full`` — EP over window [0, 2] (exact, no DP budget);
    * ``audit`` — sDPTimer over the *same* signature as ``full`` (shares
      its Transform circuit), per-step updates at high ε so it converges;
    * ``recent`` — sDPTimer over the narrower window [0, 1].
    """
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=7)
    db.register_view(ViewRegistration(make_view("full", 2), mode="ep"))
    db.register_view(
        ViewRegistration(make_view("audit", 2), mode="dp-timer", timer_interval=1)
    )
    db.register_view(
        ViewRegistration(make_view("recent", 1), mode="dp-timer", timer_interval=1)
    )
    for t, (probe_rows, driver_rows) in enumerate(SCRIPT, start=1):
        probe = RecordBatch(
            PROBE_SCHEMA, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(4)
        driver = RecordBatch(
            DRIVER_SCHEMA, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(3)
        db.upload(t, {"orders": probe, "shipments": driver})
        db.step(t)
    return db


class TestSharedUploads:
    def test_each_base_batch_shared_exactly_once(self, database):
        assert database.upload_counts() == {"orders": 4, "shipments": 4}

    def test_group_scopes_reference_the_same_shares(self, database):
        """Per-group budget wrappers must wrap the *same* uploaded shares
        — three views, one upload, zero duplication."""
        physical = database.tables["orders"]
        for group in database.groups.values():
            for i, batch in enumerate(group.probe_scope.batches):
                assert batch.table is physical.batches[i].table

    def test_transform_runs_once_per_signature(self, database):
        """full+audit share one circuit; recent has its own: 2 per step."""
        assert len(database.groups) == 2
        transform_events = database.runtime.transcript.of_kind("transform")
        assert len(transform_events) == 2 * len(SCRIPT)

    def test_budgets_drain_per_group_not_globally(self, database):
        """Sharing uploads must not make one view's Transform charge
        another family's contribution budget."""
        groups = list(database.groups.values())
        for group in groups:
            # b=6, ω=2 → 3 invocations per batch; the t=1 batch is retired.
            assert group.ledger.remaining_uses("orders", 1) == 0
            assert group.ledger.remaining_uses("orders", 4) > 0


class TestPlannerRouting:
    def test_count_routes_to_matching_view(self, database):
        result = database.query_count(make_count(make_view("q", 2)), time=4)
        assert result.plan.kind == VIEW_SCAN
        assert result.plan.view_name in ("full", "audit")
        assert result.observation.logical_answer == 4

    def test_recent_window_routes_to_recent_view(self, database):
        result = database.query_count(make_count(make_view("q", 1)), time=4)
        assert result.plan.kind == VIEW_SCAN
        assert result.plan.view_name == "recent"
        assert result.observation.logical_answer == 2

    def test_unmatched_window_falls_back_to_nm(self, database):
        result = database.query_count(make_count(make_view("q", 5)), time=4)
        assert result.plan.kind == NM_JOIN
        # NM recomputes the exact join, so the answer is exact.
        assert result.observation.l1 == 0

    def test_sum_routes_to_view_and_is_exact_on_ep(self, database):
        query = make_sum(make_view("q", 2), "shipments", "sts")
        result = database.query_sum(query, time=4)
        assert result.plan.kind == VIEW_SCAN
        # Window [0,2] pairs at t=4 have driver ts 2,3,3,4 → sum 12.
        assert result.observation.logical_answer == 12

    def test_sum_falls_back_to_nm_exactly(self, database):
        query = make_sum(make_view("q", 5), "orders", "ots")
        result = database.query_sum(query, time=4)
        assert result.plan.kind == NM_JOIN
        assert result.observation.l1 == 0

    def test_nm_fallback_can_be_disabled(self):
        db = IncShrinkDatabase(total_epsilon=1.5, nm_fallback=False)
        db.register_view(ViewRegistration(make_view("only", 2), mode="ep"))
        db.finalize()
        with pytest.raises(SchemaError, match="fallback is disabled"):
            db.query_count(make_count(make_view("q", 5)), time=1)

    def test_registered_nm_view_enables_nm_for_its_class(self):
        db = IncShrinkDatabase(total_epsilon=1.5, nm_fallback=False)
        db.register_view(ViewRegistration(make_view("nm-class", 2), mode="nm"))
        probe = RecordBatch(
            PROBE_SCHEMA, np.asarray([[1, 1]], dtype=np.uint32)
        ).padded_to(4)
        driver = RecordBatch(
            DRIVER_SCHEMA, np.asarray([[1, 2]], dtype=np.uint32)
        ).padded_to(3)
        db.upload(1, {"orders": probe, "shipments": driver})
        db.step(1)
        result = db.query_count(make_count(make_view("q", 2)), time=2)
        assert result.plan.kind == NM_JOIN
        assert result.observation.l1 == 0


class TestAccuracy:
    def test_ep_and_high_epsilon_views_track_truth(self, database):
        count_full = make_count(make_view("q", 2))
        result = database.query_count(count_full, time=4)
        assert result.observation.l1 <= 1

    def test_per_view_metrics_populated(self, database):
        for vr in database.views.values():
            assert len(vr.metrics.view_size_rows) == len(SCRIPT)


class TestScheduler:
    def test_step_report_aggregates_views(self, database):
        # Replay one more step to inspect a fresh report.
        probe = RecordBatch.empty(PROBE_SCHEMA).padded_to(4)
        driver = RecordBatch.empty(DRIVER_SCHEMA).padded_to(3)
        db = database
        db.upload(5, {"orders": probe, "shipments": driver})
        report = db.step(5)
        assert set(report.views) == {"full", "audit", "recent"}
        assert report.transform_runs == 2
        assert report.transform_seconds > 0
        # The EP view syncs every step; the timer views update at t=5 too.
        assert report.views_updated >= 1

    def test_step_without_driver_upload_skips_transform(self):
        db = IncShrinkDatabase(total_epsilon=1.5)
        db.register_view(ViewRegistration(make_view("v", 2), mode="ep"))
        db.finalize()
        report = db.step(1)
        assert report.transform_runs == 0
        assert report.views["v"].transform_seconds == 0.0


class TestPrivacyComposition:
    def test_realized_epsilon_within_total(self, database):
        assert database.realized_epsilon() <= database.total_epsilon + 1e-9

    def test_allocation_matches_dp_allocation_module(self):
        """The database's ε split must be exactly what Eq. 15's grid
        search over :mod:`repro.dp.allocation` operator specs returns."""
        db = IncShrinkDatabase(total_epsilon=4.0, seed=1)
        regs = [
            ViewRegistration(
                make_view("a", 2), mode="dp-timer", size_hint=500, updates_hint=8
            ),
            ViewRegistration(
                replace(make_view("b", 1), omega=2, budget=8),
                mode="dp-ant",
                size_hint=2000,
                updates_hint=16,
            ),
        ]
        for reg in regs:
            db.register_view(reg)
        db.finalize()
        operators = [
            view_operator_spec(
                r.view_def.name, r.view_def.budget, r.updates_hint, r.size_hint
            )
            for r in regs
        ]
        expected, _ = allocate_budget(operators, 4.0, grid_steps=db.grid_steps)
        allocation = db.epsilon_allocation()
        assert allocation == {"a": pytest.approx(expected[0]), "b": pytest.approx(expected[1])}
        assert sum(allocation.values()) <= 4.0 + 1e-9

    def test_dp_views_realize_at_most_their_slice(self, database):
        allocation = database.epsilon_allocation()
        for name, eps_i in allocation.items():
            assert database.view_realized_epsilon(name) <= eps_i + 1e-9

    def test_non_dp_views_realize_zero(self, database):
        assert database.view_realized_epsilon("full") == 0.0

    def test_disjoint_view_families_compose_in_parallel(self):
        """Views over disjoint base tables take the max, not the sum."""
        db = IncShrinkDatabase(total_epsilon=2.0, seed=3)
        db.register_view(
            ViewRegistration(make_view("a", 2), mode="dp-timer", timer_interval=1)
        )
        other = JoinViewDefinition(
            name="b",
            probe_table="users",
            probe_schema=PROBE_SCHEMA,
            probe_key="key",
            probe_ts="ots",
            driver_table="events",
            driver_schema=DRIVER_SCHEMA,
            driver_key="key",
            driver_ts="sts",
            window_lo=0,
            window_hi=2,
            omega=2,
            budget=6,
        )
        db.register_view(ViewRegistration(other, mode="dp-timer", timer_interval=1))
        probe = RecordBatch(
            PROBE_SCHEMA, np.asarray([[1, 1]], dtype=np.uint32)
        ).padded_to(4)
        driver = RecordBatch(
            DRIVER_SCHEMA, np.asarray([[1, 2]], dtype=np.uint32)
        ).padded_to(3)
        db.upload(
            1,
            [("orders", probe), ("shipments", driver),
             ("users", probe), ("events", driver)],
        )
        db.step(1)
        per_view = [db.view_realized_epsilon("a"), db.view_realized_epsilon("b")]
        assert db.realized_epsilon() == pytest.approx(max(per_view))
        assert db.realized_epsilon() < sum(per_view)


class TestRegistrationValidation:
    def test_duplicate_view_name_rejected(self):
        db = IncShrinkDatabase()
        db.register_view(ViewRegistration(make_view("v", 2), mode="ep"))
        with pytest.raises(ConfigurationError, match="already registered"):
            db.register_view(ViewRegistration(make_view("v", 1), mode="ep"))

    def test_registration_after_finalize_rejected(self):
        db = IncShrinkDatabase()
        db.register_view(ViewRegistration(make_view("v", 2), mode="ep"))
        db.finalize()
        with pytest.raises(ConfigurationError, match="before the first"):
            db.register_view(ViewRegistration(make_view("w", 1), mode="ep"))

    def test_unknown_upload_table_rejected(self):
        db = IncShrinkDatabase()
        db.register_view(ViewRegistration(make_view("v", 2), mode="ep"))
        batch = RecordBatch.empty(PROBE_SCHEMA).padded_to(2)
        with pytest.raises(SchemaError, match="no registered base table"):
            db.upload(1, {"ghost": batch})

    def test_conflicting_table_schema_rejected(self):
        db = IncShrinkDatabase()
        db.register_table("orders", PROBE_SCHEMA)
        with pytest.raises(SchemaError, match="already registered"):
            db.register_table("orders", Schema(("key", "ots", "extra")))

    def test_use_without_views_rejected(self):
        db = IncShrinkDatabase()
        with pytest.raises(ConfigurationError, match="at least one view"):
            db.step(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "quantum"},
            {"join_impl": "hash"},
            {"timer_interval": 0},
            {"ant_threshold": 0.0},
            {"flush_interval": 0},
            {"flush_size": -1},
            {"size_hint": 0},
        ],
    )
    def test_bad_registration_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ViewRegistration(make_view("v", 2), **kwargs)

    def test_nonpositive_total_epsilon_rejected(self):
        with pytest.raises(ConfigurationError, match="total_epsilon"):
            IncShrinkDatabase(total_epsilon=0.0)
