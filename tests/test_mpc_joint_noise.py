"""Tests for the joint Laplace noise generator (Algorithm 2 lines 4-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.joint_noise import joint_laplace, joint_noise, laplace_from_u32
from repro.mpc.runtime import MPCRuntime


class TestLaplaceFromU32:
    def test_msb_determines_sign(self):
        assert laplace_from_u32(np.uint32(0x00000001), 1.0) > 0
        assert laplace_from_u32(np.uint32(0x80000001), 1.0) < 0

    @given(st.integers(0, 2**32 - 1), st.floats(0.01, 100))
    @settings(max_examples=100, deadline=None)
    def test_magnitude_scales_linearly(self, z, scale):
        base = laplace_from_u32(np.uint32(z), 1.0)
        scaled = laplace_from_u32(np.uint32(z), scale)
        assert scaled == pytest.approx(base * scale, rel=1e-9)

    def test_deterministic_in_seed_word(self):
        assert laplace_from_u32(np.uint32(12345), 2.0) == laplace_from_u32(
            np.uint32(12345), 2.0
        )

    def test_distribution_matches_laplace(self):
        """Empirical mean/variance of the mapping ≈ Lap(scale) moments."""
        gen = np.random.default_rng(0)
        zs = gen.integers(0, 2**32, size=200_000, dtype=np.uint32)
        draws = np.asarray([laplace_from_u32(z, 3.0) for z in zs[:50_000]])
        # Lap(b): mean 0, variance 2b².
        assert abs(draws.mean()) < 0.15
        assert draws.var() == pytest.approx(2 * 9.0, rel=0.1)

    def test_median_magnitude(self):
        """|Lap(b)| has median b·ln2 — a quantile check on the sampler."""
        gen = np.random.default_rng(1)
        zs = gen.integers(0, 2**32, size=50_000, dtype=np.uint32)
        mags = np.abs([laplace_from_u32(z, 1.0) for z in zs])
        assert np.median(mags) == pytest.approx(np.log(2), rel=0.05)


class TestJointLaplace:
    def test_requires_positive_parameters(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            with pytest.raises(ValueError):
                joint_laplace(ctx, sensitivity=0, epsilon=1)
            with pytest.raises(ValueError):
                joint_laplace(ctx, sensitivity=1, epsilon=-1)

    def test_charges_laplace_circuit(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            joint_laplace(ctx, 1.0, 1.0)
            assert ctx.gates == runtime.cost_model.laplace_gates

    def test_joint_noise_offsets_value(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            noisy = joint_noise(ctx, 1.0, 1.0, 100.0)
        assert noisy != 100.0  # almost surely

    def test_reproducible_per_runtime_seed(self):
        draws = []
        for _ in range(2):
            runtime = MPCRuntime(seed=42)
            with runtime.protocol("p") as ctx:
                draws.append(joint_laplace(ctx, 2.0, 0.5))
        assert draws[0] == draws[1]

    def test_unbiased_over_many_draws(self):
        runtime = MPCRuntime(seed=7)
        with runtime.protocol("p") as ctx:
            draws = [joint_laplace(ctx, 1.0, 1.0) for _ in range(20_000)]
        assert abs(np.mean(draws)) < 0.05
