"""Tests for the Section-8 extensions: multi-level pipelines and DP-Sync."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn
from repro.common.types import RecordBatch, Schema
from repro.core.dpsync import (
    DPAboveThresholdOwnerSync,
    DPTimerOwnerSync,
    EveryStepSync,
    SyncingOwner,
)
from repro.core.engine import EngineConfig, IncShrinkEngine
from repro.core.multilevel import MultiLevelIncShrink, SelectionStage
from repro.mpc.runtime import MPCRuntime
from repro.sharing.shared_value import SharedTable

SCHEMA = Schema(("k", "ts"))


class TestSelectionStage:
    def _delta(self, rows, flags, seed=0):
        return SharedTable.from_plain(
            SCHEMA,
            np.asarray(rows, dtype=np.uint32).reshape(-1, 2),
            np.asarray(flags, dtype=np.uint32),
            spawn(seed, "stage"),
        )

    def _stage(self, epsilon=100.0, interval=1):
        runtime = MPCRuntime(seed=0)
        return SelectionStage(
            runtime,
            SCHEMA,
            predicate=lambda rows: rows[:, 0] >= 5,
            epsilon=epsilon,
            b=2,
            interval=interval,
        )

    def test_ingest_filters_without_resizing(self):
        stage = self._stage()
        stage.ingest(1, self._delta([[9, 1], [1, 1], [0, 0]], [1, 1, 0]))
        assert len(stage.cache) == 3  # size unchanged: selection is oblivious
        runtime = stage.runtime
        with runtime.protocol("peek") as ctx:
            assert stage.cache.real_count(ctx) == 1  # only (9,1) survives

    def test_counter_tracks_selected(self):
        stage = self._stage()
        stage.ingest(1, self._delta([[9, 1], [7, 1]], [1, 1]))
        with stage.runtime.protocol("peek") as ctx:
            assert stage.counter.read(ctx) == 2

    def test_own_shrink_moves_to_stage_view(self):
        stage = self._stage(epsilon=1000.0, interval=1)
        stage.ingest(1, self._delta([[9, 1], [1, 1]], [1, 1]))
        report = stage.step(1)
        assert report is not None
        assert len(stage.view) >= 1

    def test_schema_mismatch_rejected(self):
        stage = self._stage()
        bad = SharedTable.empty(Schema(("other",)))
        with pytest.raises(ConfigurationError):
            stage.ingest(1, bad)


class TestMultiLevelIncShrink:
    def _build(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=1000.0, timer_interval=1),
        )
        pipeline = MultiLevelIncShrink(
            engine,
            predicate=lambda rows: rows[:, 0] == 1,  # p_key == 1
            epsilon_level2=500.0,
            interval=1,
        )
        return engine, pipeline

    def _upload(self, engine, vd, t, probe_rows, driver_rows):
        probe = RecordBatch(
            vd.probe_schema, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(4)
        driver = RecordBatch(
            vd.driver_schema, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(3)
        engine.upload(t, probe, driver)

    def test_level2_receives_level1_deltas(self, tiny_view_def):
        engine, pipeline = self._build(tiny_view_def)
        self._upload(engine, tiny_view_def, 1, [[1, 1], [2, 1]], [[1, 2], [2, 2]])
        pipeline.process_step(1)
        self._upload(engine, tiny_view_def, 2, [], [])
        pipeline.process_step(2)
        # Level-1 view has both joins; level-2 keeps only p_key == 1.
        with engine.runtime.protocol("peek") as ctx:
            level2_real = pipeline.stage2.view.real_count(ctx)
        assert level2_real == 1

    def test_total_epsilon_is_sequential_sum(self, tiny_view_def):
        engine, pipeline = self._build(tiny_view_def)
        assert pipeline.total_epsilon() == pytest.approx(1500.0)


class TestTwoLevelBudgetPlanner:
    def test_returns_a_full_split(self):
        from repro.core.multilevel import plan_two_level_budget

        eps_join, eps_filter = plan_two_level_budget(
            total_epsilon=2.0,
            join_input_sizes=(1000, 1000),
            filter_input_size=400,
            join_output_size=400,
            filter_output_size=100,
            budget_b=10,
            expected_updates=16,
        )
        assert eps_join + eps_filter == pytest.approx(2.0)
        assert eps_join > 0 and eps_filter > 0

    def test_smaller_operator_input_gets_less_budget(self):
        """The filter's small input is hurt more per dummy, but the join
        weighs more in E_Q (larger output share and twice the dummies):
        the optimum gives the join the larger ε slice."""
        from repro.core.multilevel import plan_two_level_budget

        eps_join, eps_filter = plan_two_level_budget(
            total_epsilon=2.0,
            join_input_sizes=(500, 500),
            filter_input_size=450,
            join_output_size=450,
            filter_output_size=50,
            budget_b=10,
            expected_updates=16,
        )
        assert eps_join > eps_filter


class TestOwnerSyncStrategies:
    def test_every_step_sync_has_zero_gap(self):
        strategy = EveryStepSync(SCHEMA)
        decision = strategy.step(1, np.asarray([[1, 1], [2, 1]], dtype=np.uint32))
        assert len(decision.released) == 2
        assert decision.logical_gap == 0

    def test_dp_timer_sync_releases_on_interval(self):
        strategy = DPTimerOwnerSync(SCHEMA, epsilon=50.0, interval=2, gen=spawn(0, "o"))
        d1 = strategy.step(1, np.asarray([[1, 1]], dtype=np.uint32))
        assert len(d1.released) == 0  # off-schedule
        assert d1.logical_gap == 1
        d2 = strategy.step(2, np.asarray([[2, 2]], dtype=np.uint32))
        assert len(d2.released) >= 1  # noisy count ≈ 2 at ε=50

    def test_dp_timer_sync_gap_shrinks_after_release(self):
        strategy = DPTimerOwnerSync(SCHEMA, epsilon=50.0, interval=1, gen=spawn(1, "o"))
        rows = np.asarray([[i, 1] for i in range(1, 6)], dtype=np.uint32)
        decision = strategy.step(1, rows)
        assert decision.logical_gap <= 1

    def test_dp_ant_sync_triggers_above_threshold(self):
        strategy = DPAboveThresholdOwnerSync(
            SCHEMA, epsilon=50.0, threshold=3.0, gen=spawn(2, "o")
        )
        released_any = False
        for t in range(1, 10):
            d = strategy.step(t, np.asarray([[t, t]], dtype=np.uint32))
            released_any = released_any or len(d.released) > 0
        assert released_any

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DPTimerOwnerSync(SCHEMA, epsilon=0, interval=1, gen=spawn(0, "o"))
        with pytest.raises(ConfigurationError):
            DPAboveThresholdOwnerSync(SCHEMA, epsilon=-1, threshold=1, gen=spawn(0, "o"))


class TestSyncingOwner:
    def test_emits_fixed_size_padded_batches(self):
        owner = SyncingOwner(SCHEMA, EveryStepSync(SCHEMA), batch_capacity=4)
        batch = owner.step(1, np.asarray([[1, 1]], dtype=np.uint32))
        assert len(batch) == 4
        assert batch.real_count == 1

    def test_overflow_carries_to_next_step(self):
        owner = SyncingOwner(SCHEMA, EveryStepSync(SCHEMA), batch_capacity=2)
        rows = np.asarray([[i, 1] for i in range(1, 6)], dtype=np.uint32)
        b1 = owner.step(1, rows)
        assert b1.real_count == 2
        assert owner.gap_history[-1] == 3
        b2 = owner.step(2, SCHEMA.empty_rows(0))
        assert b2.real_count == 2
        assert owner.max_gap == 3

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            SyncingOwner(SCHEMA, EveryStepSync(SCHEMA), batch_capacity=0)
