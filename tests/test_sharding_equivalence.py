"""Sharded execution is provably a no-op for everything but the clock.

The acceptance criterion of the sharding layer: for randomized workloads
and shard counts ∈ {1, 2, 3, 8}, the sharded deployment returns
**byte-identical** :class:`~repro.query.ast.QueryAnswer`s, charges the
**identical total gates**, and reports the **identical realized ε** as
the unsharded one.  Round-robin placement is a pure function of public
lengths and every scatter/gather is share-local, so nothing a protocol
computes — or an adversary observes — may depend on the layout.

Alongside the end-to-end property suite, this file unit-tests the
layout arithmetic, the share-local scatter/gather round-trip, the
parallel executor against the serial reference, the batched concat, and
the shard-aware error surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    SecurityError,
)
from repro.common.rng import spawn
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import (
    AggregateSpec,
    ColumnRange,
    GroupBySpec,
    LogicalQuery,
)
from repro.query.executor import execute_view_scan
from repro.query.parallel import ParallelScanExecutor
from repro.query.rewrite import lower_to_view_scan
from repro.server.database import IncShrinkDatabase, ViewRegistration
from repro.server.sharding import SINGLE_SHARD, ShardLayout
from repro.sharing.shared_value import SharedArray, SharedTable
from repro.storage.materialized_view import MaterializedView

SHARD_COUNTS = (1, 2, 3, 8)

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))


# -- layout arithmetic ---------------------------------------------------------
class TestShardLayout:
    def test_validation_names_field_and_value(self):
        with pytest.raises(ConfigurationError, match="n_shards must be >= 1, got 0"):
            ShardLayout(0)
        with pytest.raises(ConfigurationError, match="n_shards must be an int"):
            ShardLayout(2.5)
        with pytest.raises(ConfigurationError, match="got -3"):
            ShardLayout(-3)

    def test_round_robin_assignment(self):
        layout = ShardLayout(3)
        assert [layout.shard_of(g) for g in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("total", [0, 1, 7, 8, 23])
    def test_shard_lengths_balanced_and_complete(self, k, total):
        lengths = ShardLayout(k).shard_lengths(total)
        assert sum(lengths) == total
        assert max(lengths) - min(lengths) <= 1

    def test_scatter_indices_continue_the_sequence(self):
        layout = ShardLayout(2)
        first = layout.scatter_indices(0, 3)  # globals 0,1,2
        second = layout.scatter_indices(3, 3)  # globals 3,4,5
        assert [list(a) for a in first] == [[0, 2], [1]]
        assert [list(a) for a in second] == [[1], [0, 2]]

    def test_gather_order_rejects_invalid_split(self):
        with pytest.raises(ProtocolError, match="round-robin split"):
            ShardLayout(2).gather_order([0, 5])


def random_table(gen, n_rows: int, width: int = 3) -> SharedTable:
    schema = Schema(tuple(f"c{i}" for i in range(width)))
    rows = gen.integers(0, 50, size=(n_rows, width), dtype=np.uint32)
    flags = gen.integers(0, 2, size=n_rows, dtype=np.uint32)
    return SharedTable.from_plain(schema, rows, flags, spawn(9, "share"))


class TestScatterGather:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_round_trip_is_identity_on_both_halves(self, k, seed):
        gen = np.random.default_rng(seed)
        table = random_table(gen, int(gen.integers(0, 40)))
        layout = ShardLayout(k)
        parts = layout.scatter(table, start=0)
        back = layout.gather(parts)
        np.testing.assert_array_equal(back.rows.share0, table.rows.share0)
        np.testing.assert_array_equal(back.rows.share1, table.rows.share1)
        np.testing.assert_array_equal(back.flags.share0, table.flags.share0)
        np.testing.assert_array_equal(back.flags.share1, table.flags.share1)

    def test_incremental_scatter_equals_one_shot(self):
        gen = np.random.default_rng(7)
        layout = ShardLayout(3)
        view = MaterializedView(Schema(("c0", "c1", "c2")), layout=layout)
        deltas = [random_table(gen, n) for n in (5, 0, 7, 1)]
        for d in deltas:
            view.append(d)
        whole = SharedTable.concat_all(deltas)
        np.testing.assert_array_equal(
            view.table.rows.share0, whole.rows.share0
        )
        assert view.shard_lengths() == layout.shard_lengths(len(whole))

    def test_gather_wrong_shard_count_rejected(self):
        layout = ShardLayout(2)
        t = random_table(np.random.default_rng(0), 4)
        with pytest.raises(ProtocolError, match="shard count 1"):
            layout.gather([t])


class TestBatchedConcat:
    def test_concat_all_matches_pairwise_chain(self):
        gen = np.random.default_rng(11)
        arrays = [
            SharedArray.from_plain(
                gen.integers(0, 99, size=(n,), dtype=np.uint32), spawn(1, n)
            )
            for n in (3, 0, 5, 1)
        ]
        batched = SharedArray.concat_all(arrays)
        chained = arrays[0]
        for a in arrays[1:]:
            chained = chained.concat(a)
        np.testing.assert_array_equal(batched.share0, chained.share0)
        np.testing.assert_array_equal(batched.share1, chained.share1)

    def test_concat_all_empty_rejected(self):
        with pytest.raises(ProtocolError, match="zero shared arrays"):
            SharedArray.concat_all([])

    def test_table_concat_all_schema_mismatch_rejected(self):
        a = random_table(np.random.default_rng(0), 2, width=2)
        b = random_table(np.random.default_rng(0), 2, width=3)
        with pytest.raises(Exception, match="different schemas"):
            SharedTable.concat_all([a, b])


# -- parallel executor vs the serial reference ---------------------------------
def make_view_def(name: str = "v") -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def dashboard_query(vd: JoinViewDefinition) -> LogicalQuery:
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (0, 1, 2, 3)),
        predicate=ColumnRange("shipments", "sts", 0, 40),
    )


def populated_view(layout: ShardLayout, seed: int = 5) -> MaterializedView:
    vd = make_view_def()
    gen = np.random.default_rng(seed)
    view = MaterializedView(vd.view_schema, layout=layout)
    for n in (9, 4, 13):
        rows = gen.integers(0, 8, size=(n, vd.view_schema.width), dtype=np.uint32)
        flags = gen.integers(0, 2, size=n, dtype=np.uint32)
        view.append(
            SharedTable.from_plain(vd.view_schema, rows, flags, spawn(2, "v", n))
        )
    return view


class TestParallelScanExecutor:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_matches_serial_reference_exactly(self, k):
        vd = make_view_def()
        plan = lower_to_view_scan(dashboard_query(vd), vd)

        serial_runtime = MPCRuntime(seed=0)
        serial_view = populated_view(SINGLE_SHARD)
        expected, expected_qet = execute_view_scan(
            serial_runtime, 1, serial_view, plan
        )

        runtime = MPCRuntime(seed=0)
        view = populated_view(ShardLayout(k))
        answer, qet = ParallelScanExecutor().execute(runtime, 1, view, plan)

        assert answer == expected  # byte-identical cells
        assert runtime.runs[-1].gates == serial_runtime.runs[-1].gates
        workers = runtime.cost_model.effective_workers(k)
        assert qet == pytest.approx(expected_qet / workers)

    def test_empty_view_all_shard_counts(self):
        vd = make_view_def()
        plan = lower_to_view_scan(dashboard_query(vd), vd)
        answers = set()
        for k in SHARD_COUNTS:
            runtime = MPCRuntime(seed=0)
            view = MaterializedView(vd.view_schema, layout=ShardLayout(k))
            answer, _ = ParallelScanExecutor().execute(runtime, 0, view, plan)
            answers.add(answer)
        assert len(answers) == 1

    def test_shard_context_errors_name_operation_and_shard(self):
        runtime = MPCRuntime(seed=0)
        view = populated_view(ShardLayout(3))
        with runtime.parallel_protocol("query", 0, 3) as group:
            leaked = group.contexts[1]
        with pytest.raises(
            SecurityError,
            match=r"reveal_table on protocol scope 'query' \(shard 2/3\)",
        ):
            leaked.reveal_table(view.shards[1])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers must be >= 1, got 0"):
            ParallelScanExecutor(max_workers=0)

    def test_shard_context_rejects_randomness_operations(self):
        """Shard contexts are reveal/charge only: drawing randomness from
        a worker thread would break the deterministic RNG streams."""
        runtime = MPCRuntime(seed=0)
        with runtime.parallel_protocol("query", 0, 2) as group:
            ctx = group.contexts[0]
            with pytest.raises(
                ProtocolError,
                match=r"share_array on protocol scope 'query' \(shard 1/2\)",
            ):
                ctx.share_array(np.zeros(2, dtype=np.uint32))
            with pytest.raises(ProtocolError, match="joint_uniform_u32"):
                ctx.joint_uniform_u32(1)

    def test_failing_shard_settles_siblings_and_releases_the_slot(self):
        """A shard-scan failure propagates only after every sibling has
        settled, and the runtime's protocol slot is released."""
        vd = make_view_def()
        plan = lower_to_view_scan(dashboard_query(vd), vd)
        runtime = MPCRuntime(seed=0)
        view = populated_view(ShardLayout(3))
        # Corrupt one shard with too-narrow rows so its scan raises
        # inside the worker pool (white-box: bypasses append's checks).
        bad = SharedTable.from_plain(
            Schema(("x",)),
            np.zeros((2, 1), dtype=np.uint32),
            np.ones(2, dtype=np.uint32),
            spawn(3, "bad"),
        )
        view._shard_chunks[1] = [bad]
        with pytest.raises(IndexError):
            ParallelScanExecutor(max_workers=4).execute(runtime, 0, view, plan)
        assert runtime.runs[-1].name == "query"  # the failed run settled
        with runtime.protocol("after", 1):  # and the slot is free again
            pass


# -- end-to-end equivalence over randomized workloads --------------------------
def random_script(seed: int, n_steps: int = 6):
    gen = np.random.default_rng(seed)
    script = []
    for _ in range(n_steps):
        probe = gen.integers(
            1, 5, size=(int(gen.integers(0, 4)), 2)
        ).astype(np.uint32)
        driver = gen.integers(
            1, 5, size=(int(gen.integers(0, 4)), 2)
        ).astype(np.uint32)
        script.append((probe, driver))
    return script


def build_database(
    n_shards: int, scan_backend: str = "auto"
) -> IncShrinkDatabase:
    db = IncShrinkDatabase(
        total_epsilon=2000.0, seed=7, n_shards=n_shards, scan_backend=scan_backend
    )
    db.register_view(
        ViewRegistration(
            make_view_def("full"),
            mode="dp-timer",
            timer_interval=1,
            flush_interval=3,
            flush_size=4,
        )
    )
    db.register_view(
        ViewRegistration(make_view_def("audit"), mode="ep")
    )
    return db


def run_deployment(n_shards: int, seed: int, scan_backend: str = "auto"):
    db = build_database(n_shards, scan_backend)
    vd = make_view_def("full")
    queries = [
        LogicalQuery.for_view(vd, AggregateSpec.count()),
        dashboard_query(vd),
    ]
    answers = []
    for t, (probe, driver) in enumerate(random_script(seed), start=1):
        ts_col = np.full((len(probe), 1), t, dtype=np.uint32)
        probe = np.hstack([probe[:, :1], ts_col]) if len(probe) else probe
        driver_ts = np.full((len(driver), 1), t, dtype=np.uint32)
        driver = np.hstack([driver[:, :1], driver_ts]) if len(driver) else driver
        db.upload(
            t,
            {
                "orders": RecordBatch(PROBE_SCHEMA, probe.reshape(-1, 2)).padded_to(4),
                "shipments": RecordBatch(
                    DRIVER_SCHEMA, driver.reshape(-1, 2)
                ).padded_to(4),
            },
        )
        db.step(t)
        for q in queries:
            answers.append(db.query(q, t).answers)
    total_gates = sum(r.gates for r in db.runtime.runs)
    return db, answers, total_gates


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_shards", [2, 3, 8])
def test_sharded_equals_unsharded(seed, n_shards):
    """Byte-identical answers, identical gate totals, identical ε."""
    base_db, base_answers, base_gates = run_deployment(1, seed)
    db, answers, gates = run_deployment(n_shards, seed)
    assert answers == base_answers
    assert gates == base_gates
    assert db.realized_epsilon() == base_db.realized_epsilon()
    assert db.accountant.snapshot_state() == base_db.accountant.snapshot_state()
    # The sharded run actually sharded something.
    full_lengths = db.views["full"].view.shard_lengths()
    assert len(full_lengths) == n_shards
    assert sum(full_lengths) == len(base_db.views["full"].view)
    assert max(full_lengths) - min(full_lengths) <= 1


@pytest.mark.parametrize("n_shards", [2, 8])
def test_reshard_preserves_answers_and_epsilon(n_shards):
    db, answers, _ = run_deployment(1, seed=1)
    vd = make_view_def("full")
    before = db.query(dashboard_query(vd), 6)
    eps_before = db.realized_epsilon()
    db.reshard(n_shards)
    after = db.query(dashboard_query(vd), 6)
    assert after.answers == before.answers
    assert db.realized_epsilon() == eps_before
    assert db.views["full"].view.n_shards == n_shards


# -- execution backends: process pool ≡ thread pool ---------------------------
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_process_backend_equals_thread_backend(seed, n_shards):
    """The executor backend is invisible to everything but the host
    clock: byte-identical answers, identical gate totals, identical
    realized ε.  (With one shard the process executor deliberately
    resolves to the serial path — the matrix entry pins that fallback.)"""
    thread_db, thread_answers, thread_gates = run_deployment(
        n_shards, seed, scan_backend="thread"
    )
    process_db, process_answers, process_gates = run_deployment(
        n_shards, seed, scan_backend="process"
    )
    assert process_answers == thread_answers
    assert process_gates == thread_gates
    assert process_db.realized_epsilon() == thread_db.realized_epsilon()
    assert (
        process_db.accountant.snapshot_state()
        == thread_db.accountant.snapshot_state()
    )


def test_worker_crash_surfaces_and_pool_recovers():
    """SIGKILL-ing a shard worker mid-deployment fails the in-flight
    query with a clean ProtocolError (no hang, no wrong answer), and the
    discarded pool respawns transparently on the next query."""
    import os
    import signal
    import time as _time

    from repro.query.shard_workers import PROCESS_BACKEND

    db, answers, _ = run_deployment(4, seed=0, scan_backend="process")
    # A warm accumulator cache would answer the repeat queries below
    # without touching the worker pool at all (zero-delta scans submit
    # no tasks); disable it so every query exercises the pool.
    db.set_incremental(False)
    q = dashboard_query(make_view_def("full"))
    expected = db.query(q, 7).answers

    pids = PROCESS_BACKEND.worker_pids()
    assert pids, "the deployment above must have spawned the worker pool"
    os.kill(pids[0], signal.SIGKILL)
    _time.sleep(0.2)  # let the executor's management thread notice

    with pytest.raises(ProtocolError, match="worker process died"):
        db.query(q, 7)

    # The pool was discarded; the next query lazily respawns it and
    # answers identically.
    assert db.query(q, 7).answers == expected
    assert db.query(q, 7).answers == expected  # and stays healthy


class TestBackendSelection:
    def _view_with_rows(self, n_shards: int, n_rows: int) -> MaterializedView:
        vd = make_view_def()
        gen = np.random.default_rng(0)
        view = MaterializedView(vd.view_schema, layout=ShardLayout(n_shards))
        rows = gen.integers(0, 8, size=(n_rows, vd.view_schema.width)).astype(
            np.uint32
        )
        flags = np.ones(n_rows, dtype=np.uint32)
        view.append(
            SharedTable.from_plain(vd.view_schema, rows, flags, spawn(2, "sel"))
        )
        return view

    def test_single_shard_always_serial(self):
        view = self._view_with_rows(1, 8)
        for backend in ("auto", "thread", "process"):
            assert ParallelScanExecutor(backend=backend).backend_for(view) == "thread"

    def test_forced_backend_honored_on_multi_shard_views(self):
        view = self._view_with_rows(4, 8)
        assert ParallelScanExecutor(backend="thread").backend_for(view) == "thread"
        assert ParallelScanExecutor(backend="process").backend_for(view) == "process"

    def test_auto_uses_shard_size_threshold_and_cpu_count(self, monkeypatch):
        import repro.query.parallel as parallel_mod

        executor = ParallelScanExecutor(backend="auto")
        small = self._view_with_rows(4, 64)
        monkeypatch.setattr(parallel_mod, "usable_cpus", lambda: 8)
        # Largest shard below the threshold: IPC costs more than the GIL.
        assert executor.backend_for(small) == "thread"
        # Clearing the threshold flips auto to the process backend...
        monkeypatch.setattr(parallel_mod, "PROCESS_MIN_SHARD_ROWS", 16)
        assert executor.backend_for(small) == "process"
        # ...unless the host has only one usable core.
        monkeypatch.setattr(parallel_mod, "usable_cpus", lambda: 1)
        assert executor.backend_for(small) == "thread"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend must be one of"):
            ParallelScanExecutor(backend="fork")

    def test_database_exposes_and_switches_backend(self):
        db = build_database(2, scan_backend="thread")
        assert db.scan_backend == "thread"
        db.set_scan_backend("process")
        assert db.scan_backend == "process"
        with pytest.raises(ConfigurationError, match="backend must be one of"):
            db.set_scan_backend("fiber")


def test_plan_prices_shards_into_wall_clock():
    """Same gates, 1/workers the estimated seconds on a sharded view."""
    flat_db, _, _ = run_deployment(1, seed=2)
    sharded_db, _, _ = run_deployment(8, seed=2)
    q = dashboard_query(make_view_def("full"))
    flat_plan = flat_db.planner.plan(q)
    sharded_plan = sharded_db.planner.plan(q)
    assert flat_plan.estimated_gates == sharded_plan.estimated_gates
    workers = sharded_db.runtime.cost_model.effective_workers(8)
    assert sharded_plan.estimated_seconds == pytest.approx(
        flat_plan.estimated_seconds / workers
    )
    assert sharded_plan.n_shards == 8
