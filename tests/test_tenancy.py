"""Multi-tenant serving tests (``repro.tenancy`` + its wiring).

The headline claims, per ISSUE 10:

* **isolation without distortion** — tenant attribution rides the
  accountant's segment keys, so a multi-tenant deployment releases
  byte-identical noisy answers at identical realized ε to the
  single-tenant path, and the per-tenant ledgers sum exactly to the
  global query spend;
* **refusal before noise** — a query that would overdraw its tenant's
  budget is rejected with a structured ``budget-exhausted`` error
  before any noise is drawn, so the refusal never perturbs another
  tenant's answer stream;
* **authenticated admission** — wrong or missing credentials get a
  structured ``auth-failed`` error and a clean close; roles gate which
  frames a session may issue; per-tenant quotas reject with
  ``overloaded`` + retry_after;
* **durability** — ledgers round-trip through snapshots (format v3)
  with no double-spend on restore;
* **observability** — the metrics listener serves per-tenant ε and
  quota gauges in Prometheus text exposition format.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.common.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    SecurityError,
)
from repro.dp.accountant import segment_tenant, tenant_scoped_segment
from repro.dp.allocation import allocate_tenant_budgets
from repro.net import protocol as wire
from repro.net.backoff import (
    RETRY_AFTER_CAP,
    RETRY_AFTER_FLOOR,
    clamp_retry_after,
)
from repro.net.client import IncShrinkClient
from repro.net.metrics import MetricsServer, render_metrics
from repro.net.server import NetworkServer
from repro.server.persistence import restore_database, snapshot_database
from repro.server.runtime import DatabaseServer
from repro.tenancy import (
    ROLE_FRAMES,
    Tenant,
    TenantGates,
    TenantLedger,
    TenantRegistry,
    TokenBucket,
    check_tenant_budget,
)

from test_network import batches_at, build_database, epsilon_query, query_mix


def make_registry(**overrides) -> TenantRegistry:
    """Three tenants covering every role; analysts get small budgets."""
    defaults = dict(
        owner=Tenant("owner-1", "owner-secret", role="owner"),
        analyst=Tenant(
            "analyst-1", "analyst-secret", role="analyst", epsilon_budget=1.0
        ),
        admin=Tenant("admin-1", "admin-secret", role="admin"),
    )
    defaults.update(overrides)
    return TenantRegistry(list(defaults.values()))


# -- registry validation -------------------------------------------------------
class TestRegistryValidation:
    def test_duplicate_tenant_id_names_the_id(self):
        with pytest.raises(ConfigurationError, match="duplicate tenant id 'a'"):
            TenantRegistry([Tenant("a", "t1"), Tenant("a", "t2")])

    def test_empty_tenant_id_names_the_value(self):
        with pytest.raises(ConfigurationError, match="tenant id.*got ''"):
            Tenant("", "tok")

    def test_non_string_tenant_id_rejected(self):
        with pytest.raises(ConfigurationError, match="tenant id.*got 7"):
            Tenant(7, "tok")

    def test_empty_token_names_the_tenant(self):
        with pytest.raises(ConfigurationError, match="'a': token"):
            Tenant("a", "")

    def test_oversized_token_rejected(self):
        with pytest.raises(ConfigurationError, match="token must be <= 1024"):
            Tenant("a", "x" * 1025)

    def test_unknown_role_lists_the_choices(self):
        with pytest.raises(ConfigurationError, match="role must be one of"):
            Tenant("a", "tok", role="superuser")

    def test_non_positive_budget_names_field_and_value(self):
        with pytest.raises(
            ConfigurationError, match="epsilon_budget must be positive, got 0"
        ):
            Tenant("a", "tok", epsilon_budget=0.0)
        with pytest.raises(
            ConfigurationError, match="epsilon_budget must be positive, got -1.5"
        ):
            Tenant("a", "tok", epsilon_budget=-1.5)

    def test_nan_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="epsilon_budget"):
            Tenant("a", "tok", epsilon_budget=float("nan"))

    def test_bad_quota_fields_name_field_and_value(self):
        with pytest.raises(
            ConfigurationError, match="max_connections must be an integer >= 1"
        ):
            Tenant("a", "tok", max_connections=0)
        with pytest.raises(
            ConfigurationError, match="query_rate must be positive, got -2"
        ):
            Tenant("a", "tok", query_rate=-2.0)

    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1 tenant"):
            TenantRegistry([])

    def test_from_specs_parses_optional_budget(self):
        reg = TenantRegistry.from_specs(
            ["a:tok-a:owner", "b:tok-b:analyst:2.5"]
        )
        assert reg.get("a").role == "owner"
        assert reg.get("a").epsilon_budget is None
        assert reg.budgets() == {"b": 2.5}

    def test_from_specs_rejects_malformed(self):
        with pytest.raises(ConfigurationError, match="malformed tenant spec"):
            TenantRegistry.from_specs(["a:tok"])
        with pytest.raises(ConfigurationError, match="must be a number"):
            TenantRegistry.from_specs(["a:tok:analyst:lots"])

    def test_from_file_round_trip_and_unknown_field(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"id": "a", "token": "tok", "role": "admin"},
                        {
                            "id": "b",
                            "token": "tok2",
                            "role": "analyst",
                            "epsilon_budget": 1.25,
                            "query_rate": 10,
                        },
                    ]
                }
            )
        )
        reg = TenantRegistry.from_file(path)
        assert sorted(reg.ids()) == ["a", "b"]
        assert reg.budgets() == {"b": 1.25}

        path.write_text(
            json.dumps({"tenants": [{"id": "a", "token": "t", "admin": True}]})
        )
        with pytest.raises(ConfigurationError, match=r"unknown field\(s\) \['admin'\]"):
            TenantRegistry.from_file(path)

    def test_authentication_is_exact(self):
        reg = make_registry()
        assert reg.authenticate("owner-1", "owner-secret").role == "owner"
        with pytest.raises(SecurityError, match="authentication failed"):
            reg.authenticate("owner-1", "wrong")
        with pytest.raises(SecurityError, match="authentication failed"):
            reg.authenticate("nobody", "owner-secret")
        for bad in (None, "", b"owner-secret", "x" * 2000):
            with pytest.raises(SecurityError, match="hello credentials"):
                reg.authenticate("owner-1", bad)

    def test_rejection_never_echoes_the_token(self):
        reg = make_registry()
        with pytest.raises(SecurityError) as excinfo:
            reg.authenticate("owner-1", "sup3r-s3cret-guess")
        assert "sup3r-s3cret-guess" not in str(excinfo.value)

    def test_role_frame_matrix(self):
        reg = make_registry()
        assert reg.allowed("owner", "upload")
        assert not reg.allowed("owner", "query")
        assert reg.allowed("analyst", "query")
        assert not reg.allowed("analyst", "snapshot")
        for frame in ("upload", "query", "snapshot", "reshard"):
            assert reg.allowed("admin", frame)
        assert not reg.allowed("ghost-role", "query")
        assert set(ROLE_FRAMES) == {"owner", "analyst", "admin"}


# -- retry_after clamping (satellite a) ----------------------------------------
class TestClampRetryAfter:
    def test_reasonable_hints_pass_through(self):
        assert clamp_retry_after(0.5) == 0.5
        assert clamp_retry_after(3) == 3.0

    @pytest.mark.parametrize(
        "hint", [None, 0, 0.0, -1, -0.001, float("nan"), "soon", [], {}]
    )
    def test_hostile_hints_clamp_to_floor(self, hint):
        out = clamp_retry_after(hint)
        assert out == RETRY_AFTER_FLOOR
        assert out > 0

    def test_huge_hints_clamp_to_cap(self):
        assert clamp_retry_after(float("inf")) == RETRY_AFTER_CAP
        assert clamp_retry_after(86400) == RETRY_AFTER_CAP

    def test_client_never_hot_loops_on_zero_retry_after(self):
        """A server hint of 0 must still yield a positive sleep."""
        for hostile in (0, None, -5):
            assert clamp_retry_after(hostile) >= 0.01


# -- quota primitives ----------------------------------------------------------
class TestQuotaPrimitives:
    def test_token_bucket_burst_then_throttle(self):
        ticks = iter([0.0, 0.0, 0.0, 0.0, 1.0]).__next__
        bucket = TokenBucket(rate=1.0, burst=2, clock=ticks)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait == pytest.approx(1.0)
        assert bucket.try_take() is None  # one token refilled at t=1

    def test_token_bucket_rejects_bad_config(self):
        with pytest.raises(ConfigurationError, match="rate must be positive"):
            TokenBucket(rate=0.0)

    def test_gate_connection_cap_and_permits(self):
        gates = TenantGates(
            TenantRegistry(
                [Tenant("a", "t", max_connections=1, max_inflight=1)]
            )
        )
        gate = gates.gate("a")
        assert gate.try_connect()
        assert not gate.try_connect()
        gate.release_connection()
        assert gate.try_connect()
        assert gate.try_permit()
        assert not gate.try_permit()
        gate.release_permit()
        assert gate.try_permit()
        gate.note_rejection("overloaded")
        stats = gates.stats()
        assert stats["a"]["connections"] == 1
        assert stats["a"]["inflight"] == 1
        assert stats["a"]["rejections"] == {"overloaded": 1}

    def test_unlimited_tenant_never_throttles(self):
        gate = TenantGates(TenantRegistry([Tenant("a", "t")])).gate("a")
        for _ in range(100):
            assert gate.try_connect()
            assert gate.try_permit()
            assert gate.try_rate("query") is None
            assert gate.try_rate("upload", 50) is None


# -- ledger arithmetic ---------------------------------------------------------
class TestLedgerExactness:
    def test_tenant_spends_sum_exactly_to_global_query_epsilon(self):
        """N tenants' ledger entries partition the global query spend."""
        db = build_database()
        for t in range(1, 7):
            db.upload(t, batches_at(t))
        db.set_tenant_budgets({"t0": 5.0, "t1": 5.0, "t2": 5.0})
        spends = {"t0": [0.25, 0.5], "t1": [0.125], "t2": [1.0, 0.0625, 0.25]}
        for tid, epsilons in spends.items():
            for eps in epsilons:
                db.query(query_mix()[0], 6, epsilon=eps, tenant=tid)
        ledgers = db.tenant_epsilons()
        assert ledgers == {
            tid: sum(epsilons) for tid, epsilons in spends.items()
        }
        # Exact equality, not approx: attribution must not perturb the
        # ε arithmetic that Theorem 3 composes.
        assert sum(ledgers.values()) == db.query_epsilon()

    def test_untenanted_queries_stay_off_every_ledger(self):
        db = build_database()
        for t in range(1, 4):
            db.upload(t, batches_at(t))
        db.set_tenant_budgets({"a": 1.0})
        db.query(query_mix()[0], 3, epsilon=0.5)
        assert db.tenant_epsilons() == {}
        assert db.query_epsilon() == 0.5

    def test_overdraw_rejected_before_any_noise_is_drawn(self):
        db = build_database()
        for t in range(1, 4):
            db.upload(t, batches_at(t))
        db.set_tenant_budgets({"a": 1.0})
        db.query(query_mix()[0], 3, epsilon=0.75, tenant="a")
        with pytest.raises(BudgetExhaustedError) as excinfo:
            db.query(query_mix()[0], 3, epsilon=0.75, tenant="a")
        err = excinfo.value
        assert err.tenant == "a"
        assert err.requested == 0.75
        assert err.spent == 0.75
        assert err.budget == 1.0
        assert "0.25 of 1 remains" in str(err)
        # The refusal spent nothing, globally or on the ledger.
        assert db.tenant_epsilons() == {"a": 0.75}
        assert db.query_epsilon() == 0.75
        # Exact exhaustion is allowed (<=, within BUDGET_ATOL).
        db.query(query_mix()[0], 3, epsilon=0.25, tenant="a")
        assert db.tenant_epsilons() == {"a": 1.0}

    def test_check_tenant_budget_ignores_uncapped_tenants(self):
        db = build_database()
        check_tenant_budget(db.accountant, {}, "anyone", 1e9)  # no cap, no-op

    def test_segment_scoping_round_trip(self):
        scoped = tenant_scoped_segment(("query", 7), "alice")
        assert segment_tenant(scoped) == "alice"
        assert segment_tenant(("query", 7)) is None
        assert scoped[:1] == ("query",)  # query_epsilon() prefix intact

    def test_ledger_summary_shape(self):
        db = build_database()
        for t in range(1, 4):
            db.upload(t, batches_at(t))
        db.set_tenant_budgets({"a": 2.0})
        db.query(query_mix()[0], 3, epsilon=0.5, tenant="a")
        summary = TenantLedger(db.accountant, db.tenant_budgets).summary()
        assert summary["a"] == {
            "epsilon_spent": 0.5,
            "epsilon_budget": 2.0,
            "epsilon_remaining": 1.5,
        }

    def test_allocate_tenant_budgets(self):
        assert allocate_tenant_budgets(3.0, ["a", "b", "c"]) == {
            "a": 1.0,
            "b": 1.0,
            "c": 1.0,
        }
        out = allocate_tenant_budgets(3.0, {"a": 2.0, "b": 1.0})
        assert out["a"] == pytest.approx(2.0)
        assert out["b"] == pytest.approx(1.0)
        assert sum(out.values()) == pytest.approx(3.0)

    def test_set_tenant_budgets_validates(self):
        db = build_database()
        with pytest.raises(ConfigurationError, match="must be positive"):
            db.set_tenant_budgets({"a": 0.0})
        with pytest.raises(ConfigurationError, match="non-empty string"):
            db.set_tenant_budgets({"": 1.0})


# -- isolation without distortion ----------------------------------------------
class TestTenantTransparency:
    def test_multi_tenant_answers_byte_identical_to_single_tenant(self):
        """Attribution must not move a single noise draw or ε split."""
        control = build_database()
        tenanted = build_database()
        for t in range(1, 7):
            control.upload(t, batches_at(t))
            tenanted.upload(t, batches_at(t))
        tenanted.set_tenant_budgets({"ana": 10.0, "bob": 10.0})

        tenants = ["ana", "bob", "ana"]
        for i, tid in enumerate(tenants):
            eps = 0.5 + i * 0.25
            ref = control.query(epsilon_query(), 6, epsilon=eps)
            out = tenanted.query(epsilon_query(), 6, epsilon=eps, tenant=tid)
            assert out.answers == ref.answers
            assert out.logical_answers == ref.logical_answers
        assert control.realized_epsilon() == tenanted.realized_epsilon()
        assert control.query_epsilon() == tenanted.query_epsilon()
        assert tenanted.tenant_epsilons() == {"ana": 0.5 + 1.0, "bob": 0.75}

    def test_rejected_query_does_not_perturb_the_noise_stream(self):
        control = build_database()
        tenanted = build_database()
        for t in range(1, 7):
            control.upload(t, batches_at(t))
            tenanted.upload(t, batches_at(t))
        tenanted.set_tenant_budgets({"ana": 10.0, "poor": 0.25})

        ref1 = control.query(epsilon_query(), 6, epsilon=0.5)
        out1 = tenanted.query(epsilon_query(), 6, epsilon=0.5, tenant="ana")
        assert out1.answers == ref1.answers
        with pytest.raises(BudgetExhaustedError):
            tenanted.query(epsilon_query(), 6, epsilon=0.5, tenant="poor")
        # The refused query drew no noise: the next draw still matches.
        ref2 = control.query(epsilon_query(), 6, epsilon=0.5)
        out2 = tenanted.query(epsilon_query(), 6, epsilon=0.5, tenant="ana")
        assert out2.answers == ref2.answers


# -- snapshot durability -------------------------------------------------------
class TestLedgerPersistence:
    def test_ledgers_round_trip_without_double_spend(self, tmp_path):
        db = build_database()
        for t in range(1, 7):
            db.upload(t, batches_at(t))
        db.set_tenant_budgets({"ana": 1.0, "bob": 2.0})
        db.query(query_mix()[0], 6, epsilon=0.75, tenant="ana")
        db.query(query_mix()[0], 6, epsilon=0.5, tenant="bob")
        path = tmp_path / "tenants.snapshot"
        snapshot_database(db, path)

        restored = restore_database(path).database
        assert restored.tenant_budgets == {"ana": 1.0, "bob": 2.0}
        assert restored.tenant_epsilons() == db.tenant_epsilons()
        assert restored.query_epsilon() == db.query_epsilon()
        # No double-spend: the restored ledger still has exactly the
        # 0.25 ana headroom the live one had.
        with pytest.raises(BudgetExhaustedError):
            restored.query(query_mix()[0], 6, epsilon=0.5, tenant="ana")
        restored.query(query_mix()[0], 6, epsilon=0.25, tenant="ana")
        assert restored.tenant_epsilons()["ana"] == 1.0

    def test_pre_tenancy_snapshots_still_restore(self, tmp_path):
        """A v3 reader accepts bodies without tenant_budgets."""
        db = build_database()
        for t in range(1, 4):
            db.upload(t, batches_at(t))
        path = tmp_path / "plain.snapshot"
        snapshot_database(db, path)
        doc = json.loads(path.read_text())
        assert doc["body"].get("tenant_budgets") == {}
        del doc["body"]["tenant_budgets"]
        import hashlib

        doc["sha256"] = hashlib.sha256(
            json.dumps(
                doc["body"], sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()
        path.write_text(json.dumps(doc))
        restored = restore_database(path).database
        assert restored.tenant_budgets == {}


# -- authenticated admission over the wire -------------------------------------
def _tenanted_net(registry=None, **net_kwargs):
    server = DatabaseServer(build_database())
    net = NetworkServer(
        server, registry=registry or make_registry(), **net_kwargs
    )
    return server, net


class TestWireAuth:
    def test_welcome_names_tenant_and_role(self):
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="analyst-1", token="analyst-secret"
            ) as client:
                assert client.server_info["tenant"] == "analyst-1"
                assert client.server_info["role"] == "analyst"
        server.stop()
        assert net._unhandled_errors == []

    @pytest.mark.parametrize(
        "creds", [("analyst-1", "wrong"), ("ghost", "analyst-secret")]
    )
    def test_wrong_token_gets_structured_error_and_clean_close(self, creds):
        tenant, token = creds
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            client = IncShrinkClient(
                host, port, tenant=tenant, token=token, connect_retries=1
            )
            with pytest.raises(wire.RemoteError) as excinfo:
                client.connect()
            assert excinfo.value.code == wire.ERR_AUTH_FAILED
            assert token not in str(excinfo.value)
        server.stop()
        assert net._unhandled_errors == []

    def test_missing_credentials_rejected_on_registry_server(self):
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            client = IncShrinkClient(host, port, connect_retries=1)
            with pytest.raises(wire.RemoteError) as excinfo:
                client.connect()
            assert excinfo.value.code == wire.ERR_AUTH_FAILED
        server.stop()

    def test_no_registry_preserves_unauthenticated_access(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                assert "tenant" not in client.server_info
                client.upload(1, batches_at(1), wait=True)
                result = client.query(query_mix()[0], time=1)
                assert result.answers is not None
        server.stop()

    def test_credentialed_client_accepted_by_open_server(self):
        """Offering tenant/token to a no-registry server is harmless."""
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="anyone", token="anything"
            ) as client:
                assert client.stats()["uploads"] == 0
        server.stop()


class TestWireRoles:
    def test_role_matrix_over_the_wire(self):
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                owner.upload(1, batches_at(1), wait=True)
                with pytest.raises(wire.RemoteError) as excinfo:
                    owner.query(query_mix()[0], time=1)
                assert excinfo.value.code == wire.ERR_FORBIDDEN
                assert "'owner'" in str(excinfo.value)
                # The refusal left the connection serviceable.
                assert owner.stats()["uploads"] > 0

            with IncShrinkClient(
                host, port, tenant="analyst-1", token="analyst-secret"
            ) as analyst:
                result = analyst.query(query_mix()[0], time=1)
                assert result.answers is not None
                with pytest.raises(wire.RemoteError) as excinfo:
                    analyst.upload(2, batches_at(2))
                assert excinfo.value.code == wire.ERR_FORBIDDEN

            with IncShrinkClient(
                host, port, tenant="admin-1", token="admin-secret"
            ) as admin:
                out = admin.reshard(2)
                assert out["n_shards"] == 2
        server.stop()
        assert net._unhandled_errors == []

    def test_budget_exhausted_is_structured_and_non_fatal(self):
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                for t in range(1, 4):
                    owner.upload(t, batches_at(t), wait=True)
            with IncShrinkClient(
                host, port, tenant="analyst-1", token="analyst-secret"
            ) as analyst:
                analyst.query(query_mix()[0], time=3, epsilon=0.75)
                with pytest.raises(wire.RemoteError) as excinfo:
                    analyst.query(query_mix()[0], time=3, epsilon=0.75)
                err = excinfo.value
                assert err.code == wire.ERR_BUDGET_EXHAUSTED
                assert err.retry_after is None  # not retryable
                # The connection survives; the ledger is visible.
                stats = analyst.stats()
                assert stats["tenants"]["analyst-1"]["epsilon_spent"] == 0.75
        server.stop()
        assert net._unhandled_errors == []

    def test_exhausted_analyst_never_distorts_other_tenants(self):
        """The acceptance scenario: one tenant's exhaustion is invisible
        to the others, byte-for-byte and ε-for-ε."""
        # Control universe: single-tenant, same seed, same stream,
        # through the same serving runtime (so planner routing and
        # noise draws line up with the network path).
        control = DatabaseServer(build_database()).start()
        for t in range(1, 7):
            control.submit(t, batches_at(t))
        control.drain()
        ref1 = control.query(epsilon_query(), epsilon=0.5)
        # The poor analyst's one *successful* release happens in both
        # universes; only the refused query must draw nothing.
        control.query(query_mix()[0], epsilon=1.0)
        ref2 = control.query(epsilon_query(), epsilon=0.5)
        control.stop()

        registry = make_registry(
            analyst=Tenant(
                "analyst-1", "analyst-secret", role="analyst",
                epsilon_budget=1.0,
            ),
            rich=Tenant(
                "analyst-2", "analyst2-secret", role="analyst",
                epsilon_budget=100.0,
            ),
        )
        server, net = _tenanted_net(registry=registry)
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                for t in range(1, 7):
                    owner.upload(t, batches_at(t), wait=True)
            with IncShrinkClient(
                host, port, tenant="analyst-2", token="analyst2-secret"
            ) as rich, IncShrinkClient(
                host, port, tenant="analyst-1", token="analyst-secret"
            ) as poor:
                out1 = rich.query(epsilon_query(), time=6, epsilon=0.5)
                assert out1.answers == ref1.answers
                poor.query(query_mix()[0], time=6, epsilon=1.0)
                with pytest.raises(wire.RemoteError) as excinfo:
                    poor.query(query_mix()[0], time=6, epsilon=0.5)
                assert excinfo.value.code == wire.ERR_BUDGET_EXHAUSTED
                # The other tenant's stream is untouched by the refusal.
                out2 = rich.query(epsilon_query(), time=6, epsilon=0.5)
                assert out2.answers == ref2.answers
                spent = poor.stats()["tenants"]
                assert spent["analyst-1"]["epsilon_spent"] == 1.0
                assert spent["analyst-2"]["epsilon_spent"] == 1.0
        server.stop()
        assert net._unhandled_errors == []


class TestWireQuotas:
    def test_per_tenant_connection_cap(self):
        registry = TenantRegistry(
            [
                Tenant("solo", "solo-secret", role="analyst", max_connections=1),
                Tenant("open", "open-secret", role="analyst"),
            ]
        )
        server, net = _tenanted_net(registry=registry)
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="solo", token="solo-secret"
            ):
                second = IncShrinkClient(
                    host, port, tenant="solo", token="solo-secret",
                    connect_retries=1,
                )
                with pytest.raises(wire.RemoteError) as excinfo:
                    second.connect()
                assert excinfo.value.code == wire.ERR_OVERLOADED
                assert excinfo.value.retry_after is not None
                # Another tenant's cap is its own business.
                with IncShrinkClient(
                    host, port, tenant="open", token="open-secret"
                ) as other:
                    assert other.stats() is not None
            # The cap releases with the connection.
            with IncShrinkClient(
                host, port, tenant="solo", token="solo-secret"
            ) as again:
                assert again.stats() is not None
        server.stop()
        assert net._unhandled_errors == []

    def test_query_rate_limit_rejects_with_retry_after(self):
        registry = TenantRegistry(
            [
                Tenant("owner-1", "owner-secret", role="owner"),
                Tenant(
                    "slow", "slow-secret", role="analyst",
                    query_rate=0.001, burst=1,
                ),
            ]
        )
        server, net = _tenanted_net(registry=registry)
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                owner.upload(1, batches_at(1), wait=True)
            with IncShrinkClient(
                host, port, tenant="slow", token="slow-secret", busy_retries=0
            ) as slow:
                slow.query(query_mix()[0], time=1)  # burst token
                with pytest.raises(wire.RemoteError) as excinfo:
                    slow.query(query_mix()[0], time=1)
                assert excinfo.value.code == wire.ERR_OVERLOADED
                assert excinfo.value.retry_after > 0
                gauges = net.tenancy_stats()["slow"]
                assert gauges["rejections"] == {"query-rate": 1}
        server.stop()
        assert net._unhandled_errors == []


# -- metrics surface -----------------------------------------------------------
class TestMetrics:
    def _observability(self, net):
        return net.server.observability()

    def test_render_metrics_is_valid_prometheus_text(self):
        server, net = _tenanted_net()
        with net:
            host, port = net.address
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                owner.upload(1, batches_at(1), wait=True)
            text = render_metrics(
                net.server.observability(), net.tenancy_stats()
            )
        server.stop()
        assert text.endswith("\n")
        lines = text.splitlines()
        helps = [l for l in lines if l.startswith("# HELP")]
        types = [l for l in lines if l.startswith("# TYPE")]
        assert len(helps) == len(types)
        # HELP/TYPE emitted exactly once per metric name.
        names = [l.split()[2] for l in helps]
        assert len(names) == len(set(names))
        samples = [l for l in lines if not l.startswith("#")]
        for sample in samples:
            name_and_labels, value = sample.rsplit(" ", 1)
            float(value)  # every sample value parses as a number
            assert name_and_labels.startswith("incshrink_")
        assert any(l.startswith("incshrink_uploads ") for l in samples)
        assert (
            'incshrink_tenant_epsilon_budget{role="analyst",tenant="analyst-1"} 1'
            in samples
        )

    def test_label_escaping(self):
        registry = TenantRegistry(
            [Tenant('we"ird\\ten\nant', "tok", role="analyst", epsilon_budget=1.0)]
        )
        server, net = _tenanted_net(registry=registry)
        with net:
            text = render_metrics(
                net.server.observability(), net.tenancy_stats()
            )
        server.stop()
        assert 'tenant="we\\"ird\\\\ten\\nant"' in text

    def test_metrics_server_serves_scrapes_and_health(self):
        server, net = _tenanted_net()
        with net:
            with MetricsServer(net, port=0) as metrics:
                mhost, mport = metrics.address
                base = f"http://{mhost}:{mport}"
                with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain; version=0.0.4"
                    )
                    body = resp.read().decode()
                assert "incshrink_tenant_epsilon_remaining" in body
                with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
                    assert resp.read() == b"ok\n"
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{base}/nope", timeout=5)
                assert excinfo.value.code == 404
                req = urllib.request.Request(
                    f"{base}/metrics", data=b"x", method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(req, timeout=5)
                assert excinfo.value.code == 405
        server.stop()

    def test_metrics_endpoint_is_read_only_and_unauthenticated(self):
        """Scrapes need no tenant credentials and mutate nothing."""
        server, net = _tenanted_net()
        with net:
            with MetricsServer(net, port=0) as metrics:
                mhost, mport = metrics.address
                before = net.server.observability()
                for _ in range(3):
                    urllib.request.urlopen(
                        f"http://{mhost}:{mport}/metrics", timeout=5
                    ).read()
                after = net.server.observability()
                assert before["queries"] == after["queries"]
                assert before["uploads"] == after["uploads"]
        server.stop()


# -- audit trail ---------------------------------------------------------------
class TestAuditLog:
    def test_audit_events_record_refusals_without_tokens(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        server = DatabaseServer(build_database())
        net = NetworkServer(
            server, registry=make_registry(), audit_log=str(path)
        )
        with net:
            host, port = net.address
            bad = IncShrinkClient(
                host, port, tenant="analyst-1", token="WRONG", connect_retries=1
            )
            with pytest.raises(wire.RemoteError):
                bad.connect()
            with IncShrinkClient(
                host, port, tenant="owner-1", token="owner-secret"
            ) as owner:
                with pytest.raises(wire.RemoteError):
                    owner.query(query_mix()[0], time=0)
        server.stop()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["auth-failed", "forbidden"]
        assert events[0]["tenant"] == "analyst-1"
        assert events[1]["role"] == "owner"
        for event in events:
            assert "WRONG" not in json.dumps(event)
            assert "owner-secret" not in json.dumps(event)
        assert [e["event"] for e in net.audit_events] == [
            "auth-failed",
            "forbidden",
        ]
