"""Tests for the experiment harness and the table/figure drivers.

Drivers run here at miniature scale — enough to validate wiring and
output shape; the benchmark suite runs them at reporting scale.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.harness import (
    MultiViewRunConfig,
    RunConfig,
    run_experiment,
    run_multiview_experiment,
)
from repro.experiments.reporting import format_table, format_value
from repro.experiments.table2 import format_table2, run_table2


class TestHarness:
    def test_run_result_fields(self):
        res = run_experiment(RunConfig(dataset="tpcds", mode="dp-timer", n_steps=30))
        assert res.summary.query_count == 30
        assert res.view_rate > 0
        assert res.timer_interval >= 1
        assert 0 < res.realized_epsilon <= res.config.epsilon + 1e-9

    def test_flush_size_auto_resolved(self):
        res = run_experiment(
            RunConfig(dataset="tpcds", mode="dp-timer", n_steps=30, flush_size=None)
        )
        assert res.engine.flusher.flush_size > 0

    def test_explicit_flush_size_respected(self):
        res = run_experiment(
            RunConfig(dataset="tpcds", mode="dp-timer", n_steps=30, flush_size=7)
        )
        assert res.engine.flusher.flush_size == 7

    def test_query_every_subsamples(self):
        res = run_experiment(
            RunConfig(dataset="tpcds", mode="otm", n_steps=30, query_every=10)
        )
        assert res.summary.query_count == 3


class TestMultiViewHarness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multiview_experiment(
            MultiViewRunConfig(dataset="tpcds", n_steps=24, query_every=6)
        )

    def test_three_views_over_two_shared_tables(self, result):
        assert len(result.view_modes) == 3
        assert result.upload_counts == {"sales": 24, "returns": 24}

    def test_transform_shared_across_same_signature_views(self, result):
        # full + EP audit share a circuit; recent runs its own: 2 per step.
        assert result.transform_runs == 2 * 24

    def test_mixed_aggregate_queries_planned(self, result):
        # 4 queried steps × (2 COUNTs + 1 SUM + 1 three-aggregate
        # dashboard) + 1 final NM fallback.
        assert result.summary.query_count == 17
        assert result.plan_counts.get("nm-fallback") == 1
        assert sum(result.plan_counts.values()) == 17

    def test_composed_epsilon_within_total(self, result):
        assert 0 < result.realized_epsilon <= result.config.total_epsilon + 1e-9
        assert sum(result.allocation.values()) <= result.config.total_epsilon + 1e-9

    def test_result_serializes_without_shares(self, result):
        payload = result.to_json()
        assert "share" not in payload
        assert '"realized_epsilon"' in payload

    def test_query_every_validated(self):
        with pytest.raises(ConfigurationError):
            run_multiview_experiment(MultiViewRunConfig(query_every=0))

    def test_invalid_query_every(self):
        with pytest.raises(ConfigurationError):
            run_experiment(RunConfig(query_every=0))

    def test_with_overrides(self):
        cfg = RunConfig().with_overrides(epsilon=9.0, mode="ep")
        assert cfg.epsilon == 9.0
        assert cfg.mode == "ep"
        assert cfg.dataset == "tpcds"

    def test_same_seed_reproduces_metrics(self):
        a = run_experiment(RunConfig(dataset="tpcds", mode="dp-timer", n_steps=25, seed=9))
        b = run_experiment(RunConfig(dataset="tpcds", mode="dp-timer", n_steps=25, seed=9))
        assert a.summary.avg_l1_error == b.summary.avg_l1_error
        assert a.summary.avg_qet_seconds == b.summary.avg_qet_seconds

    def test_to_json_roundtrips(self):
        import json

        res = run_experiment(RunConfig(dataset="tpcds", mode="dp-timer", n_steps=20))
        data = json.loads(res.to_json())
        assert data["config"]["mode"] == "dp-timer"
        assert data["summary"]["query_count"] == 20
        assert len(data["series"]["l1_errors"]) == 20
        assert data["realized_epsilon"] == pytest.approx(1.5)

    def test_to_dict_excludes_engine_and_cost_model(self):
        res = run_experiment(RunConfig(dataset="tpcds", mode="otm", n_steps=10))
        data = res.to_dict()
        assert "engine" not in data
        assert "cost_model" not in data["config"]


class TestReportingHelpers:
    def test_format_value_conventions(self):
        assert format_value(None) == "N/A"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.1234) == "0.123"
        assert format_value("x") == "x"

    def test_format_table_aligns(self):
        out = format_table("T", ["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1


class TestDrivers:
    def test_table2_and_figure4_small(self):
        results = run_table2(n_steps=20, nm_query_every=10)
        text = format_table2(results)
        assert "Avg L1 error" in text
        assert "DP-Timer" in text
        points = run_figure4(results=results)
        assert len(points) == 10  # 2 datasets × 5 modes
        assert "Figure 4" in format_figure4(points)

    def test_figure5_small(self):
        res = run_figure5("tpcds", epsilons=(0.1, 10.0), seeds=(0,), n_steps=20)
        assert set(res) == {"dp-timer", "dp-ant"}
        assert set(res["dp-timer"]) == {0.1, 10.0}
        assert "privacy vs accuracy" in format_figure5("tpcds", res)

    def test_figure6_small(self):
        res = run_figure6("tpcds", seeds=(0,), n_steps=20)
        assert set(res["dp-timer"]) == {"sparse", "standard", "burst"}
        assert "workload" in format_figure6("tpcds", res)

    def test_figure7_small(self):
        res = run_figure7("tpcds", epsilons=(1.0,), t_values=(2, 5), n_steps=20)
        points = res[1.0]["dp-timer"]
        assert [p[0] for p in points] == [2, 5]
        assert "Figure 7" in format_figure7("tpcds", res)

    def test_figure8_small(self):
        res = run_figure8("cpdb", omegas=(2, 4), seeds=(0,), n_steps=20)
        assert set(res["dp-timer"]) == {2, 4}
        text = format_figure8("cpdb", res)
        assert "Transform" in text and "Shrink" in text

    def test_figure9_small(self):
        res = run_figure9("tpcds", scales=(0.5, 1.0), n_steps=15)
        assert set(res["dp-ant"]) == {0.5, 1.0}
        assert "scaling" in format_figure9("tpcds", res)
