"""Unit tests for schemas, rows, and record batches."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.types import (
    DUMMY_VALUE,
    RecordBatch,
    Schema,
    as_rows,
    multiset,
    rows_to_tuples,
)


class TestSchema:
    def test_width_counts_fields(self):
        assert Schema(("a", "b", "c")).width == 3

    def test_index_finds_position(self):
        s = Schema(("pid", "ts"))
        assert s.index("pid") == 0
        assert s.index("ts") == 1

    def test_index_missing_field_raises(self):
        with pytest.raises(SchemaError, match="no field"):
            Schema(("a",)).index("b")

    def test_has(self):
        s = Schema(("a", "b"))
        assert s.has("a")
        assert not s.has("z")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(("a", "a"))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_concat_prefixes_disambiguate(self):
        left = Schema(("key", "ts"))
        right = Schema(("key", "ts"))
        joined = left.concat(right, prefix_self="l_", prefix_other="r_")
        assert joined.fields == ("l_key", "l_ts", "r_key", "r_ts")

    def test_concat_without_prefix_collision_raises(self):
        s = Schema(("key",))
        with pytest.raises(SchemaError, match="duplicate"):
            s.concat(s)

    def test_empty_rows_shape_and_value(self):
        rows = Schema(("a", "b")).empty_rows(3)
        assert rows.shape == (3, 2)
        assert (rows == DUMMY_VALUE).all()
        assert rows.dtype == np.uint32


class TestAsRows:
    def test_coerces_lists(self):
        s = Schema(("a", "b"))
        arr = as_rows(s, [[1, 2], [3, 4]])
        assert arr.dtype == np.uint32
        assert arr.shape == (2, 2)

    def test_single_row_reshaped(self):
        s = Schema(("a", "b"))
        assert as_rows(s, np.asarray([1, 2])).shape == (1, 2)

    def test_wrong_width_raises(self):
        with pytest.raises(SchemaError, match="width"):
            as_rows(Schema(("a",)), [[1, 2]])

    def test_value_overflow_raises(self):
        with pytest.raises(SchemaError, match="32 bits"):
            as_rows(Schema(("a",)), [[1 << 33]])

    def test_empty_input_ok(self):
        assert as_rows(Schema(("a", "b")), []).shape == (0, 2)


class TestRecordBatch:
    def test_defaults_all_real(self):
        b = RecordBatch(Schema(("a",)), [[1], [2]])
        assert b.real_count == 2
        assert len(b) == 2

    def test_real_rows_filters_dummies(self):
        b = RecordBatch(
            Schema(("a",)), [[1], [2], [0]], np.asarray([True, True, False])
        )
        assert b.real_count == 2
        assert rows_to_tuples(b.real_rows()) == [(1,), (2,)]

    def test_padded_to_adds_dummies(self):
        b = RecordBatch(Schema(("a",)), [[7]]).padded_to(4)
        assert len(b) == 4
        assert b.real_count == 1
        assert not b.is_real[1:].any()

    def test_padded_to_smaller_raises(self):
        b = RecordBatch(Schema(("a",)), [[1], [2]])
        with pytest.raises(SchemaError, match="pad"):
            b.padded_to(1)

    def test_flag_length_mismatch_raises(self):
        with pytest.raises(SchemaError, match="is_real"):
            RecordBatch(Schema(("a",)), [[1]], np.asarray([True, False]))

    def test_column_access(self):
        b = RecordBatch(Schema(("x", "y")), [[1, 10], [2, 20]])
        assert list(b.column("y")) == [10, 20]

    def test_concat_merges_flags(self):
        s = Schema(("a",))
        b1 = RecordBatch(s, [[1]]).padded_to(2)
        b2 = RecordBatch(s, [[2]])
        merged = RecordBatch.concat([b1, b2])
        assert len(merged) == 3
        assert merged.real_count == 2

    def test_concat_mismatched_schema_raises(self):
        b1 = RecordBatch(Schema(("a",)), [[1]])
        b2 = RecordBatch(Schema(("b",)), [[1]])
        with pytest.raises(SchemaError):
            RecordBatch.concat([b1, b2])

    def test_concat_empty_list_raises(self):
        with pytest.raises(SchemaError):
            RecordBatch.concat([])

    def test_empty_constructor(self):
        b = RecordBatch.empty(Schema(("a", "b")))
        assert len(b) == 0
        assert b.real_count == 0


class TestMultiset:
    def test_counts_duplicates(self):
        rows = np.asarray([[1, 2], [1, 2], [3, 4]], dtype=np.uint32)
        ms = multiset(rows)
        assert ms[(1, 2)] == 2
        assert ms[(3, 4)] == 1

    def test_empty(self):
        assert multiset(np.zeros((0, 2), dtype=np.uint32)) == {}
