"""Network serving subsystem tests (``repro.net``).

The headline claim is **transparency**: a query answered across the
TCP service boundary is byte-identical to the same query answered
through the in-process :class:`DatabaseServer` path — same released
table, same ground-truth mirror, same plan, same realized ε — including
GROUP BY multi-aggregate queries released with per-query Laplace noise.
Around that sit the protocol codecs (pure round-trips, hostile-input
rejection), backpressure (reject-with-retry-after, never unbounded
buffering), structured error frames that do not kill the connection,
and remote admin (stats/snapshot/reshard).
"""

from __future__ import annotations

import io
import socket
import struct
import threading

import numpy as np
import pytest

from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.net import protocol as wire
from repro.net.client import IncShrinkClient
from repro.net.server import NetworkServer
from repro.query.ast import (
    AggregateSpec,
    And,
    ColumnEquals,
    ColumnRange,
    GroupBySpec,
    LogicalJoinCountQuery,
    LogicalJoinQuery,
    LogicalQuery,
    QueryAnswer,
    as_logical,
)
from repro.server.database import IncShrinkDatabase, ViewRegistration
from repro.server.persistence import restore_database
from repro.server.runtime import DatabaseServer

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
    ([[3, 5]], [[9, 5]]),
    ([], [[3, 6]]),
]


def make_view(name: str, window_hi: int) -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
        omega=2,
        budget=6,
    )


def build_database() -> IncShrinkDatabase:
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=7)
    db.register_view(ViewRegistration(make_view("full", 2), mode="ep"))
    db.register_view(
        ViewRegistration(make_view("timed", 2), mode="dp-timer", timer_interval=1)
    )
    return db


def batches_at(time: int) -> dict[str, RecordBatch]:
    probe_rows, driver_rows = SCRIPT[time - 1]
    return {
        "orders": RecordBatch(
            PROBE_SCHEMA, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(4),
        "shipments": RecordBatch(
            DRIVER_SCHEMA, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(3),
    }


def full_view_def() -> JoinViewDefinition:
    return make_view("full", 2)


def query_mix() -> list:
    """The deterministic (noise-free) query workload."""
    vd = full_view_def()
    return [
        LogicalJoinCountQuery.for_view(vd),
        LogicalQuery.for_view(
            vd,
            AggregateSpec.count(),
            AggregateSpec.sum_of("shipments", "sts"),
            AggregateSpec.avg_of("shipments", "sts"),
        ),
        LogicalQuery.for_view(
            vd,
            AggregateSpec.count(),
            AggregateSpec.sum_of("shipments", "sts"),
            group_by=GroupBySpec("orders", "key", (1, 2, 3, 9)),
            predicate=ColumnRange("shipments", "sts", 0, 6),
        ),
    ]


def epsilon_query() -> LogicalQuery:
    """The GROUP BY multi-aggregate the ε-release equivalence keys on."""
    vd = full_view_def()
    return LogicalQuery.for_view(
        vd,
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (1, 2, 3, 9)),
    )


# -- pure codec round-trips ----------------------------------------------------
class TestWireCodecs:
    def test_query_round_trip_full_ast(self):
        join = LogicalJoinQuery(
            "orders", "shipments", "key", "key", "ots", "sts", 0, 2
        )
        query = LogicalQuery(
            join=join,
            aggregates=(
                AggregateSpec.count(alias="n"),
                AggregateSpec.sum_of("shipments", "sts", sensitivity=6.0),
                AggregateSpec.avg_of("orders", "ots", alias="mean_ots"),
            ),
            group_by=GroupBySpec("orders", "key", (1, 2, 3)),
            predicate=And(
                (
                    ColumnEquals("orders", "key", 3),
                    ColumnRange("shipments", "sts", 1, 5),
                )
            ),
        )
        assert wire.decode_query(wire.encode_query(query)) == query

    def test_single_clause_predicate_round_trip(self):
        join = LogicalJoinQuery(
            "orders", "shipments", "key", "key", "ots", "sts", 0, 2
        )
        query = LogicalQuery(
            join=join,
            aggregates=(AggregateSpec.count(),),
            predicate=ColumnEquals("orders", "key", 7),
        )
        assert wire.decode_query(wire.encode_query(query)) == query

    def test_shims_normalize_on_encode(self):
        shim = LogicalJoinCountQuery.for_view(full_view_def())
        assert wire.decode_query(wire.encode_query(shim)) == as_logical(shim)

    def test_malformed_query_payload_rejected(self):
        with pytest.raises(wire.WireError, match="malformed query"):
            wire.decode_query({"join": {"probe_table": "orders"}, "aggregates": []})

    def test_non_numeric_fields_rejected_as_wire_errors(self):
        entry = wire.encode_query(query_mix()[0])
        entry["aggregates"][0]["sensitivity"] = "abc"
        with pytest.raises(wire.WireError, match="malformed query"):
            wire.decode_query(entry)

    def test_batch_round_trip_preserves_bytes(self):
        batch = batches_at(1)["orders"]
        out = wire.decode_batch(wire.encode_batch(batch))
        assert out.schema == batch.schema
        assert np.array_equal(out.rows, batch.rows)
        assert np.array_equal(out.is_real, batch.is_real)

    def test_upload_round_trip_preserves_order(self):
        time, items = wire.decode_upload(
            wire.encode_upload(3, list(batches_at(2).items()))
        )
        assert time == 3
        assert [name for name, _ in items] == ["orders", "shipments"]

    def test_answer_round_trip_keeps_exact_cells_integral(self):
        answer = QueryAnswer(
            columns=("count", "avg_x"),
            group_keys=(1, 2),
            rows=((4, 2.5), (0, 0.0)),
        )
        decoded = wire.decode_answer(wire.encode_answer(answer))
        assert decoded == answer
        assert isinstance(decoded.rows[0][0], int)
        assert isinstance(decoded.rows[0][1], float)

    def test_frame_round_trip(self):
        buf = io.BytesIO()
        wire.write_frame(buf, "query", {"a": 1})
        assert wire.read_frame(io.BytesIO(buf.getvalue())) == ("query", {"a": 1})

    def test_frame_rejects_bad_magic(self):
        buf = io.BytesIO(b"XXXX" + b"\x01\x01" + struct.pack(">I", 0))
        with pytest.raises(wire.WireError, match="magic"):
            wire.read_frame(buf)

    def test_frame_rejects_version_mismatch(self):
        header = struct.pack(">4sBBI", wire.PROTOCOL_MAGIC, 99, 1, 0)
        with pytest.raises(wire.VersionMismatch):
            wire.read_frame(io.BytesIO(header))

    def test_frame_rejects_oversized_body(self):
        header = struct.pack(
            ">4sBBI", wire.PROTOCOL_MAGIC, wire.PROTOCOL_VERSION, 1,
            wire.MAX_FRAME_BYTES + 1,
        )
        with pytest.raises(wire.WireError, match="ceiling"):
            wire.read_frame(io.BytesIO(header))

    def test_eof_at_boundary_is_connection_closed(self):
        with pytest.raises(wire.ConnectionClosed):
            wire.read_frame(io.BytesIO(b""))

    def test_eof_mid_frame_is_wire_error(self):
        buf = io.BytesIO()
        wire.write_frame(buf, "stats", {"k": "v"})
        truncated = buf.getvalue()[:-3]
        with pytest.raises(wire.WireError, match="mid-frame"):
            wire.read_frame(io.BytesIO(truncated))


# -- the transparency claim ----------------------------------------------------
class TestNetworkEquivalence:
    def test_four_clients_match_in_process_path(self):
        # Incremental execution is disabled on both universes: which of
        # the four concurrent analysts' repeat queries runs warm depends
        # on scheduling, and a warm scan legitimately reports a smaller
        # qet than the serial reference.  Answers would still match; the
        # per-query timing equivalence asserted here would not.
        def build() -> IncShrinkDatabase:
            db = build_database()
            db.set_incremental(False)
            return db

        # Reference universe: the in-process serving runtime.
        ref_server = DatabaseServer(build()).start()
        for t in range(1, len(SCRIPT) + 1):
            ref_server.submit(t, batches_at(t))
        ref_server.drain()
        ref_results = [ref_server.query(q) for q in query_mix()]
        ref_noisy = ref_server.query(epsilon_query(), epsilon=0.8)
        ref_eps = ref_server.database.realized_epsilon()
        ref_server.stop()

        # Network universe: same seed, same stream, across TCP.
        net_server = DatabaseServer(build())
        with NetworkServer(net_server) as net:
            host, port = net.address
            clients = [
                IncShrinkClient(host, port, name=f"c{i}").connect()
                for i in range(4)
            ]
            try:
                # All four clients upload; a turn-taking condition keeps
                # the stream ordered (the runtime rejects regressions).
                turn = threading.Condition()
                next_time = [1]
                upload_errors: list[BaseException] = []

                def owner_loop(idx: int) -> None:
                    try:
                        for t in range(1, len(SCRIPT) + 1):
                            if t % 4 != idx:
                                continue
                            with turn:
                                turn.wait_for(lambda: next_time[0] == t)
                                clients[idx].upload(t, batches_at(t))
                                next_time[0] = t + 1
                                turn.notify_all()
                    except BaseException as exc:
                        upload_errors.append(exc)
                        with turn:
                            turn.notify_all()

                owners = [
                    threading.Thread(target=owner_loop, args=(i,))
                    for i in range(4)
                ]
                for thread in owners:
                    thread.start()
                for thread in owners:
                    thread.join()
                assert not upload_errors, upload_errors
                net_server.drain()

                # All four clients replay the deterministic mix
                # concurrently; every answer must match the reference.
                query_errors: list[BaseException] = []

                def analyst_loop(client: IncShrinkClient) -> None:
                    try:
                        for query, ref in zip(query_mix(), ref_results):
                            result = client.query(query)
                            assert result.answers == ref.answers
                            assert result.logical_answers == ref.logical_answers
                            assert result.plan_kind == ref.plan.kind
                            assert result.view_name == ref.plan.view_name
                            assert result.qet_seconds == (
                                ref.observation.qet_seconds
                            )
                    except BaseException as exc:
                        query_errors.append(exc)

                analysts = [
                    threading.Thread(target=analyst_loop, args=(c,))
                    for c in clients
                ]
                for thread in analysts:
                    thread.start()
                for thread in analysts:
                    thread.join()
                assert not query_errors, query_errors

                # One ε-released GROUP BY multi-aggregate: the identical
                # noise stream must produce the identical noisy table.
                net_noisy = clients[0].query(epsilon_query(), epsilon=0.8)
                assert net_noisy.answers == ref_noisy.answers
                assert net_noisy.epsilon_spent == ref_noisy.epsilon_spent
                assert net_server.database.realized_epsilon() == ref_eps
            finally:
                for client in clients:
                    client.close()
        net_server.stop()

    def test_welcome_exposes_views_and_watermark(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                views = {v["name"] for v in client.views()}
                assert views == {"full", "timed"}
                entry = client.views()[0]
                assert set(wire.JOIN_FIELDS) <= set(entry)
                assert client.server_info["protocol"] == wire.PROTOCOL_VERSION
        server.stop()


# -- backpressure and structured errors ---------------------------------------
class TestBackpressure:
    def test_full_ingest_queue_rejects_with_retry_after(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            def always_full(*args, **kwargs):
                return False

            server.try_submit = always_full  # the queue never drains
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=0) as client:
                with pytest.raises(wire.RemoteError) as excinfo:
                    client.upload(1, batches_at(1))
                assert excinfo.value.code == wire.ERR_OVERLOADED
                assert excinfo.value.retry_after is not None
        server.stop()

    def test_client_retries_after_transient_overload(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            real = server.try_submit
            calls = {"n": 0}

            def flaky(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] <= 2:
                    return False
                return real(*args, **kwargs)

            server.try_submit = flaky
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=5) as client:
                out = client.upload(1, batches_at(1), wait=True)
                assert out["applied_through"] == 1
            assert calls["n"] == 3
        server.stop()

    def test_connection_cap_rejects_with_retry_after(self):
        import time as time_module

        server = DatabaseServer(build_database())
        with NetworkServer(server, max_connections=1) as net:
            host, port = net.address
            second = IncShrinkClient(
                host, port, busy_retries=0, connect_retries=2
            )
            with IncShrinkClient(host, port) as first:
                assert first.server_info["server"] == "incshrink"
                # connect() redials on overloaded (the rejection closes
                # the socket); with the cap still full it raises the
                # last structured rejection once retries run out.
                with pytest.raises(wire.RemoteError) as excinfo:
                    second.connect()
                assert excinfo.value.code == wire.ERR_OVERLOADED
                # The failed handshake tore its half-connection down.
                assert not second.connected
            # Capacity freed: the same client object reconnects cleanly.
            for _ in range(100):
                try:
                    second.connect()
                    break
                except (wire.RemoteError, ConnectionError):
                    time_module.sleep(0.02)
            assert second.connected
            assert second.server_info["server"] == "incshrink"
            second.close()
        server.stop()

    def test_inflight_cap_sheds_load_when_saturated(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server, max_inflight=1) as net:
            # Saturate the only permit, then dispatch directly.
            assert net._inflight.acquire(blocking=False)
            try:
                frame_type, payload = net._dispatch(
                    "query", {"query": wire.encode_query(query_mix()[0])}
                )
            finally:
                net._inflight.release()
            assert frame_type == "error"
            assert payload["code"] == wire.ERR_OVERLOADED
            assert payload["retry_after"] > 0
        server.stop()

    def test_draining_server_answers_shutting_down(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            net._closing = True
            frame_type, payload = net._dispatch(
                "query", {"query": wire.encode_query(query_mix()[0])}
            )
            assert frame_type == "error"
            assert payload["code"] == wire.ERR_SHUTTING_DOWN
            net._closing = False
        server.stop()


class TestStructuredErrors:
    def test_invalid_request_keeps_connection_alive(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=0) as client:
                bad = wire.encode_query(query_mix()[0])
                bad["aggregates"][0]["kind"] = "median"
                with pytest.raises(wire.RemoteError) as excinfo:
                    client._request("query", {"query": bad}, expect="result")
                assert excinfo.value.code == wire.ERR_INVALID_REQUEST
                assert "SchemaError" in excinfo.value.remote_message
                # Same connection still serves valid requests.
                result = client.query(query_mix()[0])
                assert result.plan_kind == "view-scan"
        server.stop()

    def test_admission_floor_covers_locally_queued_steps(self):
        """A step submitted in-process (even if not yet applied when the
        listener opens) raises the remote admission floor — a remote
        upload slotting under it would fail in the background loop."""
        server = DatabaseServer(build_database()).start()
        server.submit(3, batches_at(3))  # queued locally, first step
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=0) as client:
                with pytest.raises(wire.RemoteError) as excinfo:
                    client.upload(2, batches_at(2))
                assert "does not advance" in excinfo.value.remote_message
                out = client.upload(4, batches_at(4), wait=True)
                assert out["applied_through"] == 4
        server.stop()

    def test_stale_upload_rejected_without_poisoning_ingest(self):
        """A non-advancing step is refused at admission — it must never
        reach the background loop, where it would kill ingestion for
        every client while its sender saw upload_ok."""
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=0) as client:
                client.upload(1, batches_at(1), wait=True)
                with pytest.raises(wire.RemoteError) as excinfo:
                    client.upload(1, batches_at(1))  # replayed step
                assert excinfo.value.code == wire.ERR_INVALID_REQUEST
                assert "does not advance" in excinfo.value.remote_message
                # Ingestion stays healthy: later steps still apply.
                out = client.upload(2, batches_at(2), wait=True)
                assert out["applied_through"] == 2
                assert client.stats()["ingest_error"] is None
        server.stop()

    def test_deferred_ingest_error_surfaces_on_waited_upload(self):
        """Failures the admission gate cannot see (unknown table) still
        surface: on the waited upload, in stats frames, and at stop()."""
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port, busy_retries=0) as client:
                client.upload(1, batches_at(1), wait=True)
                with pytest.raises(wire.RemoteError) as excinfo:
                    client.upload(
                        2, {"unknown": batches_at(2)["orders"]}, wait=True
                    )
                assert excinfo.value.code == wire.ERR_INVALID_REQUEST
                assert "unknown" in excinfo.value.remote_message
                assert "unknown" in client.stats()["ingest_error"]
                # An innocent *later* request is told the server is
                # halted — not that its own payload was invalid.
                with pytest.raises(wire.RemoteError) as later:
                    client.query(query_mix()[0])
                assert later.value.code == wire.ERR_SERVER
                assert "halted by an earlier failure" in (
                    later.value.remote_message
                )
        with pytest.raises(Exception, match="unknown"):
            server.stop()

    def test_unsupported_frame_type(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            frame_type, payload = net._dispatch("welcome", {})
            assert frame_type == "error"
            assert payload["code"] == wire.ERR_UNSUPPORTED
        server.stop()

    def test_version_mismatch_answered_with_structured_error(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                stream = sock.makefile("rwb")
                stream.write(
                    struct.pack(">4sBBI", wire.PROTOCOL_MAGIC, 99, 1, 0)
                )
                stream.flush()
                frame_type, payload = wire.read_frame(stream)
                assert frame_type == "error"
                assert payload["code"] == wire.ERR_VERSION_MISMATCH
        server.stop()


# -- remote admin --------------------------------------------------------------
class TestRemoteAdmin:
    def test_stats_frame_reports_observability_surface(self):
        server = DatabaseServer(build_database(), max_pending=17)
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                client.upload(1, batches_at(1), wait=True)
                client.query(query_mix()[0])
                stats = client.stats()
                assert stats["last_time"] == 1
                assert stats["uploads"] == 2
                assert stats["queries"] >= 1
                assert stats["queue_capacity"] == 17
                assert stats["queue_depth"] == 0
                assert set(stats["shard_rows"]) == {"full", "timed"}
                assert stats["query_epsilon"] == 0.0
                assert stats["ingest_error"] is None
                assert stats["n_shards"] == 1
                assert stats["realized_epsilon"] >= 0.0
        server.stop()

    def test_remote_snapshot_restores_identical_state(self, tmp_path):
        path = str(tmp_path / "remote.snap")
        server = DatabaseServer(build_database(), snapshot_path=path)
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                for t in range(1, 4):
                    client.upload(t, batches_at(t), wait=True)
                receipt = client.snapshot()
                assert receipt["path"] == path
                before = client.query(query_mix()[1], time=3)
        restored = restore_database(path)
        result = restored.database.query(query_mix()[1], 3)
        assert result.answers == before.answers
        assert (
            restored.database.realized_epsilon()
            == server.database.realized_epsilon()
        )
        server.stop()

    def test_remote_reshard_preserves_answers(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                for t in range(1, 4):
                    client.upload(t, batches_at(t), wait=True)
                before = client.query(query_mix()[2])
                out = client.reshard(3)
                assert out["n_shards"] == 3
                after = client.query(query_mix()[2])
                assert after.answers == before.answers
                assert client.stats()["n_shards"] == 3
        server.stop()


class _LegacyV1Client:
    """A PR 5-era client: blocking socket, JSON-only version-1 frames,
    and a ``hello`` that has never heard of codec negotiation."""

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.create_connection((host, port), timeout=10.0)
        self._stream = self._sock.makefile("rwb")

    def request(self, frame_type: str, payload: dict, expect: str) -> dict:
        self._stream.write(wire.encode_frame(frame_type, payload))
        self._stream.flush()
        # Read the raw header first: a legacy peer would reject any
        # version-2 frame outright, so the server must answer v1 only.
        header = self._stream.read(10)
        magic, version, code, body_len = struct.unpack(">4sBBI", header)
        assert magic == wire.PROTOCOL_MAGIC
        assert version == wire.PROTOCOL_VERSION, (
            f"server answered a JSON-only client with a version-{version} frame"
        )
        body = self._stream.read(body_len)
        decoder = wire.FrameDecoder()
        frames = decoder.feed(header + body)
        assert len(frames) == 1
        response_type, response = frames[0]
        assert response_type == expect, (response_type, response)
        return response

    def query_payload(self, query, epsilon=None) -> dict:
        return {
            "query": wire.encode_query(query),
            "time": None,
            "predicate_words": 1,
            "epsilon": epsilon,
        }

    def close(self) -> None:
        try:
            self._stream.close()
            self._sock.close()
        except OSError:
            pass


class TestCodecNegotiation:
    def test_handshake_prefers_binary_and_honours_json(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            host, port = net.address
            with IncShrinkClient(host, port) as client:
                assert client.codec == wire.CODEC_BINARY
                assert client.server_info["codec"] == wire.CODEC_BINARY
                assert client.server_info["codecs"] == list(wire.SUPPORTED_CODECS)
            with IncShrinkClient(host, port, codec="json") as client:
                assert client.codec == wire.CODEC_JSON
                assert client.server_info["codec"] == wire.CODEC_JSON
        server.stop()

    def test_malformed_codec_offers_fall_back_to_json(self):
        server = DatabaseServer(build_database())
        with NetworkServer(server) as net:
            for offered in (None, [], ["zstd", 42], "binary", {"a": 1}):
                payload = {"client": "odd"}
                if offered is not None:
                    payload["codecs"] = offered
                response_type, response = net._dispatch("hello", payload)
                assert response_type == "welcome"
                assert response["codec"] == wire.CODEC_JSON
            response_type, response = net._dispatch(
                "hello", {"codecs": ["zstd", "binary"]}
            )
            assert response["codec"] == wire.CODEC_BINARY
        server.stop()

    def test_pr5_json_client_negotiates_down_and_matches_binary_answers(self):
        """ISSUE 7 satellite: a legacy v1 client against the reactor.

        Two identical universes (same seed, same stream): one driven
        end-to-end by a PR 5-era JSON-only client, one by the binary
        SDK.  Every answer — including the ε-released noisy table —
        must decode identically, with identical cell *types* and
        identical realized ε, and the legacy connection must only ever
        see version-1 frames.
        """
        outcomes = {}
        for mode in ("legacy-json", "binary"):
            server = DatabaseServer(build_database())
            with NetworkServer(server) as net:
                host, port = net.address
                if mode == "binary":
                    with IncShrinkClient(host, port) as client:
                        assert client.codec == wire.CODEC_BINARY
                        for t in range(1, len(SCRIPT) + 1):
                            client.upload(
                                t, batches_at(t), wait=t == len(SCRIPT)
                            )
                        plain = [client.query(q) for q in query_mix()]
                        noisy = client.query(epsilon_query(), epsilon=0.8)
                else:
                    legacy = _LegacyV1Client(host, port)
                    welcome = legacy.request(
                        "hello", {"client": "pr5-era"}, "welcome"
                    )
                    # No codec offer -> the server stays on JSON.
                    assert welcome["codec"] == wire.CODEC_JSON
                    for t in range(1, len(SCRIPT) + 1):
                        payload = wire.encode_upload(
                            t, batches_at(t), wait=t == len(SCRIPT)
                        )
                        if t == len(SCRIPT):
                            payload["wait_timeout"] = 30.0
                        legacy.request("upload", payload, "upload_ok")
                    plain = [
                        wire.decode_result(
                            legacy.request(
                                "query", legacy.query_payload(q), "result"
                            )
                        )
                        for q in query_mix()
                    ]
                    noisy = wire.decode_result(
                        legacy.request(
                            "query",
                            legacy.query_payload(epsilon_query(), epsilon=0.8),
                            "result",
                        )
                    )
                    legacy.close()
                realized = server.database.realized_epsilon()
            server.stop()
            outcomes[mode] = (plain, noisy, realized)

        legacy_plain, legacy_noisy, legacy_eps = outcomes["legacy-json"]
        binary_plain, binary_noisy, binary_eps = outcomes["binary"]
        assert legacy_eps == binary_eps
        for lres, bres in zip(legacy_plain + [legacy_noisy],
                              binary_plain + [binary_noisy], strict=True):
            assert lres.answers == bres.answers
            assert lres.logical_answers == bres.logical_answers
            assert lres.epsilon_spent == bres.epsilon_spent
            assert lres.plan_kind == bres.plan_kind
            for lrow, brow in zip(
                lres.answers.rows, bres.answers.rows, strict=True
            ):
                for lcell, bcell in zip(lrow, brow, strict=True):
                    assert type(lcell) is type(bcell)
            # Byte-identical released tables: re-encoding both decoded
            # answers canonically must give the same bytes.
            assert wire.encode_frame(
                "result", wire.encode_answer(lres.answers)
            ) == wire.encode_frame("result", wire.encode_answer(bres.answers))


class TestGracefulDrain:
    def test_close_is_idempotent_and_disconnects_clients(self):
        server = DatabaseServer(build_database())
        net = NetworkServer(server).start()
        host, port = net.address
        client = IncShrinkClient(host, port).connect()
        assert client.server_info["server"] == "incshrink"
        net.close()
        net.close()  # second close is a no-op
        with pytest.raises((ConnectionError, wire.RemoteError)):
            client.stats()
        client.close()
        server.stop()

    def test_new_connections_refused_after_close(self):
        server = DatabaseServer(build_database())
        net = NetworkServer(server).start()
        host, port = net.address
        net.close()
        with pytest.raises(ConnectionError):
            IncShrinkClient(host, port, connect_retries=2).connect()
        server.stop()
