"""Tests for the unified query compiler: AST → rewrite → plan → one scan.

Fixture data replays the shared orders/shipments script of
``test_server_database`` into a single EP (exact) view, so every
pre-noise assertion has a hand-computable ground truth:

window [0, 2] qualifying pairs at t=4: (1,1)-(1,2), (2,1)-(2,3),
(3,2)-(3,3), (3,2)-(3,4) → COUNT 4, SUM(shipments.sts) 12,
AVG(shipments.sts) 3.0; grouped by orders.key over domain (1, 2, 3):
counts (1, 1, 2), sums (2, 3, 7), avgs (2.0, 3.0, 3.5).
"""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.query.ast import (
    AggregateSpec,
    And,
    ColumnEquals,
    ColumnRange,
    GroupBySpec,
    LogicalJoinCountQuery,
    LogicalJoinQuery,
    LogicalJoinSumQuery,
    LogicalQuery,
    ViewScanPlan,
    as_logical,
)
from repro.query.planner import NM_JOIN, VIEW_SCAN
from repro.query.rewrite import lower_to_view_scan
from repro.server.database import IncShrinkDatabase, ViewRegistration

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
]


def make_view(name: str = "full", window_hi: int = 2) -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
        omega=2,
        budget=6,
    )


def build_database(seed: int = 7) -> IncShrinkDatabase:
    """One exact (EP) view over the replayed script — no truncation loss."""
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=seed)
    db.register_view(ViewRegistration(make_view(), mode="ep"))
    for t, (probe_rows, driver_rows) in enumerate(SCRIPT, start=1):
        probe = RecordBatch(
            PROBE_SCHEMA, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(4)
        driver = RecordBatch(
            DRIVER_SCHEMA, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(3)
        db.upload(t, {"orders": probe, "shipments": driver})
        db.step(t)
    return db


@pytest.fixture
def database() -> IncShrinkDatabase:
    return build_database()


def query_of(*aggregates, **kwargs) -> LogicalQuery:
    return LogicalQuery.for_view(make_view(), *aggregates, **kwargs)


COUNT = AggregateSpec.count()
SUM_STS = AggregateSpec.sum_of("shipments", "sts")
AVG_STS = AggregateSpec.avg_of("shipments", "sts")


class TestASTValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            AggregateSpec("median")

    def test_count_with_column_rejected(self):
        with pytest.raises(SchemaError, match="COUNT"):
            AggregateSpec("count", table="orders", column="ots")

    def test_sum_without_column_rejected(self):
        with pytest.raises(SchemaError, match="SUM"):
            AggregateSpec("sum", table="orders")

    def test_nonpositive_sensitivity_rejected(self):
        with pytest.raises(SchemaError, match="sensitivity"):
            AggregateSpec.sum_of("orders", "ots", sensitivity=0.0)

    def test_no_aggregates_rejected(self):
        with pytest.raises(SchemaError, match="at least one aggregate"):
            LogicalQuery(join=as_logical(query_of(COUNT)).join, aggregates=())

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            query_of(AggregateSpec.count(alias="x"), AggregateSpec.count(alias="x"))

    def test_foreign_aggregate_table_rejected(self):
        with pytest.raises(SchemaError, match="neither side"):
            query_of(AggregateSpec.sum_of("users", "x"))

    def test_foreign_group_table_rejected(self):
        with pytest.raises(SchemaError, match="neither side"):
            query_of(COUNT, group_by=GroupBySpec("users", "x", (1, 2)))

    def test_foreign_predicate_table_rejected(self):
        with pytest.raises(SchemaError, match="neither side"):
            query_of(COUNT, predicate=ColumnEquals("users", "x", 1))

    def test_empty_group_domain_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            GroupBySpec("orders", "key", ())

    def test_duplicate_group_domain_rejected(self):
        with pytest.raises(SchemaError, match="distinct"):
            GroupBySpec("orders", "key", (1, 1))

    def test_oversized_group_domain_rejected(self):
        with pytest.raises(SchemaError, match="maximum"):
            GroupBySpec("orders", "key", tuple(range(4097)))

    def test_empty_predicate_range_rejected(self):
        with pytest.raises(SchemaError, match="empty range"):
            ColumnRange("orders", "ots", 5, 4)

    def test_predicate_values_outside_ring_rejected(self):
        with pytest.raises(SchemaError, match="ring"):
            ColumnEquals("orders", "key", -1)
        with pytest.raises(SchemaError, match="ring"):
            ColumnRange("orders", "ots", 0, 2**32)

    def test_group_domain_outside_ring_rejected(self):
        with pytest.raises(SchemaError, match="ring"):
            GroupBySpec("orders", "key", (-1, 2))

    def test_query_is_hashable_plan_cache_key(self):
        q = query_of(
            COUNT,
            SUM_STS,
            group_by=GroupBySpec("orders", "key", (1, 2)),
            predicate=ColumnEquals("orders", "key", 1),
        )
        assert hash(q.structure_key()) == hash(q)
        assert q == query_of(
            COUNT,
            SUM_STS,
            group_by=GroupBySpec("orders", "key", (1, 2)),
            predicate=ColumnEquals("orders", "key", 1),
        )


class TestShims:
    def test_count_shim_normalizes_to_count_aggregate(self):
        shim = LogicalJoinCountQuery.for_view(make_view())
        lq = shim.to_logical()
        assert [a.kind for a in lq.aggregates] == ["count"]
        assert lq.join.probe_table == "orders"

    def test_sum_shim_normalizes_to_sum_aggregate(self):
        shim = LogicalJoinSumQuery.for_view(make_view(), "shipments", "sts")
        lq = shim.to_logical()
        assert [a.kind for a in lq.aggregates] == ["sum"]
        assert lq.aggregates[0].column == "sts"

    def test_bare_join_query_treated_as_count(self):
        shim = LogicalJoinCountQuery.for_view(make_view())
        bare = LogicalJoinQuery(
            **{
                f: getattr(shim, f)
                for f in (
                    "probe_table",
                    "driver_table",
                    "probe_key",
                    "driver_key",
                    "probe_ts",
                    "driver_ts",
                    "window_lo",
                    "window_hi",
                )
            }
        )
        assert as_logical(bare).aggregates[0].kind == "count"

    def test_as_logical_is_identity_on_unified_queries(self):
        q = query_of(COUNT)
        assert as_logical(q) is q


class TestLowering:
    def test_plan_resolves_prefixed_columns(self):
        plan = lower_to_view_scan(
            query_of(
                COUNT,
                SUM_STS,
                AVG_STS,
                AggregateSpec.sum_of("orders", "ots"),
                group_by=GroupBySpec("orders", "key", (1, 2, 3)),
                predicate=And(
                    (
                        ColumnEquals("orders", "key", 3),
                        ColumnRange("shipments", "sts", 0, 9),
                    )
                ),
            ),
            make_view(),
        )
        assert isinstance(plan, ViewScanPlan)
        assert [a.column for a in plan.aggregates] == [
            None,
            "d_sts",
            "d_sts",
            "p_ots",
        ]
        # SUM and AVG over shipments.sts share one accumulator slot.
        assert plan.sum_view_columns == ("d_sts", "p_ots")
        assert plan.group_column == "p_key"
        assert plan.group_domain == (1, 2, 3)
        assert [(c.column, c.lo, c.hi) for c in plan.clauses] == [
            ("p_key", 3, 3),
            ("d_sts", 0, 9),
        ]
        assert plan.predicate_words == 2

    def test_mismatched_join_rejected(self):
        with pytest.raises(SchemaError, match="does not materialize"):
            lower_to_view_scan(
                LogicalQuery.for_view(make_view(window_hi=9), COUNT), make_view()
            )

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            lower_to_view_scan(
                query_of(AggregateSpec.sum_of("orders", "ghost")), make_view()
            )


class TestSingleScanExecution:
    def test_multi_aggregate_matches_shim_answers_and_ground_truth(self, database):
        multi = database.query(query_of(COUNT, SUM_STS, AVG_STS), time=4)
        assert multi.plan.kind == VIEW_SCAN
        assert multi.answers.columns == (
            "count",
            "sum_shipments_sts",
            "avg_shipments_sts",
        )
        assert multi.answers.rows == ((4, 12, 3.0),)
        # The deprecated per-class shims return byte-identical cells.
        old_count = database.query(LogicalJoinCountQuery.for_view(make_view()), 4)
        old_sum = database.query(
            LogicalJoinSumQuery.for_view(make_view(), "shipments", "sts"), 4
        )
        assert multi.answers.rows[0][0] == old_count.answer == 4
        assert multi.answers.rows[0][1] == old_sum.answer == 12
        # EP view is exact, so the served answers equal the ground truth.
        assert multi.logical_answers.rows == multi.answers.rows

    def test_three_aggregates_cost_one_scan_not_three(self, database):
        multi = database.query(query_of(COUNT, SUM_STS, AVG_STS), time=4)
        singles = [
            database.query(query_of(agg), time=4).observation.qet_seconds
            for agg in (COUNT, SUM_STS, AVG_STS)
        ]
        ratio = sum(singles) / multi.observation.qet_seconds
        assert ratio >= 1.5

    def test_group_by_over_public_domain(self, database):
        result = database.query(
            query_of(
                COUNT,
                SUM_STS,
                AVG_STS,
                group_by=GroupBySpec("orders", "key", (1, 2, 3)),
            ),
            time=4,
        )
        assert result.answers.group_keys == (1, 2, 3)
        assert result.answers.rows == ((1, 2, 2.0), (1, 3, 3.0), (2, 7, 3.5))
        assert result.logical_answers.rows == result.answers.rows

    def test_group_outside_domain_is_excluded(self, database):
        result = database.query(
            query_of(COUNT, group_by=GroupBySpec("orders", "key", (1, 9))),
            time=4,
        )
        # key 9 never joins; keys 2 and 3 fall outside the domain.
        assert result.answers.rows == ((1,), (0,))

    def test_structural_predicate_filters_obliviously(self, database):
        result = database.query(
            query_of(COUNT, predicate=ColumnEquals("orders", "key", 3)), time=4
        )
        assert result.answers.rows == ((2,),)
        ranged = database.query(
            query_of(COUNT, predicate=ColumnRange("shipments", "sts", 3, 4)),
            time=4,
        )
        assert ranged.answers.rows == ((3,),)

    def test_nm_clauses_are_not_evaluated_for_free(self, database):
        """Residual predicates cost gates on the NM path too: the same
        query with clauses must charge strictly more than without, on
        both the live execution and the planner's estimate."""
        from repro.mpc.cost_model import DEFAULT_COST_MODEL
        from repro.query.planner import nm_join_gates

        unmatched = LogicalQuery.for_view(make_view(window_hi=3), COUNT)
        filtered = LogicalQuery.for_view(
            make_view(window_hi=3),
            COUNT,
            predicate=ColumnEquals("orders", "key", 3),
        )
        plain = database.query(unmatched, time=4)
        clause = database.query(filtered, time=4)
        assert plain.plan.kind == clause.plan.kind == NM_JOIN
        assert clause.observation.qet_seconds > plain.observation.qet_seconds
        base = nm_join_gates(DEFAULT_COST_MODEL, 100, 100, 2, 2)
        with_clauses = nm_join_gates(
            DEFAULT_COST_MODEL, 100, 100, 2, 2, n_clauses=2
        )
        assert with_clauses > base

    def test_nm_fallback_answers_identically(self, database):
        """An unmatched window forces NM; pre-noise cells must equal the
        plaintext ground truth (the NM join is exact)."""
        unmatched = LogicalQuery.for_view(
            make_view(window_hi=3),
            COUNT,
            SUM_STS,
            AVG_STS,
            group_by=GroupBySpec("orders", "key", (1, 2, 3)),
        )
        result = database.query(unmatched, time=4)
        assert result.plan.kind == NM_JOIN
        assert result.answers.rows == result.logical_answers.rows

    def test_avg_of_empty_group_is_zero(self, database):
        result = database.query(
            query_of(AVG_STS, group_by=GroupBySpec("orders", "key", (42,))),
            time=4,
        )
        assert result.answers.rows == ((0.0,),)


class TestPlanCache:
    def test_structurally_identical_queries_hit_the_cache(self, database):
        planner = database.planner
        q = query_of(COUNT, SUM_STS)
        # Two warm-up queries: the first is cold; the second replans once
        # because its execution warmed the accumulator cache (cold → warm
        # repricing changes the plan's validity tuple).  From then on the
        # state is steady and repeats hit.
        database.query(q, time=4)
        database.query(q, time=4)
        before = planner.cache_info()
        database.query(query_of(COUNT, SUM_STS), time=4)
        after = planner.cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_different_predicates_plan_separately(self, database):
        planner = database.planner
        database.query(query_of(COUNT, predicate=ColumnEquals("orders", "key", 1)), 4)
        misses = planner.cache_info()["misses"]
        database.query(query_of(COUNT, predicate=ColumnEquals("orders", "key", 2)), 4)
        assert planner.cache_info()["misses"] == misses + 1

    def test_uploads_invalidate_cached_plans(self, database):
        database.query(query_of(COUNT), time=4)
        probe = RecordBatch(
            PROBE_SCHEMA, np.asarray([[5, 5]], dtype=np.uint32)
        ).padded_to(4)
        driver = RecordBatch(
            DRIVER_SCHEMA, np.asarray([[5, 5]], dtype=np.uint32)
        ).padded_to(3)
        database.upload(5, {"orders": probe, "shipments": driver})
        database.step(5)
        misses = database.planner.cache_info()["misses"]
        database.query(query_of(COUNT), time=5)
        info = database.planner.cache_info()
        assert info["misses"] == misses + 1  # replanned at the new sizes

    def test_shim_and_unified_forms_share_one_cache_entry(self, database):
        # Warm up past the cold → warm accumulator repricing miss (see
        # test_structurally_identical_queries_hit_the_cache), then the
        # shim and unified forms must share one steady-state entry.
        database.query(LogicalJoinCountQuery.for_view(make_view()), 4)
        database.query(LogicalJoinCountQuery.for_view(make_view()), 4)
        hits = database.planner.cache_info()["hits"]
        database.query(query_of(COUNT), time=4)
        assert database.planner.cache_info()["hits"] == hits + 1


class TestNoisyRelease:
    def test_epsilon_splits_across_aggregates_and_composes(self, database):
        eps = 0.9
        result = database.query(
            query_of(COUNT, AggregateSpec.sum_of("shipments", "sts", sensitivity=9.0)),
            time=4,
            epsilon=eps,
        )
        assert result.epsilon_spent == eps
        events = [
            e for e in database.accountant.events if str(e.name).startswith("query:")
        ]
        assert len(events) == 2
        assert sum(e.epsilon for e in events) == pytest.approx(eps)
        # Sensitivity-weighted split: the wide SUM takes the larger slice.
        by_name = {e.name: e.epsilon for e in events}
        assert by_name["query:sum_shipments_sts"] > by_name["query:count"]
        assert database.query_epsilon() == pytest.approx(eps)
        assert database.realized_epsilon() >= eps

    def test_noise_is_seeded_and_deterministic(self):
        a = build_database(seed=7).query(query_of(COUNT), 4, epsilon=0.5)
        b = build_database(seed=7).query(query_of(COUNT), 4, epsilon=0.5)
        assert a.answers.rows == b.answers.rows
        assert a.answers.rows[0][0] != 4  # it really is noised

    def test_pre_noise_queries_spend_nothing(self, database):
        database.query(query_of(COUNT, SUM_STS, AVG_STS), time=4)
        assert database.query_epsilon() == 0.0

    def test_avg_derived_from_noisy_sum_and_count_spends_nothing(self, database):
        """AVG alongside COUNT and SUM(x) is free post-processing: the
        budget splits over COUNT and SUM only, and the released AVG cell
        is exactly the ratio of the released (noisy) SUM and COUNT."""
        result = database.query(
            query_of(COUNT, SUM_STS, AVG_STS), time=4, epsilon=0.8
        )
        events = [
            e for e in database.accountant.events if str(e.name).startswith("query:")
        ]
        assert sorted(e.name for e in events) == [
            "query:count",
            "query:sum_shipments_sts",
        ]
        assert sum(e.epsilon for e in events) == pytest.approx(0.8)
        count_cell, sum_cell, avg_cell = result.answers.rows[0]
        expected = sum_cell / count_cell if count_cell > 0 else 0.0
        assert avg_cell == pytest.approx(expected)
        # And with a generous budget the noisy count stays positive, so
        # the ratio rule is observable directly.
        generous = build_database(seed=23)
        res = generous.query(query_of(COUNT, SUM_STS, AVG_STS), 4, epsilon=50.0)
        c, s, a = res.answers.rows[0]
        assert c > 0
        assert a == pytest.approx(s / c)

    def test_standalone_avg_is_released_at_its_own_slice(self, database):
        database.query(query_of(AVG_STS), time=4, epsilon=0.4)
        events = [
            e for e in database.accountant.events if str(e.name).startswith("query:")
        ]
        assert [e.name for e in events] == ["query:avg_shipments_sts"]
        assert events[0].epsilon == pytest.approx(0.4)

    def test_grouped_release_spends_once_but_charges_every_cell(self):
        """The whole slice is recorded regardless of grouping (cells
        compose sequentially inside it), and the per-cell noise grows
        with the domain: grouped cells are strictly noisier than the
        ungrouped release of the same aggregate at the same ε."""
        grouped_db = build_database(seed=11)
        flat_db = build_database(seed=11)
        grouped = grouped_db.query(
            query_of(COUNT, group_by=GroupBySpec("orders", "key", (1, 2, 3))),
            time=4,
            epsilon=0.5,
        )
        flat = flat_db.query(query_of(COUNT), time=4, epsilon=0.5)
        assert grouped_db.query_epsilon() == flat_db.query_epsilon() == 0.5
        # Same seed, same stream: first Laplace draw differs only by the
        # 3x scale of the grouped release.
        flat_noise = flat.answers.rows[0][0] - flat.logical_answers.rows[0][0]
        grouped_noise = (
            grouped.answers.rows[0][0] - grouped.logical_answers.rows[0][0]
        )
        assert grouped_noise == pytest.approx(3 * flat_noise)
