"""Tests for the query layer: AST predicates, rewriting, execution."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.rng import spawn
from repro.common.types import Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import (
    LogicalJoinCountQuery,
    ViewCountQuery,
    column_equals,
    column_in_range,
)
from repro.query.executor import execute_view_count
from repro.query.rewrite import can_answer, rewrite
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView


def make_logical_query(**overrides):
    base = dict(
        probe_table="orders",
        driver_table="shipments",
        probe_key="key",
        driver_key="key",
        probe_ts="ots",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
    )
    base.update(overrides)
    return LogicalJoinCountQuery(**base)


class TestPredicates:
    SCHEMA = Schema(("a", "b"))
    ROWS = np.asarray([[1, 10], [2, 20], [1, 30]], dtype=np.uint32)

    def test_column_equals(self):
        pred = column_equals(self.SCHEMA, "a", 1)
        assert pred(self.ROWS).tolist() == [True, False, True]

    def test_column_in_range(self):
        pred = column_in_range(self.SCHEMA, "b", 15, 30)
        assert pred(self.ROWS).tolist() == [False, True, True]

    def test_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            column_in_range(self.SCHEMA, "b", 5, 4)

    def test_empty_rows(self):
        pred = column_equals(self.SCHEMA, "a", 1)
        assert len(pred(np.zeros((0, 2), dtype=np.uint32))) == 0


class TestRewrite:
    def test_matching_query_rewrites(self, tiny_view_def):
        query = make_logical_query()
        assert can_answer(query, tiny_view_def)
        view_query = rewrite(query, tiny_view_def)
        assert view_query.view_name == tiny_view_def.name

    def test_mismatched_window_rejected(self, tiny_view_def):
        query = make_logical_query(window_hi=5)
        assert not can_answer(query, tiny_view_def)
        with pytest.raises(SchemaError, match="does not materialize"):
            rewrite(query, tiny_view_def)

    def test_mismatched_tables_rejected(self, tiny_view_def):
        query = make_logical_query(probe_table="users")
        with pytest.raises(SchemaError):
            rewrite(query, tiny_view_def)


class TestExecutor:
    def _view_with(self, schema, rows, flags):
        view = MaterializedView(schema)
        view.append(
            SharedTable.from_plain(
                schema,
                np.asarray(rows, dtype=np.uint32),
                np.asarray(flags, dtype=np.uint32),
                spawn(0, "exec"),
            )
        )
        return view

    def test_counts_real_rows(self, tiny_view_def):
        schema = tiny_view_def.view_schema
        view = self._view_with(
            schema,
            [[1, 1, 1, 2], [0, 0, 0, 0], [2, 1, 2, 3]],
            [1, 0, 1],
        )
        runtime = MPCRuntime(seed=0)
        count, qet = execute_view_count(runtime, 1, view, ViewCountQuery("v"))
        assert count == 2
        assert qet > 0

    def test_residual_predicate_applies(self, tiny_view_def):
        schema = tiny_view_def.view_schema
        view = self._view_with(
            schema,
            [[1, 1, 1, 2], [2, 1, 2, 3]],
            [1, 1],
        )
        runtime = MPCRuntime(seed=0)
        query = ViewCountQuery("v", predicate=column_equals(schema, "p_key", 2))
        count, _ = execute_view_count(runtime, 1, view, query)
        assert count == 1

    def test_empty_view_counts_zero_in_zero_time(self, tiny_view_def):
        view = MaterializedView(tiny_view_def.view_schema)
        runtime = MPCRuntime(seed=0)
        count, qet = execute_view_count(runtime, 1, view, ViewCountQuery("v"))
        assert count == 0
        assert qet == 0.0
