"""Tests for the IncShrink engine (the full Figure-1 workflow)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import RecordBatch
from repro.core.engine import EngineConfig, IncShrinkEngine


def upload_steps(engine, view_def, steps):
    """Feed scripted (probe_rows, driver_rows) pairs; query each step."""
    observations = []
    for t, (probe_rows, driver_rows) in enumerate(steps, start=1):
        probe = RecordBatch(
            view_def.probe_schema,
            np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2),
        ).padded_to(4)
        driver = RecordBatch(
            view_def.driver_schema,
            np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2),
        ).padded_to(3)
        engine.upload(t, probe, driver)
        engine.process_step(t)
        observations.append(engine.query_count(t))
    return observations


SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
]
# Logical qualifying pairs (window 2): (1,1)x(1,2)@t1, (2,1)x(2,3)@t2,
# (3,2)x(3,3)@t2, (3,2)x(3,4)@t3 → logical counts per step: 1, 3, 4, 4.


class TestEngineConfigValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            EngineConfig(mode="quantum")

    @pytest.mark.parametrize("epsilon", [0.0, -1.5])
    def test_nonpositive_epsilon_rejected(self, epsilon):
        with pytest.raises(ConfigurationError, match="epsilon"):
            EngineConfig(epsilon=epsilon)

    @pytest.mark.parametrize("interval", [0, -3])
    def test_timer_interval_below_one_rejected(self, interval):
        with pytest.raises(ConfigurationError, match="timer_interval"):
            EngineConfig(timer_interval=interval)

    @pytest.mark.parametrize("threshold", [0.0, -30.0])
    def test_nonpositive_ant_threshold_rejected(self, threshold):
        with pytest.raises(ConfigurationError, match="ant_threshold"):
            EngineConfig(ant_threshold=threshold)

    @pytest.mark.parametrize("interval", [0, -2000])
    def test_nonpositive_flush_interval_rejected(self, interval):
        with pytest.raises(ConfigurationError, match="flush_interval"):
            EngineConfig(flush_interval=interval)

    @pytest.mark.parametrize("size", [0, -15])
    def test_nonpositive_flush_size_rejected(self, size):
        with pytest.raises(ConfigurationError, match="flush_size"):
            EngineConfig(flush_size=size)

    def test_unknown_join_impl_rejected(self):
        with pytest.raises(ConfigurationError, match="join_impl"):
            EngineConfig(join_impl="hash")

    def test_paper_defaults_are_valid(self):
        assert EngineConfig().mode == "dp-timer"


class TestEngineModes:

    def test_ep_mode_is_exact_without_truncation(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="ep"))
        obs = upload_steps(engine, tiny_view_def, SCRIPT)
        assert [o.logical_answer for o in obs] == [1, 3, 4, 4]
        assert all(o.l1 == 0 for o in obs)

    def test_nm_mode_is_exact(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="nm"))
        obs = upload_steps(engine, tiny_view_def, SCRIPT)
        assert all(o.l1 == 0 for o in obs)
        # NM has no view at all.
        assert len(engine.view) == 0

    def test_otm_mode_answers_zero(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="otm"))
        obs = upload_steps(engine, tiny_view_def, SCRIPT)
        assert all(o.view_answer == 0 for o in obs)
        assert obs[-1].relative == 1.0

    def test_dp_timer_converges_with_high_epsilon(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=1000.0, timer_interval=1),
        )
        obs = upload_steps(engine, tiny_view_def, SCRIPT)
        # With negligible noise and per-step sync, answers track truth.
        assert obs[-1].l1 <= 1

    def test_dp_ant_mode_runs(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-ant", epsilon=100.0, ant_threshold=1.0),
        )
        obs = upload_steps(engine, tiny_view_def, SCRIPT)
        assert obs[-1].l1 <= 2

    def test_nm_slower_than_view_modes(self, tiny_view_def):
        qets = {}
        for mode in ("nm", "ep"):
            engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode=mode))
            obs = upload_steps(engine, tiny_view_def, SCRIPT)
            qets[mode] = obs[-1].qet_seconds
        assert qets["nm"] > qets["ep"]


class TestEngineAccounting:
    def test_realized_epsilon_bounded_by_config(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=2.0, timer_interval=2),
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        assert engine.realized_epsilon() <= 2.0 + 1e-9
        assert engine.realized_epsilon() > 0

    @pytest.mark.parametrize(
        "config",
        [
            EngineConfig(mode="dp-timer", epsilon=2.0, timer_interval=2),
            EngineConfig(mode="dp-ant", epsilon=2.0, ant_threshold=2.0),
        ],
    )
    def test_realized_epsilon_positive_and_bounded_per_dp_mode(
        self, tiny_view_def, config
    ):
        engine = IncShrinkEngine(tiny_view_def, config)
        upload_steps(engine, tiny_view_def, SCRIPT)
        assert 0 < engine.realized_epsilon() <= config.epsilon + 1e-9

    @pytest.mark.parametrize("mode", ["ep", "otm", "nm"])
    def test_realized_epsilon_zero_for_baselines(self, tiny_view_def, mode):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode=mode))
        upload_steps(engine, tiny_view_def, SCRIPT)
        assert engine.realized_epsilon() == 0.0

    def test_facade_epsilon_matches_database_composition(self, tiny_view_def):
        """The single-view façade's ε is the database-level composed ε —
        one DP view gets the whole budget, so they coincide."""
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=2.0, timer_interval=2),
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        assert engine.database.epsilon_allocation() == {
            tiny_view_def.name: pytest.approx(2.0)
        }
        assert engine.database.realized_epsilon() == pytest.approx(
            engine.realized_epsilon()
        )

    def test_metrics_populated(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def, EngineConfig(mode="dp-timer", timer_interval=2)
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        summary = engine.metrics.summary()
        assert summary.query_count == len(SCRIPT)
        assert len(engine.metrics.transform_seconds) == len(SCRIPT)
        assert len(engine.metrics.view_size_rows) == len(SCRIPT)

    def test_logical_mirror_matches_uploads(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="otm"))
        upload_steps(engine, tiny_view_def, SCRIPT)
        probe = engine.logical.instance_at(tiny_view_def.probe_table, 4)
        assert len(probe) == 4  # only real rows mirrored, not padding

    def test_stores_receive_padded_batches(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="otm"))
        upload_steps(engine, tiny_view_def, SCRIPT)
        assert engine.probe_store.total_rows == 4 * 4  # 4 steps × capacity 4
        assert engine.driver_store.total_rows == 4 * 3


class TestEngineSumQueries:
    """The logical SUM path reaches the view layer through the façade."""

    def test_ep_sum_is_exact(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="ep"))
        upload_steps(engine, tiny_view_def, SCRIPT)
        obs = engine.query_sum(4, "shipments", "sts")
        # Qualifying pairs at t=4 carry driver ts 2, 3, 3, 4 → sum 12.
        assert obs.logical_answer == 12
        assert obs.l1 == 0

    def test_nm_sum_is_exact(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="nm"))
        upload_steps(engine, tiny_view_def, SCRIPT)
        obs = engine.query_sum(4, "orders", "ots")
        assert obs.l1 == 0

    def test_dp_sum_converges_with_high_epsilon(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=1000.0, timer_interval=1),
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        obs = engine.query_sum(4, "shipments", "sts")
        # One deferred pair at most; driver ts values are <= 4.
        assert obs.l1 <= 4

    def test_foreign_sum_table_rejected(self, tiny_view_def):
        from repro.common.errors import SchemaError

        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="ep"))
        upload_steps(engine, tiny_view_def, SCRIPT)
        with pytest.raises(SchemaError, match="neither side"):
            engine.query_sum(4, "users", "x")


class TestEngineTranscriptLeakage:
    def test_true_counter_never_published(self, tiny_view_def):
        """The DP guarantee in practice: nothing in the transcript equals
        the protocol-internal cardinality sequence."""
        engine = IncShrinkEngine(
            tiny_view_def,
            EngineConfig(mode="dp-timer", epsilon=1.5, timer_interval=1),
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        for event in engine.runtime.transcript:
            assert "counter" not in event.payload
            assert "real" not in str(event.payload)

    def test_transform_events_public_sizes_only(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def, EngineConfig(mode="dp-timer", timer_interval=2)
        )
        upload_steps(engine, tiny_view_def, SCRIPT)
        deltas = {
            e.payload["cache_delta"]
            for e in engine.runtime.transcript.of_kind("transform")
        }
        # Driver capacity 3 × ω 2 = 6 on every step, data-independent.
        assert deltas == {6}
