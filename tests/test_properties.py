"""Property-based tests (hypothesis) on cross-cutting system invariants.

Module-local property tests live next to their units; this file holds
the whole-pipeline properties that span several modules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import spawn
from repro.common.types import RecordBatch, Schema
from repro.core.engine import EngineConfig, IncShrinkEngine
from repro.core.view_def import JoinViewDefinition
from repro.mpc.joint_noise import laplace_from_u32
from repro.oblivious.sort import apply_network, network_comparator_count


def small_view_def(omega: int, budget: int) -> JoinViewDefinition:
    return JoinViewDefinition(
        name="prop",
        probe_table="p",
        probe_schema=Schema(("k", "ts")),
        probe_key="k",
        probe_ts="ts",
        driver_table="d",
        driver_schema=Schema(("k", "ts")),
        driver_key="k",
        driver_ts="ts",
        window_lo=0,
        window_hi=3,
        omega=omega,
        budget=budget,
    )


steps_strategy = st.lists(
    st.tuples(
        st.lists(st.tuples(st.integers(1, 4), st.integers(0, 0)), max_size=3),
        st.lists(st.tuples(st.integers(1, 4), st.integers(0, 0)), max_size=2),
    ),
    min_size=1,
    max_size=6,
)


class TestEndToEndProperties:
    @given(steps_strategy, st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_ep_view_real_content_equals_window_joins(self, script, omega):
        """For any upload script, EP's view holds exactly the logical
        joins that fall inside the contribution window (here the window
        covers the whole horizon, so EP must be exact)."""
        vd = small_view_def(omega=omega, budget=omega * 10)
        engine = IncShrinkEngine(vd, EngineConfig(mode="ep"))
        for t, (probe_rows, driver_rows) in enumerate(script, start=1):
            probe_rows = [[k, t] for k, _ in probe_rows]
            driver_rows = [[k, t] for k, _ in driver_rows]
            probe = RecordBatch(
                vd.probe_schema,
                np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2),
            ).padded_to(4)
            driver = RecordBatch(
                vd.driver_schema,
                np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2),
            ).padded_to(3)
            engine.upload(t, probe, driver)
            engine.process_step(t)
        horizon = len(script)
        logical = vd.logical_join_count(
            engine.logical.instance_at("p", horizon),
            engine.logical.instance_at("d", horizon),
        )
        # ω can truncate when a key repeats more than ω times per step —
        # filter to the cases where truncation cannot bite.
        obs = engine.query_count(horizon)
        if engine.metrics.summary().query_count and logical <= omega:
            assert obs.l1 == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_joint_noise_mapping_total(self, z):
        """Every 32-bit word maps to a finite Laplace draw."""
        draw = laplace_from_u32(np.uint32(z), 1.0)
        assert np.isfinite(draw)
        assert abs(draw) < 32 * np.log(2) + 1  # -ln(2^-31) bound

    @given(st.integers(1, 512))
    @settings(max_examples=50, deadline=None)
    def test_sort_network_size_monotone(self, n):
        """More inputs never need fewer comparators."""
        assert network_comparator_count(n + 1) >= network_comparator_count(n)

    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_sort_is_idempotent(self, values):
        keys = np.asarray(values, dtype=np.uint64)
        once, _ = apply_network(keys)
        twice, _ = apply_network(once)
        assert (once == twice).all()


class TestPaddingProperties:
    @given(
        st.integers(0, 6),
        st.integers(6, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_padded_batch_hides_real_count(self, n_real, capacity):
        """Two batches with different real counts but equal capacity are
        indistinguishable by public shape."""
        schema = Schema(("k", "ts"))
        rows_a = np.asarray([[i + 1, 1] for i in range(n_real)], dtype=np.uint32)
        rows_b = np.asarray([[9, 1]], dtype=np.uint32)
        a = RecordBatch(schema, rows_a.reshape(-1, 2)).padded_to(capacity)
        b = RecordBatch(schema, rows_b).padded_to(capacity)
        assert len(a) == len(b) == capacity

    @given(st.integers(1, 4), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_window_invocations_formula(self, omega, multiple):
        budget = omega * multiple
        vd = small_view_def(omega=omega, budget=budget)
        assert vd.window_invocations == multiple
