"""Tests for privacy accounting, bounds, and budget allocation."""

import math

import pytest

from repro.common.errors import ConfigurationError, PrivacyBudgetError
from repro.dp.accountant import (
    PrivacyAccountant,
    event_to_user_epsilon,
    sequential_system_epsilon,
    stability_composed_epsilon,
    theorem3_epsilon,
)
from repro.dp.allocation import (
    OperatorSpec,
    allocate_budget,
    expected_dummy_volume,
    query_efficiency,
)
from repro.dp.bounds import (
    recommended_flush_size,
    theorem4_deferred_bound,
    theorem4_min_updates,
    theorem5_dummy_bound,
    theorem6_deferred_bound,
    theorem6_dummy_bound,
    theorem17_ant_error_bound,
    theorem17_timer_error_bound,
)


class TestAccountant:
    def test_sequential_sums_everything(self):
        acc = PrivacyAccountant()
        acc.spend("a", 0.5, segment=1)
        acc.spend("b", 0.25, segment=2)
        assert acc.sequential_epsilon() == pytest.approx(0.75)

    def test_parallel_takes_worst_segment(self):
        acc = PrivacyAccountant()
        acc.spend("a", 0.5, segment="w1")
        acc.spend("b", 0.3, segment="w2")
        acc.spend("c", 0.4, segment="w2")
        assert acc.parallel_epsilon() == pytest.approx(0.7)

    def test_empty_accountant(self):
        assert PrivacyAccountant().parallel_epsilon() == 0.0

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyAccountant().spend("a", 0.0, segment=1)


class TestStabilityAndTheorem3:
    def test_lemma2_multiplies(self):
        assert stability_composed_epsilon(10, 0.15) == pytest.approx(1.5)

    def test_negative_stability_rejected(self):
        with pytest.raises(PrivacyBudgetError):
            stability_composed_epsilon(-1, 1.0)

    def test_theorem3_worst_record(self):
        contributions = {
            "u1": [(1.0, 0.1), (1.0, 0.1)],
            "u2": [(2.0, 0.1)] * 5,  # worst: 5 × 0.2 = 1.0
        }
        assert theorem3_epsilon(contributions) == pytest.approx(1.0)

    def test_theorem3_empty(self):
        assert theorem3_epsilon({}) == 0.0

    def test_incshrink_instantiation_recovers_configured_epsilon(self):
        """A record in b/ω windows, ω-stable each, ε/b per release → ε."""
        omega, b, eps = 2, 10, 1.5
        windows = b // omega
        contributions = {"u": [(float(omega), eps / b)] * windows}
        assert theorem3_epsilon(contributions) == pytest.approx(eps)

    def test_group_privacy_conversion(self):
        assert event_to_user_epsilon(0.5, 4) == pytest.approx(2.0)
        with pytest.raises(PrivacyBudgetError):
            event_to_user_epsilon(0.5, 0)

    def test_system_composition(self):
        assert sequential_system_epsilon(0.5, 1.0) == pytest.approx(1.5)
        with pytest.raises(PrivacyBudgetError):
            sequential_system_epsilon(-1.0)


class TestBounds:
    def test_theorem4_scales_inverse_epsilon(self):
        loose = theorem4_deferred_bound(0.1, 10, 25)
        tight = theorem4_deferred_bound(1.0, 10, 25)
        assert loose == pytest.approx(10 * tight)

    def test_theorem4_formula(self):
        assert theorem4_deferred_bound(1.0, 2.0, 16, beta=0.05) == pytest.approx(
            2 * 2.0 * math.sqrt(16 * math.log(20))
        )

    def test_theorem4_min_updates(self):
        assert theorem4_min_updates(0.05) == math.ceil(4 * math.log(20))

    def test_theorem5_adds_flush_slop(self):
        base = theorem5_dummy_bound(1.0, 2.0, 16, T=10, flush_interval=100, flush_size=0)
        with_flush = theorem5_dummy_bound(
            1.0, 2.0, 16, T=10, flush_interval=100, flush_size=5
        )
        assert with_flush == pytest.approx(base + 5 * 16 * 10 / 100)

    def test_theorem6_grows_logarithmically(self):
        early = theorem6_deferred_bound(1.0, 2.0, 10)
        late = theorem6_deferred_bound(1.0, 2.0, 10_000)
        assert late > early
        assert late < early * 4  # log growth, not polynomial

    def test_theorem6_dummy_bound_counts_flushes(self):
        without = theorem6_dummy_bound(1.0, 2.0, 100, flush_interval=1000, flush_size=5)
        with_flushes = theorem6_dummy_bound(1.0, 2.0, 100, flush_interval=10, flush_size=5)
        assert with_flushes == pytest.approx(without + 5 * 10)

    def test_theorem17_composition_adds_owner_gap(self):
        base = theorem17_timer_error_bound(1.0, 2.0, 16, sync_alpha=0.0)
        composed = theorem17_timer_error_bound(1.0, 2.0, 16, sync_alpha=3.0)
        assert composed == pytest.approx(base + 6.0)
        ant = theorem17_ant_error_bound(1.0, 2.0, 100, sync_alpha=3.0)
        assert ant > 6.0

    def test_recommended_flush_size_positive_integer(self):
        s = recommended_flush_size(1.5, 10, 12)
        assert isinstance(s, int)
        assert s > 0

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            theorem4_deferred_bound(0.0, 1.0, 5)
        with pytest.raises(ConfigurationError):
            theorem4_deferred_bound(1.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            theorem6_deferred_bound(1.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            theorem5_dummy_bound(1.0, 1.0, 5, 10, flush_interval=0, flush_size=1)


class TestAllocation:
    def _operators(self):
        y = expected_dummy_volume(b=10, updates=16)
        return [
            OperatorSpec("join", "join", (1000, 1000), (y, y), output_size=500),
            OperatorSpec("filter", "filter", (500,), (y,), output_size=100),
        ]

    def test_efficiency_increases_with_epsilon(self):
        op = self._operators()[0]
        assert op.efficiency(2.0) > op.efficiency(0.5)

    def test_efficiency_clamped_at_zero(self):
        y = expected_dummy_volume(b=1000, updates=100)
        op = OperatorSpec("f", "filter", (10,), (y,), output_size=1)
        assert op.efficiency(0.001) == 0.0

    def test_query_efficiency_weights_by_output(self):
        ops = self._operators()
        eff = query_efficiency(ops, (1.0, 1.0))
        assert 0.0 <= eff <= 1.0

    def test_allocation_respects_budget(self):
        ops = self._operators()
        alloc, eff = allocate_budget(ops, total_epsilon=2.0, grid_steps=10)
        assert sum(alloc) == pytest.approx(2.0)
        assert all(a > 0 for a in alloc)

    def test_allocation_beats_worst_grid_point(self):
        ops = self._operators()
        alloc, best = allocate_budget(ops, total_epsilon=2.0, grid_steps=10)
        quantum = 2.0 / 10
        lopsided = (quantum, 2.0 - quantum)
        assert best >= query_efficiency(ops, lopsided) - 1e-12

    def test_single_operator_gets_everything(self):
        ops = self._operators()[:1]
        alloc, _ = allocate_budget(ops, total_epsilon=1.0)
        assert alloc == (1.0,)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            allocate_budget([], 1.0)
        with pytest.raises(ConfigurationError):
            allocate_budget(self._operators(), 0.0)
        with pytest.raises(ConfigurationError):
            expected_dummy_volume(0, 5)
        with pytest.raises(ConfigurationError):
            query_efficiency(self._operators(), (1.0,))
