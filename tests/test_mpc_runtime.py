"""Tests for the simulated 2PC runtime: scoping, costs, transcript."""

import numpy as np
import pytest

from repro.common.errors import ProtocolError, SecurityError
from repro.common.types import Schema
from repro.mpc.cost_model import CostModel
from repro.mpc.runtime import MPCRuntime


class TestProtocolScoping:
    def test_reveal_inside_scope(self, runtime):
        shared = runtime.owner_share_table(
            Schema(("a",)),
            np.asarray([[5]], dtype=np.uint32),
            np.asarray([1], dtype=np.uint32),
        )
        with runtime.protocol("p") as ctx:
            rows, flags = ctx.reveal_table(shared)
        assert rows[0, 0] == 5
        assert flags[0]

    def test_reveal_after_scope_closes_raises(self, runtime):
        with runtime.protocol("p") as ctx:
            pass
        shared = runtime.owner_share_table(
            Schema(("a",)),
            np.asarray([[5]], dtype=np.uint32),
            np.asarray([1], dtype=np.uint32),
        )
        with pytest.raises(SecurityError, match="closed"):
            ctx.reveal_table(shared)

    def test_nested_protocols_rejected(self, runtime):
        with runtime.protocol("outer"):
            with pytest.raises(ProtocolError, match="do not nest"):
                with runtime.protocol("inner"):
                    pass

    def test_scope_reopens_after_exception(self, runtime):
        with pytest.raises(RuntimeError):
            with runtime.protocol("p"):
                raise RuntimeError("boom")
        # The runtime must recover: a new protocol can start.
        with runtime.protocol("q") as ctx:
            assert ctx.name == "q"

    def test_share_array_roundtrips(self, runtime):
        values = np.asarray([1, 2, 3], dtype=np.uint32)
        with runtime.protocol("p") as ctx:
            shared = ctx.share_array(values)
            assert (ctx.reveal(shared) == values).all()

    def test_share_table_roundtrips(self, runtime):
        schema = Schema(("a", "b"))
        rows = np.asarray([[1, 2]], dtype=np.uint32)
        with runtime.protocol("p") as ctx:
            t = ctx.share_table(schema, rows, np.asarray([1], dtype=np.uint32))
            out_rows, out_flags = ctx.reveal_table(t)
        assert (out_rows == rows).all()
        assert out_flags[0]


class TestJointRandomness:
    def test_joint_uniform_changes_between_calls(self, runtime):
        with runtime.protocol("p") as ctx:
            a = ctx.joint_uniform_u32(8)
            b = ctx.joint_uniform_u32(8)
        assert (a != b).any()

    def test_joint_uniform_deterministic_per_seed(self):
        a = MPCRuntime(seed=9)
        b = MPCRuntime(seed=9)
        with a.protocol("p") as ca, b.protocol("p") as cb:
            assert (ca.joint_uniform_u32(4) == cb.joint_uniform_u32(4)).all()

    def test_servers_have_independent_streams(self, runtime):
        z0 = runtime.server0.contribute_u32(16)
        z1 = runtime.server1.contribute_u32(16)
        assert (z0 != z1).any()


class TestCostAccounting:
    def test_charges_accumulate_and_convert(self):
        model = CostModel(gates_per_second=1000.0)
        runtime = MPCRuntime(seed=0, cost_model=model)
        with runtime.protocol("p") as ctx:
            ctx.charge_gates(500)
            assert ctx.seconds == pytest.approx(0.5)
            ctx.charge_gates(500)
            assert ctx.seconds == pytest.approx(1.0)

    def test_runs_ledger_records_invocations(self, runtime):
        with runtime.protocol("alpha", time=3) as ctx:
            ctx.charge_gates(100)
        with runtime.protocol("beta", time=4) as ctx:
            ctx.charge_gates(200)
        names = [r.name for r in runtime.runs]
        assert names == ["alpha", "beta"]
        assert runtime.runs[0].time == 3
        assert runtime.runs[1].gates == 200

    def test_seconds_of_filters_by_name(self, runtime):
        with runtime.protocol("a") as ctx:
            ctx.charge_gates(runtime.cost_model.gates_per_second)  # 1 second
        with runtime.protocol("b") as ctx:
            ctx.charge_gates(2 * runtime.cost_model.gates_per_second)
        assert runtime.seconds_of("a") == pytest.approx([1.0])
        assert runtime.total_seconds() == pytest.approx(3.0)

    def test_charge_helpers_use_model_formulas(self, runtime):
        model = runtime.cost_model
        with runtime.protocol("p") as ctx:
            ctx.charge_compare_exchanges(3, payload_words=2)
            expected = 3 * model.compare_exchange_gates(2)
            assert ctx.gates == expected
            ctx.charge_scan(10, payload_words=4)
            expected += 10 * model.scan_row_gates(4)
            assert ctx.gates == expected
            ctx.charge_laplace()
            expected += model.laplace_gates
            assert ctx.gates == expected


class TestTranscript:
    def test_publish_records_public_events(self, runtime):
        with runtime.protocol("shrink", time=7) as ctx:
            ctx.publish("view-update", size=12)
        events = runtime.transcript.of_kind("view-update")
        assert len(events) == 1
        assert events[0].time == 7
        assert events[0].protocol == "shrink"
        assert events[0].payload == {"size": 12}

    def test_of_protocol_filter(self, runtime):
        with runtime.protocol("a") as ctx:
            ctx.publish("x")
        with runtime.protocol("b") as ctx:
            ctx.publish("x")
        assert len(runtime.transcript.of_protocol("a")) == 1
        assert len(runtime.transcript) == 2


class TestCostModelFormulas:
    def test_compare_exchange_scales_with_payload(self):
        m = CostModel()
        assert m.compare_exchange_gates(4) > m.compare_exchange_gates(1)

    def test_scan_row_scales_with_predicate(self):
        m = CostModel()
        assert m.scan_row_gates(2, predicate_words=3) > m.scan_row_gates(2, 1)

    def test_seconds_linear_in_gates(self):
        m = CostModel(gates_per_second=2.0)
        assert m.seconds(10) == pytest.approx(5.0)
