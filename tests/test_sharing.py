"""Unit + property tests for XOR secret sharing and shared containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import ProtocolError, SchemaError
from repro.common.rng import spawn
from repro.common.types import Schema
from repro.sharing.fixed_point import decode_fixed, encode_fixed
from repro.sharing.shared_value import SharedArray, SharedTable
from repro.sharing.xor_sharing import (
    recover_array,
    recover_array_k,
    reshare_from_contributions,
    share_array,
    share_array_k,
)

u32_arrays = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(0, 40),
    elements=st.integers(0, 2**32 - 1),
)


class TestXorSharing:
    @given(u32_arrays)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, values):
        s0, s1 = share_array(values, spawn(0, "t"))
        assert (recover_array(s0, s1) == values).all()

    def test_single_share_is_not_the_secret(self):
        values = np.arange(256, dtype=np.uint32)
        s0, s1 = share_array(values, spawn(1, "t"))
        # Uniform masking: a share matching the plaintext everywhere would
        # have probability 2^-8192; any match beyond a handful is a bug.
        assert (s0 == values).sum() < 8
        assert (s1 == values).sum() < 8

    def test_shares_differ_between_calls(self):
        values = np.arange(64, dtype=np.uint32)
        gen = spawn(2, "t")
        a0, _ = share_array(values, gen)
        b0, _ = share_array(values, gen)
        assert (a0 != b0).any()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ProtocolError):
            recover_array(np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32))

    @given(u32_arrays, st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_k_of_k_roundtrip(self, values, k):
        shares = share_array_k(values, k, spawn(3, "t"))
        assert len(shares) == k
        assert (recover_array_k(shares) == values).all()

    def test_k_of_k_partial_shares_uniform(self):
        values = np.full(512, 42, dtype=np.uint32)
        shares = share_array_k(values, 3, spawn(4, "t"))
        # XOR of any strict subset should not reveal the constant secret.
        partial = shares[0] ^ shares[1]
        assert (partial == values).sum() < 8

    def test_k_below_two_rejected(self):
        with pytest.raises(ProtocolError):
            share_array_k(np.zeros(1, dtype=np.uint32), 1, spawn(0, "t"))

    def test_recover_needs_two_shares(self):
        with pytest.raises(ProtocolError):
            recover_array_k([np.zeros(1, dtype=np.uint32)])

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_reshare_from_contributions_recovers(self, value, z0, z1):
        c0, c1 = reshare_from_contributions(value, z0, z1)
        assert int(c0) ^ int(c1) == value

    def test_reshare_share0_independent_of_value(self):
        # c0 = z0 ^ z1 does not involve the secret at all.
        c0a, _ = reshare_from_contributions(1, 10, 20)
        c0b, _ = reshare_from_contributions(999, 10, 20)
        assert int(c0a) == int(c0b)


class TestSharedArray:
    def test_from_plain_roundtrip(self):
        values = np.arange(12, dtype=np.uint32).reshape(3, 4)
        arr = SharedArray.from_plain(values, spawn(0, "t"))
        assert (arr._recover() == values).all()

    def test_concat_and_take(self):
        gen = spawn(1, "t")
        a = SharedArray.from_plain(np.asarray([1, 2], dtype=np.uint32), gen)
        b = SharedArray.from_plain(np.asarray([3], dtype=np.uint32), gen)
        merged = a.concat(b)
        assert len(merged) == 3
        assert (merged._recover() == [1, 2, 3]).all()
        assert (merged.take(slice(1, 3))._recover() == [2, 3]).all()

    def test_byte_size(self):
        arr = SharedArray.empty((5, 3))
        assert arr.byte_size == 5 * 3 * 4

    def test_mismatched_share_shapes_rejected(self):
        with pytest.raises(ProtocolError):
            SharedArray(np.zeros(2, dtype=np.uint32), np.zeros(3, dtype=np.uint32))


class TestSharedTable:
    def test_from_plain_shapes(self):
        schema = Schema(("a", "b"))
        t = SharedTable.from_plain(
            schema,
            np.asarray([[1, 2], [3, 4]], dtype=np.uint32),
            np.asarray([1, 0], dtype=np.uint32),
            spawn(0, "t"),
        )
        assert len(t) == 2
        assert t.byte_size == 2 * 2 * 4 + 2 * 4

    def test_schema_width_mismatch_raises(self):
        schema = Schema(("a",))
        with pytest.raises(SchemaError):
            SharedTable(
                schema,
                SharedArray.empty((2, 3)),
                SharedArray.empty((2,)),
            )

    def test_flag_length_mismatch_raises(self):
        schema = Schema(("a",))
        with pytest.raises(SchemaError):
            SharedTable(schema, SharedArray.empty((2, 1)), SharedArray.empty((3,)))

    def test_concat_requires_same_schema(self):
        t1 = SharedTable.empty(Schema(("a",)))
        t2 = SharedTable.empty(Schema(("b",)))
        with pytest.raises(SchemaError):
            t1.concat(t2)

    def test_concat_all(self):
        schema = Schema(("a",))
        gen = spawn(2, "t")
        tables = [
            SharedTable.from_plain(
                schema,
                np.asarray([[i]], dtype=np.uint32),
                np.asarray([1], dtype=np.uint32),
                gen,
            )
            for i in range(3)
        ]
        merged = SharedTable.concat_all(tables)
        assert len(merged) == 3

    def test_concat_all_empty_raises(self):
        with pytest.raises(SchemaError):
            SharedTable.concat_all([])

    def test_take_slice(self):
        schema = Schema(("a",))
        t = SharedTable.from_plain(
            schema,
            np.asarray([[1], [2], [3]], dtype=np.uint32),
            np.asarray([1, 1, 0], dtype=np.uint32),
            spawn(3, "t"),
        )
        assert len(t.take(slice(0, 2))) == 2


class TestFixedPoint:
    @given(st.floats(min_value=-30000, max_value=30000, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_resolution(self, x):
        # Resolution is 2^-FRACTION_BITS; max rounding error is half that.
        assert decode_fixed(encode_fixed(x)) == pytest.approx(x, abs=0.002)

    def test_out_of_range_raises(self):
        with pytest.raises(ProtocolError):
            encode_fixed(1e9)

    def test_nan_raises(self):
        with pytest.raises(ProtocolError):
            encode_fixed(float("nan"))

    def test_negative_values_supported(self):
        assert decode_fixed(encode_fixed(-1234.5)) == pytest.approx(-1234.5, abs=0.002)

    def test_range_covers_extreme_privacy_noise(self):
        """ε = 0.01 SVT thresholds (Lap scale 4b/ε ≈ 8000) must encode."""
        assert decode_fixed(encode_fixed(80_000.0)) == pytest.approx(80_000.0, abs=0.002)
