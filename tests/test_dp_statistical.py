"""Statistical differential-privacy checks on the release mechanisms.

These tests verify the ε-DP *inequality itself* empirically: run the
mechanism many times on neighbouring inputs, histogram the (discretised)
outputs, and check that no output bin's probability ratio exceeds e^ε
beyond sampling error.  This is the strongest kind of evidence a test
suite can give that the noise calibration (sensitivity, scale, budget
splits) is not silently wrong.
"""

import numpy as np
import pytest

from repro.common.rng import spawn
from repro.dp.laplace import laplace_mechanism
from repro.dp.svt import LocalNoiseSource, NumericAboveNoisyThreshold
from repro.mpc.joint_noise import laplace_from_u32


def empirical_ratio_bound(samples_a, samples_b, bins, min_count=1000):
    """Worst observed probability ratio across histogram bins.

    Bins where either side has fewer than ``min_count`` samples are
    skipped: the max-over-bins statistic is biased upward by exactly the
    bins whose ratio estimate is sampling noise rather than mechanism
    behaviour.
    """
    hist_a, _ = np.histogram(samples_a, bins=bins)
    hist_b, _ = np.histogram(samples_b, bins=bins)
    n = len(samples_a)
    worst = 1.0
    for ca, cb in zip(hist_a, hist_b):
        if min(ca, cb) < min_count:
            continue
        worst = max(worst, (ca / n) / (cb / n), (cb / n) / (ca / n))
    return worst


class TestLaplaceMechanismDP:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_likelihood_ratio_bounded_by_exp_epsilon(self, epsilon):
        gen = spawn(0, "dp-test")
        n = 200_000
        a = np.asarray([laplace_mechanism(gen, 10.0, 1.0, epsilon) for _ in range(n)])
        b = np.asarray([laplace_mechanism(gen, 11.0, 1.0, epsilon) for _ in range(n)])
        bins = np.linspace(0, 21, 43)
        worst = empirical_ratio_bound(a, b, bins)
        # Allow 15% slack for sampling error on top of the exact bound.
        assert worst <= np.exp(epsilon) * 1.15

    def test_wrong_sensitivity_breaks_the_bound(self):
        """Negative control: noise calibrated for sensitivity 1 applied
        to inputs differing by 5 must violate e^ε — if this test ever
        passes, the checker itself is broken."""
        gen = spawn(1, "dp-test")
        epsilon = 1.0
        n = 250_000
        a = np.asarray([laplace_mechanism(gen, 10.0, 1.0, epsilon) for _ in range(n)])
        b = np.asarray([laplace_mechanism(gen, 15.0, 1.0, epsilon) for _ in range(n)])
        bins = np.linspace(0, 25, 51)
        worst = empirical_ratio_bound(a, b, bins)
        assert worst > np.exp(epsilon) * 1.15


class TestJointNoiseMechanismDP:
    def test_joint_sampler_release_satisfies_epsilon(self):
        """The in-MPC release (value + joint-Laplace) obeys the same
        likelihood-ratio bound as the trusted-curator mechanism."""
        gen = spawn(2, "dp-test")
        epsilon = 1.0
        n = 150_000
        zs = gen.integers(0, 2**32, size=2 * n, dtype=np.uint32)
        noise = np.asarray([laplace_from_u32(z, 1.0 / epsilon) for z in zs])
        a = 10.0 + noise[:n]
        b = 11.0 + noise[n:]
        bins = np.linspace(0, 21, 43)
        assert empirical_ratio_bound(a, b, bins) <= np.exp(epsilon) * 1.15


class TestSVTTriggerDP:
    def test_trigger_step_distribution_close_on_neighbours(self):
        """The step at which NANT fires is the mechanism's observable
        output; for neighbouring count streams (one extra record) the
        trigger-time distributions must stay within e^ε."""
        epsilon = 1.0
        trials = 4000

        def trigger_step(extra: int, seed: int) -> int:
            nant = NumericAboveNoisyThreshold(
                epsilon, 1.0, 12.0, LocalNoiseSource(spawn(seed, "svt-dp", extra))
            )
            count = 0.0
            for step in range(1, 40):
                count += 1.0
                if step == 5:
                    count += extra  # the neighbouring stream's extra record
                if nant.observe(count) is not None:
                    return step
            return 40

        a = np.asarray([trigger_step(0, s) for s in range(trials)])
        b = np.asarray([trigger_step(1, s) for s in range(trials)])
        bins = np.arange(0.5, 41.5, 2.0)
        worst = empirical_ratio_bound(a, b, bins, min_count=300)
        assert worst <= np.exp(epsilon) * 1.35  # wider slack: fewer trials
