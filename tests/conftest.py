"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime


@pytest.fixture
def runtime() -> MPCRuntime:
    return MPCRuntime(seed=1234)


@pytest.fixture
def ctx(runtime):
    """An open protocol context (closed automatically at teardown)."""
    with runtime.protocol("test-protocol", time=1) as c:
        yield c


@pytest.fixture
def tiny_view_def() -> JoinViewDefinition:
    """A small join view: orders ⋈ shipments on key within 2 steps."""
    return JoinViewDefinition(
        name="tiny",
        probe_table="orders",
        probe_schema=Schema(("key", "ots")),
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=Schema(("key", "sts")),
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=2,
        omega=2,
        budget=6,
    )


def batch(schema: Schema, rows, capacity: int | None = None) -> RecordBatch:
    """Helper to build (optionally padded) record batches in tests."""
    b = RecordBatch(schema, np.asarray(rows, dtype=np.uint32).reshape(-1, schema.width))
    if capacity is not None:
        b = b.padded_to(capacity)
    return b
