"""Tests for SUM aggregation over materialized views."""

import numpy as np
import pytest

from repro.common.rng import spawn
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.filter import oblivious_sum
from repro.query.ast import ViewSumQuery, column_equals
from repro.query.executor import execute_view_sum
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView


class TestObliviousSum:
    ROWS = np.asarray([[1, 10], [2, 20], [3, 30], [9, 999]], dtype=np.uint32)
    FLAGS = np.asarray([True, True, True, False])

    def test_sums_real_rows_only(self):
        """The dummy row's 999 must not leak into the total."""
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert oblivious_sum(ctx, self.ROWS, self.FLAGS, 1, None, 2) == 60

    def test_predicate_restricts_sum(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            total = oblivious_sum(
                ctx, self.ROWS, self.FLAGS, 1, self.ROWS[:, 0] >= 2, 2
            )
        assert total == 50

    def test_empty_input(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert (
                oblivious_sum(
                    ctx,
                    np.zeros((0, 2), dtype=np.uint32),
                    np.zeros(0, dtype=bool),
                    1,
                    None,
                    2,
                )
                == 0
            )

    def test_sum_costs_more_than_count(self):
        """The 64-bit accumulator makes SUM strictly pricier per row."""
        from repro.oblivious.filter import oblivious_count

        runtime = MPCRuntime(seed=0)
        with runtime.protocol("a") as ctx:
            oblivious_count(ctx, self.ROWS, self.FLAGS, None, 2)
            count_gates = ctx.gates
        with runtime.protocol("b") as ctx:
            oblivious_sum(ctx, self.ROWS, self.FLAGS, 1, None, 2)
            sum_gates = ctx.gates
        assert sum_gates > count_gates

    def test_large_values_do_not_overflow(self):
        rows = np.asarray([[1, 2**31], [2, 2**31]], dtype=np.uint32)
        flags = np.ones(2, dtype=bool)
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert oblivious_sum(ctx, rows, flags, 1, None, 2) == 2**32


class TestExecuteViewSum:
    def _view(self, tiny_view_def, rows, flags):
        view = MaterializedView(tiny_view_def.view_schema)
        view.append(
            SharedTable.from_plain(
                tiny_view_def.view_schema,
                np.asarray(rows, dtype=np.uint32),
                np.asarray(flags, dtype=np.uint32),
                spawn(0, "sum"),
            )
        )
        return view

    def test_sum_over_view_column(self, tiny_view_def):
        view = self._view(
            tiny_view_def,
            [[1, 1, 1, 5], [2, 1, 2, 7], [0, 0, 0, 0]],
            [1, 1, 0],
        )
        runtime = MPCRuntime(seed=0)
        total, qet = execute_view_sum(
            runtime, 1, view, ViewSumQuery("v", column="d_sts")
        )
        assert total == 12
        assert qet > 0

    def test_sum_with_residual_predicate(self, tiny_view_def):
        schema = tiny_view_def.view_schema
        view = self._view(
            tiny_view_def,
            [[1, 1, 1, 5], [2, 1, 2, 7]],
            [1, 1],
        )
        runtime = MPCRuntime(seed=0)
        total, _ = execute_view_sum(
            runtime,
            1,
            view,
            ViewSumQuery("v", column="d_sts", predicate=column_equals(schema, "p_key", 2)),
        )
        assert total == 7

    def test_unknown_column_raises(self, tiny_view_def):
        view = MaterializedView(tiny_view_def.view_schema)
        runtime = MPCRuntime(seed=0)
        from repro.common.errors import SchemaError

        with pytest.raises(SchemaError):
            execute_view_sum(runtime, 1, view, ViewSumQuery("v", column="ghost"))
