"""Tests for the storage layer: growing DB, outsourced tables, cache, view."""

import numpy as np
import pytest

from repro.common.errors import ProtocolError, SchemaError
from repro.common.rng import spawn
from repro.common.types import Schema
from repro.mpc.runtime import MPCRuntime
from repro.sharing.shared_value import SharedTable
from repro.storage.growing_db import GrowingDatabase
from repro.storage.materialized_view import MaterializedView
from repro.storage.outsourced_table import OutsourcedTable
from repro.storage.secure_cache import SecureCache

SCHEMA = Schema(("k", "ts"))


def shared(rows, flags, seed=0):
    return SharedTable.from_plain(
        SCHEMA,
        np.asarray(rows, dtype=np.uint32).reshape(-1, 2),
        np.asarray(flags, dtype=np.uint32),
        spawn(seed, "storage"),
    )


class TestGrowingDatabase:
    def test_instance_at_accumulates(self):
        db = GrowingDatabase()
        db.create_table("t", SCHEMA)
        db.insert(1, "t", np.asarray([[1, 1]], dtype=np.uint32))
        db.insert(3, "t", np.asarray([[2, 3]], dtype=np.uint32))
        assert len(db.instance_at("t", 1)) == 1
        assert len(db.instance_at("t", 2)) == 1
        assert len(db.instance_at("t", 3)) == 2
        assert db.count_at("t", 3) == 2

    def test_empty_instance(self):
        db = GrowingDatabase()
        db.create_table("t", SCHEMA)
        assert db.instance_at("t", 100).shape == (0, 2)

    def test_duplicate_table_rejected(self):
        db = GrowingDatabase()
        db.create_table("t", SCHEMA)
        with pytest.raises(SchemaError):
            db.create_table("t", SCHEMA)

    def test_unknown_table_rejected(self):
        with pytest.raises(SchemaError):
            GrowingDatabase().instance_at("nope", 0)

    def test_time_travel_insert_rejected(self):
        db = GrowingDatabase()
        db.create_table("t", SCHEMA)
        db.insert(5, "t", np.asarray([[1, 5]], dtype=np.uint32))
        with pytest.raises(SchemaError, match="insertion-only"):
            db.insert(4, "t", np.asarray([[1, 4]], dtype=np.uint32))

    def test_wrong_width_rejected(self):
        db = GrowingDatabase()
        db.create_table("t", SCHEMA)
        with pytest.raises(SchemaError):
            db.insert(1, "t", np.zeros((1, 3), dtype=np.uint32))


class TestOutsourcedTable:
    def test_append_and_totals(self):
        table = OutsourcedTable(SCHEMA, "t")
        table.append_batch(shared([[1, 1]], [1]), time=1)
        table.append_batch(shared([[2, 2], [3, 2]], [1, 1]), time=2)
        assert table.total_rows == 3
        assert len(table.full_table()) == 3
        assert table.byte_size > 0

    def test_out_of_order_batch_rejected(self):
        table = OutsourcedTable(SCHEMA, "t")
        table.append_batch(shared([[1, 5]], [1]), time=5)
        with pytest.raises(ProtocolError, match="ordered"):
            table.append_batch(shared([[1, 4]], [1]), time=4)

    def test_schema_mismatch_rejected(self):
        table = OutsourcedTable(Schema(("other",)), "t")
        with pytest.raises(SchemaError):
            table.append_batch(shared([[1, 1]], [1]), time=1)

    def test_active_window_slides_with_budget(self):
        """With b=4 and ω=2, a batch survives exactly 2 invocations."""
        table = OutsourcedTable(SCHEMA, "t")
        b1 = table.append_batch(shared([[1, 1]], [1]), time=1)
        assert table.active_batches(2, 4) == [b1]
        table.charge_invocation([b1], 2, 4)
        assert table.active_batches(2, 4) == [b1]
        table.charge_invocation([b1], 2, 4)
        assert table.active_batches(2, 4) == []

    def test_charging_exhausted_batch_raises(self):
        table = OutsourcedTable(SCHEMA, "t")
        b1 = table.append_batch(shared([[1, 1]], [1]), time=1)
        table.charge_invocation([b1], 2, 2)
        with pytest.raises(ProtocolError, match="exhausted"):
            table.charge_invocation([b1], 2, 2)

    def test_empty_full_table(self):
        table = OutsourcedTable(SCHEMA, "t")
        assert len(table.full_table()) == 0


class TestSecureCache:
    def _cache_with(self, rows, flags):
        cache = SecureCache(SCHEMA)
        cache.append(shared(rows, flags))
        return cache

    def test_sorted_read_fetches_real_first(self):
        cache = self._cache_with(
            [[0, 0], [1, 1], [0, 0], [2, 2]], [0, 1, 0, 1]
        )
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            fetched, fetched_real, remaining_real = cache.sorted_read(ctx, 2)
            rows, flags = ctx.reveal_table(fetched)
        assert fetched_real == 2
        assert remaining_real == 0
        assert flags.all()
        assert {int(r[0]) for r in rows} == {1, 2}

    def test_sorted_read_fifo_among_reals(self):
        cache = self._cache_with([[5, 1], [6, 2]], [1, 1])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            fetched, _, _ = cache.sorted_read(ctx, 1)
            rows, _ = ctx.reveal_table(fetched)
        assert int(rows[0][0]) == 5  # earliest cached entry first

    def test_sorted_read_clamps_to_cache_size(self):
        cache = self._cache_with([[1, 1]], [1])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            fetched, _, _ = cache.sorted_read(ctx, 100)
        assert len(fetched) == 1
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        cache = self._cache_with([[1, 1]], [1])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            with pytest.raises(ProtocolError):
                cache.sorted_read(ctx, -1)

    def test_deferred_reals_stay_in_cache(self):
        cache = self._cache_with([[1, 1], [2, 2], [3, 3]], [1, 1, 1])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            _, fetched_real, remaining_real = cache.sorted_read(ctx, 1)
        assert fetched_real == 1
        assert remaining_real == 2
        assert len(cache) == 2

    def test_discard_rest_empties_cache(self):
        cache = self._cache_with([[1, 1], [2, 2]], [1, 1])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            _, rescued, recycled = cache.sorted_read(ctx, 1, discard_rest=True)
        assert len(cache) == 0
        assert rescued == 1
        assert recycled == 1  # a real tuple was destroyed

    def test_real_count(self):
        cache = self._cache_with([[1, 1], [0, 0]], [1, 0])
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert cache.real_count(ctx) == 1

    def test_append_accumulates(self):
        cache = SecureCache(SCHEMA)
        cache.append(shared([[1, 1]], [1]))
        cache.append(shared([[2, 2]], [0]))
        assert len(cache) == 2
        assert cache.byte_size > 0


class TestMaterializedView:
    def test_append_and_sizes(self):
        view = MaterializedView(SCHEMA)
        view.append(shared([[1, 1], [0, 0]], [1, 0]))
        assert view.row_count == 2
        assert view.update_count == 1
        assert view.byte_size == 2 * 2 * 4 + 2 * 4

    def test_flush_append_not_counted_as_update(self):
        view = MaterializedView(SCHEMA)
        view.append(shared([[1, 1]], [1]), count_as_update=False)
        assert view.update_count == 0

    def test_real_count_inside_protocol(self):
        view = MaterializedView(SCHEMA)
        view.append(shared([[1, 1], [0, 0], [2, 2]], [1, 0, 1]))
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert view.real_count(ctx) == 2
