"""Unit tests for the accuracy/efficiency metrics (Section 4.1)."""

import pytest

from repro.common.metrics import (
    MetricLog,
    QueryObservation,
    improvement,
    l1_error,
    relative_error,
)


class TestErrors:
    def test_l1_is_absolute_difference(self):
        assert l1_error(10, 14) == 4
        assert l1_error(14, 10) == 4

    def test_relative_error_normalises(self):
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_relative_error_zero_truth_exact(self):
        assert relative_error(0, 0) == 0.0

    def test_relative_error_zero_truth_wrong_is_one(self):
        # The OTM convention: answering 0 against nothing is perfect,
        # answering anything against 0 truth is a full relative error.
        assert relative_error(5, 0) == 1.0


class TestQueryObservation:
    def test_derived_metrics(self):
        obs = QueryObservation(time=3, logical_answer=50, view_answer=45, qet_seconds=0.2)
        assert obs.l1 == 5
        assert obs.relative == pytest.approx(0.1)


class TestMetricLog:
    def test_summary_aggregates(self):
        log = MetricLog()
        log.record_query(QueryObservation(1, 10, 10, 0.5))
        log.record_query(QueryObservation(2, 20, 16, 1.5))
        log.transform_seconds.extend([1.0, 3.0])
        log.shrink_seconds.append(2.0)
        log.view_size_rows.extend([10, 30])
        log.view_size_bytes.extend([1_000_000, 3_000_000])
        log.deferred_counts.extend([0, 7])
        s = log.summary()
        assert s.avg_l1_error == pytest.approx(2.0)
        assert s.avg_relative_error == pytest.approx(0.1)
        assert s.avg_qet_seconds == pytest.approx(1.0)
        assert s.total_qet_seconds == pytest.approx(2.0)
        assert s.avg_transform_seconds == pytest.approx(2.0)
        assert s.avg_shrink_seconds == pytest.approx(2.0)
        assert s.total_mpc_seconds == pytest.approx(6.0)
        assert s.avg_view_size_rows == pytest.approx(20.0)
        assert s.avg_view_size_mb == pytest.approx(2.0)
        assert s.max_deferred == 7
        assert s.query_count == 2

    def test_empty_log_summary_is_zeroes(self):
        s = MetricLog().summary()
        assert s.avg_l1_error == 0.0
        assert s.query_count == 0
        assert s.max_deferred == 0


class TestImprovement:
    def test_ratio(self):
        assert improvement(100.0, 2.0) == pytest.approx(50.0)

    def test_zero_candidate_with_positive_baseline(self):
        assert improvement(5.0, 0.0) == float("inf")

    def test_both_zero_is_parity(self):
        assert improvement(0.0, 0.0) == 1.0
