"""Integration tests: whole-system behaviours the paper claims.

These run full (small-scale) simulations and assert the *shape* results
of the evaluation section plus the privacy-relevant invariants:

* candidate ordering on QET (NM ≫ EP ≫ DP ≫ OTM) and L1 (OTM worst);
* exactness of EP and NM;
* the Theorem 4/6 deferred-data bounds hold on simulated runs;
* the realised Theorem-3 ε equals the configured budget;
* the update-pattern transcript is consistent with the DP mechanism's
  output (sizes are noised counts, never true counts).
"""

import numpy as np
import pytest

from repro.dp.bounds import theorem4_deferred_bound, theorem6_deferred_bound
from repro.experiments.harness import RunConfig, run_experiment

N_STEPS = 80


@pytest.fixture(scope="module")
def runs():
    """One small run per mode on TPC-ds, shared across tests."""
    out = {}
    for mode in ("dp-timer", "dp-ant", "ep", "otm"):
        out[mode] = run_experiment(
            RunConfig(dataset="tpcds", mode=mode, n_steps=N_STEPS, seed=7)
        )
    out["nm"] = run_experiment(
        RunConfig(dataset="tpcds", mode="nm", n_steps=N_STEPS, seed=7, query_every=5)
    )
    return out


class TestCandidateOrdering:
    def test_nm_is_slowest(self, runs):
        nm = runs["nm"].summary.avg_qet_seconds
        for mode in ("dp-timer", "dp-ant", "ep", "otm"):
            assert nm > runs[mode].summary.avg_qet_seconds

    def test_ep_slower_than_dp(self, runs):
        ep = runs["ep"].summary.avg_qet_seconds
        assert ep > runs["dp-timer"].summary.avg_qet_seconds
        assert ep > runs["dp-ant"].summary.avg_qet_seconds

    def test_otm_fastest_but_worst_accuracy(self, runs):
        otm = runs["otm"].summary
        assert otm.avg_qet_seconds == 0.0
        # Steps whose logical answer is still 0 score a relative error of
        # 0 even for OTM, so at a short horizon the average sits just
        # below the asymptotic value of 1.
        assert otm.avg_relative_error >= 0.9
        for mode in ("dp-timer", "dp-ant"):
            assert otm.avg_l1_error > runs[mode].summary.avg_l1_error

    def test_ep_and_nm_exact(self, runs):
        assert runs["ep"].summary.avg_l1_error == 0.0
        assert runs["nm"].summary.avg_l1_error == 0.0

    def test_dp_relative_errors_small(self, runs):
        # Early steps have single-digit logical answers, so the averaged
        # relative error at an 80-step horizon is larger than the paper's
        # 5-year-horizon 3-4%; it must still be far below OTM's ~1.
        for mode in ("dp-timer", "dp-ant"):
            assert runs[mode].summary.avg_relative_error < 0.6

    def test_view_sizes_ordered(self, runs):
        ep_size = runs["ep"].summary.avg_view_size_rows
        for mode in ("dp-timer", "dp-ant"):
            assert runs[mode].summary.avg_view_size_rows < ep_size
        assert runs["otm"].summary.avg_view_size_rows == 0.0


class TestPrivacyAccounting:
    def test_realized_epsilon_matches_configuration(self, runs):
        for mode in ("dp-timer", "dp-ant"):
            res = runs[mode]
            assert res.realized_epsilon == pytest.approx(
                res.config.epsilon, rel=1e-6
            )

    def test_accountant_parallel_epsilon_is_per_release(self, runs):
        res = runs["dp-timer"]
        acc = res.engine.accountant
        eps, b = res.config.epsilon, res.engine.view_def.budget
        assert acc.parallel_epsilon() == pytest.approx(eps / b)

    def test_lifetime_emissions_respect_budget(self, runs):
        for mode in ("dp-timer", "dp-ant", "ep"):
            ledger = runs[mode].engine.ledger
            assert ledger.max_lifetime_emissions() <= ledger.budget


class TestErrorBounds:
    def test_theorem4_bound_holds_on_simulation(self):
        """Deferred data after each sDPTimer update stays within the
        Theorem-4 bound at β=0.01 (checked across every update of
        several seeds — a much stricter test than the theorem itself)."""
        violations = 0
        checks = 0
        for seed in range(5):
            res = run_experiment(
                RunConfig(
                    dataset="tpcds", mode="dp-timer", n_steps=60, seed=seed,
                    flush_interval=10_000,  # isolate Shrink behaviour
                )
            )
            b = res.engine.view_def.budget
            eps = res.config.epsilon
            for k, deferred in enumerate(res.log.deferred_counts, start=1):
                checks += 1
                if deferred > theorem4_deferred_bound(eps, b, k, beta=0.01):
                    violations += 1
        assert checks > 0
        assert violations / checks <= 0.05

    def test_theorem6_bound_holds_on_simulation(self):
        violations = 0
        checks = 0
        for seed in range(5):
            res = run_experiment(
                RunConfig(
                    dataset="tpcds", mode="dp-ant", n_steps=60, seed=seed,
                    flush_interval=10_000,
                )
            )
            b = res.engine.view_def.budget
            eps = res.config.epsilon
            t = res.config.n_steps
            bound = theorem6_deferred_bound(eps, b, t, beta=0.01)
            for deferred in res.log.deferred_counts:
                checks += 1
                if deferred > bound:
                    violations += 1
        assert checks > 0
        assert violations / checks <= 0.05


class TestLeakageTranscript:
    def test_view_update_sizes_are_noised_not_true(self, runs):
        """With ε=1.5, released sizes almost never equal the exact count
        of cached reals for every update — equality throughout would mean
        the noise channel is broken."""
        res = runs["dp-timer"]
        sizes = [
            e.payload["size"]
            for e in res.engine.runtime.transcript.of_kind("view-update")
        ]
        assert len(sizes) >= 4
        # true per-window real arrivals ≈ rate × T; noised sizes vary.
        assert len(set(sizes)) > 1

    def test_transform_deltas_constant_public_function(self, runs):
        res = runs["dp-timer"]
        deltas = {
            e.payload["cache_delta"]
            for e in res.engine.runtime.transcript.of_kind("transform")
        }
        assert len(deltas) == 1  # ω × driver capacity, data-independent

    def test_ep_transcript_needs_no_noise(self, runs):
        """EP's update sizes equal the public cache size — fine, because
        the cache size itself is a public function of batch sizes."""
        res = runs["ep"]
        sizes = {
            e.payload["size"]
            for e in res.engine.runtime.transcript.of_kind("view-update")
        }
        assert len(sizes) == 1


class TestViewConsistency:
    def test_view_real_content_is_subset_of_logical_join(self):
        """Every real tuple in the materialized view must be a genuine
        join result — DP adds dummies, never fabricated joins."""
        res = run_experiment(
            RunConfig(dataset="tpcds", mode="dp-timer", n_steps=40, seed=3)
        )
        engine = res.engine
        vd = engine.view_def
        probe = engine.logical.instance_at(vd.probe_table, 40)
        driver = engine.logical.instance_at(vd.driver_table, 40)
        logical = {tuple(map(int, r)) for r in vd.logical_join_rows(probe, driver)}
        with engine.runtime.protocol("audit") as ctx:
            rows, flags = ctx.reveal_table(engine.view.table)
        for row in rows[flags]:
            assert tuple(map(int, row)) in logical

    def test_high_epsilon_small_truncation_error_only(self):
        """At ε→∞ the only residual error is unsynchronised/truncated
        data; with per-step sync both vanish almost entirely."""
        res = run_experiment(
            RunConfig(
                dataset="tpcds", mode="dp-timer", n_steps=40, seed=2,
                epsilon=10_000.0, timer_interval=1,
            )
        )
        assert res.summary.avg_l1_error < 1.0
