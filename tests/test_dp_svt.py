"""Tests for the sparse-vector mechanism (Algorithm 5 / sDPANT core)."""

import numpy as np
import pytest

from repro.common.errors import PrivacyBudgetError
from repro.common.rng import spawn
from repro.dp.svt import LocalNoiseSource, NumericAboveNoisyThreshold, RepeatingNANT


def make_nant(epsilon=1.0, sensitivity=1.0, threshold=10.0, seed=0):
    return NumericAboveNoisyThreshold(
        epsilon, sensitivity, threshold, LocalNoiseSource(spawn(seed, "svt"))
    )


class TestNANT:
    def test_never_triggers_far_below_threshold(self):
        nant = make_nant(epsilon=50.0, threshold=1000.0)
        for c in range(20):
            assert nant.observe(c) is None

    def test_triggers_far_above_threshold(self):
        nant = make_nant(epsilon=50.0, threshold=5.0)
        out = nant.observe(1000.0)
        assert out is not None
        assert out == pytest.approx(1000.0, abs=5.0)

    def test_halts_after_release(self):
        nant = make_nant(epsilon=50.0, threshold=5.0)
        nant.observe(1000.0)
        with pytest.raises(PrivacyBudgetError, match="already released"):
            nant.observe(1.0)

    def test_budget_split_is_half_half(self):
        nant = make_nant(epsilon=2.0)
        assert nant.eps1 == pytest.approx(1.0)
        assert nant.eps2 == pytest.approx(1.0)

    def test_invalid_parameters(self):
        source = LocalNoiseSource(spawn(0, "svt"))
        with pytest.raises(PrivacyBudgetError):
            NumericAboveNoisyThreshold(0.0, 1.0, 5.0, source)
        with pytest.raises(PrivacyBudgetError):
            NumericAboveNoisyThreshold(1.0, 0.0, 5.0, source)

    def test_noisy_threshold_varies_with_randomness(self):
        thresholds = {make_nant(seed=s).noisy_threshold for s in range(5)}
        assert len(thresholds) > 1

    def test_release_noise_has_expected_scale(self):
        """Releases are count + Lap(Δ/ε₂); check spread over many runs."""
        errors = []
        for seed in range(400):
            nant = make_nant(epsilon=2.0, sensitivity=1.0, threshold=0.0, seed=seed)
            out = nant.observe(50.0)
            assert out is not None  # threshold 0 ⇒ always triggers
            errors.append(out - 50.0)
        errors = np.asarray(errors)
        # Lap(Δ/ε₂) = Lap(1.0): std = sqrt(2).
        assert errors.std() == pytest.approx(np.sqrt(2), rel=0.3)


class TestRepeatingNANT:
    def test_rearms_after_release(self):
        rep = RepeatingNANT(50.0, 1.0, 5.0, LocalNoiseSource(spawn(1, "svt")))
        first = rep.observe(100.0)
        assert first is not None
        # A fresh instance is armed: observing again must not raise.
        second = rep.observe(100.0)
        assert second is not None
        assert len(rep.releases) == 2

    def test_threshold_refreshed_between_releases(self):
        rep = RepeatingNANT(1.0, 1.0, 5.0, LocalNoiseSource(spawn(2, "svt")))
        before = rep.noisy_threshold
        rep.observe(10_000.0)  # certainly triggers
        after = rep.noisy_threshold
        assert before != after

    def test_no_release_keeps_instance(self):
        rep = RepeatingNANT(50.0, 1.0, 1000.0, LocalNoiseSource(spawn(3, "svt")))
        before = rep.noisy_threshold
        assert rep.observe(0.0) is None
        assert rep.noisy_threshold == before

    def test_trigger_frequency_tracks_threshold(self):
        """With counts ramping each step, a higher threshold triggers
        later — the adaptivity sDPANT relies on."""
        def steps_until_trigger(threshold, seed):
            rep = RepeatingNANT(
                20.0, 1.0, threshold, LocalNoiseSource(spawn(seed, "svt"))
            )
            count = 0.0
            for step in range(1, 200):
                count += 3.0
                if rep.observe(count) is not None:
                    return step
            return 200

        low = np.mean([steps_until_trigger(10.0, s) for s in range(20)])
        high = np.mean([steps_until_trigger(60.0, s) for s in range(20)])
        assert high > low
