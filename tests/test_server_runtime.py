"""Tests for the concurrent serving runtime (``repro.server.runtime``).

The headline claims: many clients can query while the stream advances
(and observe only step-consistent state), ingestion order fully
determines the database's evolution, and a server resumed from a
checkpoint converges to the identical state as one that never stopped.
"""

from __future__ import annotations

import threading
from time import sleep as _sleep

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ProtocolError, SchemaError
from repro.common.types import RecordBatch, Schema
from repro.core.engine import EngineConfig
from repro.core.view_def import JoinViewDefinition
from repro.query.ast import LogicalJoinCountQuery
from repro.server.database import IncShrinkDatabase, ViewRegistration
from repro.server.runtime import DatabaseServer, ReadWriteLock

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
    ([[3, 5]], [[9, 5]]),
    ([], [[3, 6]]),
]


def make_view(name: str, window_hi: int) -> JoinViewDefinition:
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
        omega=2,
        budget=6,
    )


def build_database() -> IncShrinkDatabase:
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=7)
    db.register_view(ViewRegistration(make_view("full", 2), mode="ep"))
    db.register_view(
        ViewRegistration(make_view("audit", 2), mode="dp-timer", timer_interval=1)
    )
    db.register_view(
        ViewRegistration(make_view("recent", 1), mode="dp-timer", timer_interval=1)
    )
    return db


def batches_at(time: int) -> dict[str, RecordBatch]:
    probe_rows, driver_rows = SCRIPT[time - 1]
    return {
        "orders": RecordBatch(
            PROBE_SCHEMA, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(4),
        "shipments": RecordBatch(
            DRIVER_SCHEMA, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
        ).padded_to(3),
    }


def count_query(window_hi: int = 2) -> LogicalJoinCountQuery:
    return LogicalJoinCountQuery(
        probe_table="orders",
        driver_table="shipments",
        probe_key="key",
        driver_key="key",
        probe_ts="ots",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
    )


def sequential_reference() -> tuple[list[float], float]:
    """The same stream replayed inline, no server involved."""
    db = build_database()
    for t in range(1, len(SCRIPT) + 1):
        db.upload(t, batches_at(t))
        db.step(t)
    answers = [
        db.query(count_query(2), len(SCRIPT)).answer,
        db.query(count_query(1), len(SCRIPT)).answer,
    ]
    return answers, db.realized_epsilon()


class TestIngestion:
    def test_background_ingestion_matches_inline_replay(self):
        expected_answers, expected_eps = sequential_reference()
        server = DatabaseServer(build_database()).start()
        for t in range(1, len(SCRIPT) + 1):
            server.submit(t, batches_at(t))
        server.drain()
        assert server.last_time == len(SCRIPT)
        got = [
            server.query(count_query(2)).answer,
            server.query(count_query(1)).answer,
        ]
        server.stop()
        assert got == expected_answers
        assert server.database.realized_epsilon() == expected_eps

    def test_batched_ingestion_coalesces_queued_steps(self):
        """Submitting the whole stream before the loop wakes must still
        apply every step, in order, exactly once."""
        server = DatabaseServer(build_database(), ingest_batch=4)
        for t in range(1, len(SCRIPT) + 1):
            server._queue.put((t, batches_at(t)))  # pre-load before start
        server.start()
        server.drain()
        server.stop()
        assert server.stats.steps == len(SCRIPT)
        assert server.database.upload_counts() == {
            "orders": len(SCRIPT),
            "shipments": len(SCRIPT),
        }

    def test_non_advancing_upload_surfaces_as_error(self):
        server = DatabaseServer(build_database()).start()
        server.submit(1, batches_at(1))
        server.drain()
        server.submit(1, batches_at(1))  # same step again
        with pytest.raises(ProtocolError, match="does not advance"):
            server.drain()
        # The server is now poisoned: further submissions are refused.
        with pytest.raises(ProtocolError):
            server.submit(2, batches_at(2))

    def test_bad_table_name_surfaces_as_error(self):
        server = DatabaseServer(build_database()).start()
        server.submit(1, {"unknown": batches_at(1)["orders"]})
        with pytest.raises(SchemaError, match="unknown"):
            server.drain()

    def test_submit_requires_start(self):
        server = DatabaseServer(build_database())
        with pytest.raises(ConfigurationError, match="not started"):
            server.submit(1, batches_at(1))

    def test_double_start_rejected(self):
        server = DatabaseServer(build_database()).start()
        with pytest.raises(ConfigurationError, match="already started"):
            server.start()
        server.stop()


class TestConcurrentReads:
    def test_many_sessions_query_while_stream_advances(self):
        expected_answers, expected_eps = sequential_reference()
        server = DatabaseServer(build_database()).start()
        stop = threading.Event()
        errors: list[BaseException] = []

        def client(session):
            try:
                while not stop.is_set():
                    watermark = server.last_time
                    if watermark:
                        result = session.query(count_query(2), time=watermark)
                        assert result.answer >= 0.0
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        sessions = [server.session() for _ in range(4)]
        threads = [
            threading.Thread(target=client, args=(s,), daemon=True)
            for s in sessions
        ]
        for t in threads:
            t.start()
        for t in range(1, len(SCRIPT) + 1):
            server.submit(t, batches_at(t))
        server.drain()
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors

        # Read load perturbed nothing: final answers equal the quiet replay.
        got = [
            server.query(count_query(2)).answer,
            server.query(count_query(1)).answer,
        ]
        server.stop()
        assert got == expected_answers
        assert server.database.realized_epsilon() == expected_eps
        assert server.stats.queries >= sum(s.query_count for s in sessions)

    def test_sessions_record_their_own_results(self):
        server = DatabaseServer(build_database()).start()
        server.submit(1, batches_at(1))
        server.drain()
        a, b = server.session("alice"), server.session("bob")
        a.query(count_query(2))
        a.query(count_query(1))
        b.query(count_query(2))
        server.stop()
        assert a.query_count == 2 and b.query_count == 1
        assert a.answers()[0] == b.answers()[0]


class TestSnapshotResume:
    def test_periodic_checkpoint_and_resume_matches_uninterrupted(self, tmp_path):
        expected_answers, expected_eps = sequential_reference()
        path = str(tmp_path / "serve.snap")

        first = DatabaseServer(
            build_database(), snapshot_path=path, snapshot_every=1
        ).start()
        for t in range(1, 4):
            first.submit(t, batches_at(t))
        first.drain()
        first.stop()
        assert first.stats.snapshots >= 1

        resumed = DatabaseServer.resume(path)
        assert resumed.last_time == 3
        resumed.start()
        for t in range(4, len(SCRIPT) + 1):
            resumed.submit(t, batches_at(t))
        resumed.drain()
        got = [
            resumed.query(count_query(2)).answer,
            resumed.query(count_query(1)).answer,
        ]
        resumed.stop(final_snapshot=True)
        assert got == expected_answers
        assert resumed.database.realized_epsilon() == expected_eps

        # And the final snapshot can be picked up once more.
        again = DatabaseServer.resume(path)
        assert again.last_time == len(SCRIPT)
        assert again.database.realized_epsilon() == expected_eps

    def test_checkpoint_interval_survives_coalesced_ingestion(self, tmp_path):
        """Coalescing many steps into one apply must not jump over the
        snapshot interval (regression: ``steps % every`` skipped it)."""
        path = str(tmp_path / "coalesced.snap")
        server = DatabaseServer(
            build_database(),
            snapshot_path=path,
            snapshot_every=5,
            ingest_batch=4,
        )
        for t in range(1, len(SCRIPT) + 1):  # 6 steps, applied as 4 + 2
            server._queue.put((t, batches_at(t)))
        server.start()
        server.drain()
        server.stop()
        assert server.stats.snapshots == 1
        assert DatabaseServer.resume(path).last_time >= 5

    def test_resume_rejects_stale_steps(self, tmp_path):
        path = str(tmp_path / "stale.snap")
        first = DatabaseServer(build_database(), snapshot_path=path).start()
        first.submit(1, batches_at(1))
        first.drain()
        first.stop(final_snapshot=True)

        resumed = DatabaseServer.resume(path).start()
        resumed.submit(1, batches_at(1))  # already ingested before the stop
        with pytest.raises(ProtocolError, match="does not advance"):
            resumed.drain()

    def test_snapshot_requires_a_path(self):
        server = DatabaseServer(build_database()).start()
        with pytest.raises(ConfigurationError, match="snapshot path"):
            server.snapshot()
        server.stop()

    def test_snapshot_every_requires_path(self):
        with pytest.raises(ConfigurationError, match="snapshot_path"):
            DatabaseServer(build_database(), snapshot_every=2)


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        held = []

        lock.acquire_read()
        lock.acquire_read()  # second reader enters freely
        t = threading.Thread(
            target=lambda: (lock.acquire_write(), held.append("w")),
            daemon=True,
        )
        t.start()
        t.join(timeout=0.2)
        assert not held, "writer must wait for readers"
        lock.release_read()
        lock.release_read()
        t.join(timeout=2.0)
        assert held == ["w"]
        lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer = threading.Thread(target=lock.acquire_write, daemon=True)
        writer.start()
        # Give the writer time to queue up.
        for _ in range(100):
            if lock._writers_waiting:
                break
            threading.Event().wait(0.005)
        reader_entered = []
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), reader_entered.append(True)),
            daemon=True,
        )
        reader.start()
        reader.join(timeout=0.2)
        assert not reader_entered, "new readers queue behind a waiting writer"
        lock.release_read()
        writer.join(timeout=2.0)
        lock.release_write()
        reader.join(timeout=2.0)
        assert reader_entered
        lock.release_read()


class TestConfigErrorMessages:
    """Every invalid knob names itself and the offending value."""

    @pytest.mark.parametrize(
        "kwargs,field,value",
        [
            ({"mode": "bogus"}, "mode", "bogus"),
            ({"join_impl": "hash"}, "join_impl", "hash"),
            ({"timer_interval": 0}, "timer_interval", "0"),
            ({"ant_threshold": -1.0}, "ant_threshold", "-1.0"),
            ({"flush_interval": 0}, "flush_interval", "0"),
            ({"flush_size": -3}, "flush_size", "-3"),
            ({"size_hint": 0}, "size_hint", "0"),
            ({"updates_hint": -2}, "updates_hint", "-2"),
        ],
    )
    def test_view_registration_messages(self, kwargs, field, value):
        with pytest.raises(ConfigurationError) as exc_info:
            ViewRegistration(make_view("v", 2), **kwargs)
        message = str(exc_info.value)
        assert field in message and value in message

    @pytest.mark.parametrize(
        "kwargs,field,value",
        [
            ({"mode": "bogus"}, "mode", "bogus"),
            ({"epsilon": 0.0}, "epsilon", "0.0"),
            ({"timer_interval": -5}, "timer_interval", "-5"),
            ({"flush_size": 0}, "flush_size", "0"),
        ],
    )
    def test_engine_config_messages(self, kwargs, field, value):
        with pytest.raises(ConfigurationError) as exc_info:
            EngineConfig(**kwargs)
        message = str(exc_info.value)
        assert field in message and value in message

    def test_server_knob_messages(self):
        with pytest.raises(ConfigurationError, match="snapshot_every.*0"):
            DatabaseServer(build_database(), snapshot_path="x", snapshot_every=0)
        with pytest.raises(ConfigurationError, match="ingest_batch.*-1"):
            DatabaseServer(build_database(), ingest_batch=-1)


class TestGracefulShutdown:
    """``stop()``/``drain()`` hardening: bounded waits, surfaced errors."""

    def test_stop_drain_timeout_reports_pending_then_finishes(self):
        server = DatabaseServer(build_database()).start()
        real_upload = server.database.upload

        def slow_upload(time, batches):
            _sleep(0.15)
            return real_upload(time, batches)

        server.database.upload = slow_upload
        for t in range(1, 4):
            server.submit(t, batches_at(t))
        with pytest.raises(ProtocolError, match="did not drain within"):
            server.stop(drain_timeout=0.01)
        # Nothing was lost: a second stop (unbounded) finishes the drain.
        server.stop()
        assert server.last_time == 3

    def test_drain_timeout_is_bounded_and_lossless(self):
        server = DatabaseServer(build_database()).start()
        real_upload = server.database.upload

        def slow_upload(time, batches):
            _sleep(0.2)
            return real_upload(time, batches)

        server.database.upload = slow_upload
        server.submit(1, batches_at(1))
        with pytest.raises(ProtocolError, match="not applied within"):
            server.drain(timeout=0.01)
        server.drain()  # unbounded wait completes
        assert server.last_time == 1
        server.stop()

    def test_stop_surfaces_deferred_ingest_error(self):
        server = DatabaseServer(build_database()).start()
        server.submit(1, batches_at(1))
        server.drain()
        server.submit(1, batches_at(1))  # regression: never applied
        while server.ingest_error is None:
            _sleep(0.005)
        assert isinstance(server.ingest_error, ProtocolError)
        # The caller that only ever stops (never submits again) still
        # observes the failure, exactly once.
        with pytest.raises(ProtocolError, match="does not advance"):
            server.stop(final_snapshot=False)
        server.stop()  # already stopped: no re-raise, no snapshot

    def test_stop_timeout_rejects_bad_knob(self):
        with pytest.raises(ConfigurationError, match="max_pending.*0"):
            DatabaseServer(build_database(), max_pending=0)

    def test_stop_timeout_bounded_even_with_full_queue(self):
        """The shutdown sentinel rides the bounded queue; a full queue
        must not turn the bounded stop into an unbounded block."""
        from time import monotonic

        server = DatabaseServer(build_database(), max_pending=1).start()
        real_upload = server.database.upload

        def slow_upload(time, batches):
            _sleep(0.3)
            return real_upload(time, batches)

        server.database.upload = slow_upload
        server.submit(1, batches_at(1))
        _sleep(0.05)  # let the loop take step 1 off the queue
        server.submit(2, batches_at(2))  # fills the single slot
        t0 = monotonic()
        with pytest.raises(ProtocolError, match="did not drain"):
            server.stop(drain_timeout=0.05)
        assert monotonic() - t0 < 1.0
        server.stop()  # unbounded: finishes the drain
        assert server.last_time == 2


class TestObservabilitySurface:
    """``ServingStats.to_dict()`` is the single monitoring contract."""

    def test_stats_dict_reports_gauges(self):
        server = DatabaseServer(build_database(), max_pending=9).start()
        for t in range(1, 3):
            server.submit(t, batches_at(t))
        server.drain()
        server.query(count_query(2))
        stats = server.current_stats().to_dict()
        assert stats["queue_depth"] == 0
        assert stats["queue_capacity"] == 9
        assert set(stats["shard_rows"]) == set(server.database.views)
        assert all(
            sum(rows) >= 0 for rows in stats["shard_rows"].values()
        )
        assert stats["query_epsilon"] == 0.0
        payload = server.observability()
        assert payload["last_time"] == 2
        assert payload["n_shards"] == server.database.n_shards
        assert payload["ingest_error"] is None
        assert payload["realized_epsilon"] == server.database.realized_epsilon()
        server.stop()

    def test_query_epsilon_gauge_tracks_noisy_releases(self):
        server = DatabaseServer(build_database()).start()
        server.submit(1, batches_at(1))
        server.drain()
        server.query(count_query(2), epsilon=0.25)
        assert server.current_stats().query_epsilon == pytest.approx(0.25)
        server.stop()


class TestSnapshotDuringConcurrentQueries:
    """Checkpointing must quiesce readers, not corrupt or drift state."""

    def test_racing_snapshot_restores_byte_identical_state(self, tmp_path):
        from repro.server.persistence import restore_database, snapshot_database

        path = str(tmp_path / "race.snap")
        server = DatabaseServer(build_database(), snapshot_path=path).start()
        for t in range(1, len(SCRIPT) + 1):
            server.submit(t, batches_at(t))
        server.drain()
        reference = [
            server.query(count_query(2)).answer,
            server.query(count_query(1)).answer,
        ]

        stop = threading.Event()
        errors: list[BaseException] = []

        def reader_loop(session):
            try:
                while not stop.is_set():
                    assert session.query(count_query(2)).answer == reference[0]
                    assert session.query(count_query(1)).answer == reference[1]
            except BaseException as exc:
                errors.append(exc)

        readers = [
            threading.Thread(target=reader_loop, args=(server.session(),))
            for _ in range(3)
        ]
        for thread in readers:
            thread.start()
        # Checkpoint repeatedly while the sessions are mid-query.
        infos = [server.snapshot() for _ in range(4)]
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors, errors

        # Byte-identical: re-snapshotting the restored state under the
        # same metadata reproduces the exact on-disk digest (before any
        # new query appends to the persisted metric logs).
        restored = restore_database(path)
        info = snapshot_database(
            restored.database,
            str(tmp_path / "again.snap"),
            metadata=restored.metadata,
        )
        assert info.sha256 == infos[-1].sha256
        # And the restored database answers identically, ε-exactly.
        assert [
            restored.database.query(count_query(2), len(SCRIPT)).answer,
            restored.database.query(count_query(1), len(SCRIPT)).answer,
        ] == reference
        assert (
            restored.database.realized_epsilon()
            == server.database.realized_epsilon()
        )
        server.stop()
