"""Documentation stays true: links resolve, embedded examples run.

Mirrors the CI docs job (``tools/check_docs.py``) inside tier-1 so a
broken doc link or a stale code example fails locally before push.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs import (  # noqa: E402 (path bootstrap above)
    DOCS_DIR,
    check_links,
    markdown_files,
    run_doc_doctests,
)


def test_repo_has_documentation_pages():
    names = {p.name for p in markdown_files()}
    assert "README.md" in names
    assert (DOCS_DIR / "ARCHITECTURE.md").exists()
    assert (DOCS_DIR / "PAPER_MAP.md").exists()


def test_intra_repo_markdown_links_resolve():
    assert check_links() == []


def test_docs_code_examples_execute():
    failures, attempted = run_doc_doctests()
    assert failures == []
    assert attempted > 0, "docs must contain executable examples"
