"""Unit tests for cost-based planning and the SUM rewrite path."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.rng import spawn
from repro.mpc.cost_model import DEFAULT_COST_MODEL
from repro.mpc.runtime import MPCRuntime
from repro.query.ast import (
    LogicalJoinCountQuery,
    LogicalJoinQuery,
    LogicalJoinSumQuery,
    ViewScanPlan,
    ViewSumQuery,
)
from repro.query.executor import execute_nm_sum
from repro.query.planner import (
    NM_JOIN,
    VIEW_SCAN,
    ViewCandidate,
    nm_join_gates,
    plan_query,
    view_scan_gates,
)
from repro.query.rewrite import can_answer, rewrite_logical, rewrite_sum
from repro.sharing.shared_value import SharedTable
from repro.storage.outsourced_table import OutsourcedTable

JOIN_FIELDS = dict(
    probe_table="orders",
    driver_table="shipments",
    probe_key="key",
    driver_key="key",
    probe_ts="ots",
    driver_ts="sts",
    window_lo=0,
    window_hi=2,
)


def count_query(**overrides) -> LogicalJoinCountQuery:
    return LogicalJoinCountQuery(**{**JOIN_FIELDS, **overrides})


def sum_query(sum_table="shipments", sum_column="sts", **overrides) -> LogicalJoinSumQuery:
    return LogicalJoinSumQuery(
        **{**JOIN_FIELDS, **overrides}, sum_table=sum_table, sum_column=sum_column
    )


class TestSumRewrite:
    def test_sum_query_is_a_logical_join_query(self, tiny_view_def):
        assert isinstance(sum_query(), LogicalJoinQuery)
        assert can_answer(sum_query(), tiny_view_def)

    def test_driver_column_maps_to_d_prefix(self, tiny_view_def):
        view_query = rewrite_sum(sum_query(), tiny_view_def)
        assert isinstance(view_query, ViewSumQuery)
        assert view_query.view_name == tiny_view_def.name
        assert view_query.column == "d_sts"

    def test_probe_column_maps_to_p_prefix(self, tiny_view_def):
        view_query = rewrite_sum(
            sum_query(sum_table="orders", sum_column="ots"), tiny_view_def
        )
        assert view_query.column == "p_ots"

    def test_foreign_sum_table_rejected(self, tiny_view_def):
        with pytest.raises(SchemaError, match="neither side"):
            rewrite_sum(sum_query(sum_table="users"), tiny_view_def)

    def test_missing_column_rejected(self, tiny_view_def):
        with pytest.raises(SchemaError):
            rewrite_sum(sum_query(sum_column="ghost"), tiny_view_def)

    def test_mismatched_join_rejected(self, tiny_view_def):
        with pytest.raises(SchemaError, match="does not materialize"):
            rewrite_sum(sum_query(window_hi=9), tiny_view_def)

    def test_rewrite_logical_lowers_both_aggregates_to_scan_plans(
        self, tiny_view_def
    ):
        count_plan = rewrite_logical(count_query(), tiny_view_def)
        assert isinstance(count_plan, ViewScanPlan)
        assert count_plan.view_name == "tiny"
        assert count_plan.aggregates[0].kind == "count"
        sum_plan = rewrite_logical(sum_query(), tiny_view_def)
        assert sum_plan.aggregates[0].kind == "sum"
        assert sum_plan.aggregates[0].column == "d_sts"


class TestCostEstimates:
    def test_sum_scan_costs_more_than_count_scan(self):
        count = view_scan_gates(DEFAULT_COST_MODEL, 100, 4)
        total = view_scan_gates(DEFAULT_COST_MODEL, 100, 4, is_sum=True)
        assert total > count

    def test_view_scan_scales_linearly(self):
        one = view_scan_gates(DEFAULT_COST_MODEL, 10, 4)
        ten = view_scan_gates(DEFAULT_COST_MODEL, 100, 4)
        assert ten == 10 * one

    def test_nm_join_dominates_view_scan_at_scale(self):
        """The whole premise of materialization: an O(n log² n) sort per
        query costs more than a linear scan of a DP-sized view."""
        view = view_scan_gates(DEFAULT_COST_MODEL, 500, 4)
        nm = nm_join_gates(DEFAULT_COST_MODEL, 2000, 2000, 2, 2)
        assert nm > view

    def test_empty_stores_cost_nothing(self):
        assert nm_join_gates(DEFAULT_COST_MODEL, 0, 0, 2, 2) == 0


class TestPlanQuery:
    def _candidate(self, tiny_view_def, rows: int) -> ViewCandidate:
        return ViewCandidate(tiny_view_def, rows)

    def test_small_view_beats_nm(self, tiny_view_def):
        plan = plan_query(
            count_query(),
            [self._candidate(tiny_view_def, 50)],
            2000,
            2000,
            DEFAULT_COST_MODEL,
        )
        assert plan.kind == VIEW_SCAN
        assert plan.view_name == "tiny"
        assert plan.view_query is not None

    def test_bloated_view_loses_to_nm(self, tiny_view_def):
        plan = plan_query(
            count_query(),
            [self._candidate(tiny_view_def, 1_000_000)],
            10,
            10,
            DEFAULT_COST_MODEL,
        )
        assert plan.kind == NM_JOIN

    def test_cheapest_of_several_views_wins(self, tiny_view_def):
        from dataclasses import replace

        small = replace(tiny_view_def, name="small")
        big = replace(tiny_view_def, name="big")
        plan = plan_query(
            count_query(),
            [self._candidate(big, 900), self._candidate(small, 90)],
            100_000,
            100_000,
            DEFAULT_COST_MODEL,
        )
        assert plan.view_name == "small"

    def test_non_matching_views_are_not_candidates(self, tiny_view_def):
        plan = plan_query(
            count_query(window_hi=7),
            [self._candidate(tiny_view_def, 1)],
            100,
            100,
            DEFAULT_COST_MODEL,
        )
        assert plan.kind == NM_JOIN

    def test_no_match_and_no_fallback_raises(self, tiny_view_def):
        with pytest.raises(SchemaError, match="fallback is disabled"):
            plan_query(
                count_query(window_hi=7),
                [self._candidate(tiny_view_def, 1)],
                100,
                100,
                DEFAULT_COST_MODEL,
                nm_allowed=False,
            )

    def test_sum_query_plans_to_sum_scan_plan(self, tiny_view_def):
        plan = plan_query(
            sum_query(),
            [self._candidate(tiny_view_def, 10)],
            1000,
            1000,
            DEFAULT_COST_MODEL,
        )
        assert plan.kind == VIEW_SCAN
        assert isinstance(plan.view_query, ViewScanPlan)
        assert plan.view_query.aggregates[0].kind == "sum"

    def test_estimate_matches_executor_charge(self, tiny_view_def):
        """The planner's view-scan estimate must equal the gates the
        executor actually charges — same formula, no drift."""
        from repro.query.ast import ViewCountQuery
        from repro.query.executor import execute_view_count
        from repro.storage.materialized_view import MaterializedView

        n = 64
        schema = tiny_view_def.view_schema
        view = MaterializedView(schema)
        rows = np.zeros((n, schema.width), dtype=np.uint32)
        view.append(
            SharedTable.from_plain(
                schema, rows, np.ones(n, dtype=np.uint32), spawn(0, "plan")
            )
        )
        runtime = MPCRuntime(seed=0)
        _, qet = execute_view_count(runtime, 1, view, ViewCountQuery("tiny"))
        estimated = view_scan_gates(DEFAULT_COST_MODEL, n, schema.width)
        assert qet == pytest.approx(DEFAULT_COST_MODEL.seconds(estimated))


class TestNMSumExecution:
    def test_nm_sum_is_exact(self, tiny_view_def):
        runtime = MPCRuntime(seed=0)
        probe_store = OutsourcedTable(tiny_view_def.probe_schema, "orders")
        driver_store = OutsourcedTable(tiny_view_def.driver_schema, "shipments")
        probe_rows = np.asarray([[1, 1], [2, 1], [0, 0]], dtype=np.uint32)
        driver_rows = np.asarray([[1, 2], [2, 9]], dtype=np.uint32)
        probe_store.append_batch(
            SharedTable.from_plain(
                tiny_view_def.probe_schema,
                probe_rows,
                np.asarray([1, 1, 0], dtype=np.uint32),
                spawn(0, "nm-sum"),
            ),
            1,
        )
        driver_store.append_batch(
            SharedTable.from_plain(
                tiny_view_def.driver_schema,
                driver_rows,
                np.asarray([1, 1], dtype=np.uint32),
                spawn(1, "nm-sum"),
            ),
            1,
        )
        # Only (1,1)x(1,2) joins within window 2; driver sts sum = 2.
        total, qet = execute_nm_sum(
            runtime, 1, probe_store, driver_store, tiny_view_def, "shipments", "sts"
        )
        assert total == 2
        assert qet > 0

    def test_nm_sum_foreign_table_rejected(self, tiny_view_def):
        runtime = MPCRuntime(seed=0)
        probe_store = OutsourcedTable(tiny_view_def.probe_schema, "orders")
        driver_store = OutsourcedTable(tiny_view_def.driver_schema, "shipments")
        with pytest.raises(SchemaError, match="neither side"):
            execute_nm_sum(
                runtime, 1, probe_store, driver_store, tiny_view_def, "users", "x"
            )
