"""Protocol fuzz/property suite for the wire layer and the reactor.

Three layers of adversarial confidence, per ISSUE 7:

* **randomized round-trips** — every payload codec (batches, uploads,
  answers, results-adjacent tables) survives encode→frame→decode under
  both the JSON (v1) and binary (v2) codecs, across randomized shapes,
  dtypes, and cell mixes, fed to the incremental decoder in randomized
  chunk sizes;
* **hostile bytes against the pure decoder** — truncated frames,
  corrupted length prefixes, oversized bodies, bad magic, unknown frame
  codes, malformed binary envelopes: every one raises the structured
  :class:`~repro.net.protocol.WireError` hierarchy, never an
  uncontrolled exception, and never buffers past one declared frame;
* **hostile bytes against a live reactor** — random garbage, mid-frame
  disconnects, interleaved junk after valid frames: the server always
  answers a structured ``error`` frame or closes the connection cleanly,
  its event loops record zero unhandled exceptions, and it keeps serving
  well-behaved clients afterwards.

Seeds are fixed: every "random" case is reproducible.
"""

from __future__ import annotations

import io
import socket
import struct
import time as _time

import numpy as np
import pytest

from repro.common.types import RecordBatch, Schema
from repro.net import protocol as wire
from repro.net.server import NetworkServer
from repro.query.ast import QueryAnswer
from repro.server.runtime import DatabaseServer

from test_network import batches_at, build_database

_HEADER_SIZE = 10
_DTYPES = ["<u4", "<i8", "<f8", "<f4", "<u1", "|b1", "<i2"]


# -- randomized round-trips ----------------------------------------------------
def _random_batch(rng: np.random.Generator) -> RecordBatch:
    n_fields = int(rng.integers(1, 5))
    schema = Schema(tuple(f"f{i}" for i in range(n_fields)))
    n_rows = int(rng.integers(0, 17))
    rows = rng.integers(0, 2**31, size=(n_rows, n_fields)).astype(np.uint32)
    is_real = rng.integers(0, 2, size=n_rows).astype(bool)
    return RecordBatch(schema, rows, is_real)


def _chunked_frames(blob: bytes, rng: np.random.Generator):
    """Feed ``blob`` to a fresh decoder in random-sized chunks."""
    decoder = wire.FrameDecoder()
    frames = []
    offset = 0
    while offset < len(blob):
        step = int(rng.integers(1, 64))
        frames.extend(decoder.feed(blob[offset : offset + step]))
        offset += step
    assert decoder.buffered_bytes == 0
    assert not decoder.mid_frame
    return frames


@pytest.mark.parametrize("codec", [wire.CODEC_JSON, wire.CODEC_BINARY])
def test_upload_round_trip_randomized(codec):
    rng = np.random.default_rng(1234)
    binary = codec == wire.CODEC_BINARY
    for trial in range(25):
        batches = [
            (f"table{i}", _random_batch(rng)) for i in range(int(rng.integers(1, 4)))
        ]
        payload = wire.encode_upload(trial + 1, batches, binary=binary)
        blob = wire.encode_frame("upload", payload, codec=codec)
        frames = _chunked_frames(blob, rng)
        assert len(frames) == 1
        frame_type, decoded_payload = frames[0]
        assert frame_type == "upload"
        decoded_time, items = wire.decode_upload(decoded_payload)
        assert decoded_time == trial + 1
        assert [name for name, _ in items] == [name for name, _ in batches]
        for (_, sent), (_, got) in zip(batches, items, strict=True):
            assert got.schema == sent.schema
            np.testing.assert_array_equal(got.rows, np.asarray(sent.rows))
            np.testing.assert_array_equal(got.is_real, np.asarray(sent.is_real))


@pytest.mark.parametrize("codec", [wire.CODEC_JSON, wire.CODEC_BINARY])
def test_answer_round_trip_randomized(codec):
    rng = np.random.default_rng(99)
    binary = codec == wire.CODEC_BINARY
    for _ in range(40):
        n_cols = int(rng.integers(1, 5))
        n_rows = int(rng.integers(0, 8))
        columns = tuple(f"c{i}" for i in range(n_cols))
        # Column cell kinds: all-int, all-float, or mixed — the codec
        # must preserve the exact/noisy (int/float) distinction.
        kinds = [rng.choice(["i", "f", "m"]) for _ in range(n_cols)]
        rows = []
        for _ri in range(n_rows):
            row = []
            for kind in kinds:
                if kind == "i" or (kind == "m" and rng.integers(0, 2)):
                    row.append(int(rng.integers(-(2**40), 2**40)))
                else:
                    row.append(float(rng.normal()))
            rows.append(tuple(row))
        group_keys = (
            None
            if rng.integers(0, 2)
            else tuple(int(k) for k in rng.integers(0, 100, size=n_rows))
        )
        answer = QueryAnswer(columns=columns, group_keys=group_keys, rows=tuple(rows))
        payload = wire.encode_answer(answer, binary=binary)
        blob = wire.encode_frame("result", payload, codec=codec)
        frames = _chunked_frames(blob, rng)
        (frame_type, decoded_payload) = frames[0]
        decoded = wire.decode_answer(decoded_payload)
        assert decoded == answer
        # Same cell *types*, not just equal values (1 == 1.0 in Python).
        for sent_row, got_row in zip(answer.rows, decoded.rows, strict=True):
            for sent_cell, got_cell in zip(sent_row, got_row, strict=True):
                assert type(sent_cell) is type(got_cell)


def test_blob_dtypes_round_trip_exactly():
    rng = np.random.default_rng(7)
    for dtype in _DTYPES:
        dt = np.dtype(dtype)
        shape = tuple(int(d) for d in rng.integers(1, 5, size=int(rng.integers(1, 4))))
        if dt.kind == "f":
            arr = rng.normal(size=shape).astype(dt)
        elif dt.kind == "b":
            arr = rng.integers(0, 2, size=shape).astype(dt)
        else:
            info = np.iinfo(dt)
            arr = rng.integers(
                info.min, int(info.max) + 1, size=shape, dtype=np.int64
            ).astype(dt)
        blob = wire.encode_frame("stats", {"arr": arr}, codec=wire.CODEC_BINARY)
        _, payload = wire.read_frame(io.BytesIO(blob))
        got = payload["arr"]
        assert got.dtype == dt
        assert got.shape == shape
        np.testing.assert_array_equal(got, arr)


def test_big_endian_arrays_normalized_to_little():
    arr = np.arange(6, dtype=">u4").reshape(2, 3)
    blob = wire.encode_frame("stats", {"arr": arr}, codec=wire.CODEC_BINARY)
    _, payload = wire.read_frame(io.BytesIO(blob))
    assert payload["arr"].dtype == np.dtype("<u4")
    np.testing.assert_array_equal(payload["arr"], arr)


def test_every_frame_type_round_trips_empty_payload_in_both_codecs():
    for codec in wire.SUPPORTED_CODECS:
        for frame_type in wire.FRAME_CODES:
            blob = wire.encode_frame(frame_type, {}, codec=codec)
            assert wire.read_frame(io.BytesIO(blob)) == (frame_type, {})


def test_json_codec_rejects_raw_arrays():
    with pytest.raises(wire.WireError, match="not JSON-serializable"):
        wire.encode_frame("upload", {"rows": np.zeros(3)}, codec=wire.CODEC_JSON)


def test_object_dtype_rejected_by_binary_codec():
    arr = np.asarray([object()], dtype=object)
    with pytest.raises(wire.WireError, match="dtype"):
        wire.encode_frame("stats", {"arr": arr}, codec=wire.CODEC_BINARY)


# -- hostile bytes against the pure decoder ------------------------------------
def _valid_header(body_len: int, version: int = wire.PROTOCOL_VERSION) -> bytes:
    return struct.pack(
        ">4sBBI", wire.PROTOCOL_MAGIC, version, wire.FRAME_CODES["stats"], body_len
    )


def test_truncated_frames_stay_buffered_without_output():
    blob = wire.encode_frame("stats", {"k": 123})
    for cut in range(len(blob)):
        decoder = wire.FrameDecoder()
        assert decoder.feed(blob[:cut]) == []
        assert decoder.buffered_bytes == cut
        # Completing the frame later drains the buffer exactly.
        assert decoder.feed(blob[cut:]) == [("stats", {"k": 123})]
        assert decoder.buffered_bytes == 0


def test_corrupted_length_prefix_rejected_before_buffering_a_body():
    # A hostile 4 GiB-minus-one length prefix must be rejected the
    # moment the header completes — not after gigabytes accumulate.
    header = _valid_header(0xFFFFFFFE)
    decoder = wire.FrameDecoder()
    with pytest.raises(wire.WireError, match="frame ceiling"):
        decoder.feed(header)


def test_oversized_body_rejected_at_exactly_the_ceiling_boundary():
    decoder = wire.FrameDecoder()
    with pytest.raises(wire.WireError, match="frame ceiling"):
        decoder.feed(_valid_header(wire.MAX_FRAME_BYTES + 1))
    # The ceiling itself is legal (header-level): no exception.
    assert wire.FrameDecoder().feed(_valid_header(wire.MAX_FRAME_BYTES)) == []


def test_bad_magic_rejected():
    blob = b"EVIL" + wire.encode_frame("stats", {})[4:]
    with pytest.raises(wire.WireError, match="magic"):
        wire.FrameDecoder().feed(blob)


def test_unknown_version_raises_version_mismatch():
    blob = bytearray(wire.encode_frame("stats", {}))
    blob[4] = 99
    with pytest.raises(wire.VersionMismatch):
        wire.FrameDecoder().feed(bytes(blob))


def test_unknown_frame_code_rejected():
    blob = bytearray(wire.encode_frame("stats", {}))
    blob[5] = 0xEE
    with pytest.raises(wire.WireError, match="frame type code"):
        wire.FrameDecoder().feed(bytes(blob))


def test_non_json_body_rejected():
    body = b"\xff\xfe not json"
    blob = _valid_header(len(body)) + body
    with pytest.raises(wire.WireError, match="not valid JSON"):
        wire.FrameDecoder().feed(blob)


def test_non_object_json_body_rejected():
    body = b"[1,2,3]"
    blob = _valid_header(len(body)) + body
    with pytest.raises(wire.WireError, match="JSON object"):
        wire.FrameDecoder().feed(blob)


def _binary_frame_parts(payload: dict) -> tuple[bytes, bytes]:
    blob = wire.encode_frame("stats", payload, codec=wire.CODEC_BINARY)
    return blob[:_HEADER_SIZE], blob[_HEADER_SIZE:]


def test_binary_envelope_trailing_bytes_rejected():
    header, body = _binary_frame_parts({"arr": np.arange(4, dtype=np.uint32)})
    body += b"\x00"
    tampered = _valid_header(len(body), version=wire.BINARY_VERSION)[:6] + struct.pack(
        ">I", len(body)
    )
    with pytest.raises(wire.WireError, match="trailing bytes"):
        wire.FrameDecoder().feed(tampered + body)


def test_binary_envelope_blob_size_mismatch_rejected():
    header, body = _binary_frame_parts({"arr": np.arange(4, dtype=np.uint32)})
    tampered = bytearray(body)
    # Flip one byte of the blob's 8-byte length field (it sits right
    # before the final 16 raw bytes of the uint32[4] payload).
    tampered[-17] ^= 0x01
    frame = _valid_header(len(tampered), version=wire.BINARY_VERSION) + bytes(tampered)
    with pytest.raises(wire.WireError):
        wire.FrameDecoder().feed(frame)


def test_binary_blob_reference_out_of_range_rejected():
    head = b'{"arr":{"__nd__":3}}'
    body = struct.pack(">I", len(head)) + head + struct.pack(">H", 0)
    frame = _valid_header(len(body), version=wire.BINARY_VERSION) + body
    with pytest.raises(wire.WireError, match="out of range"):
        wire.FrameDecoder().feed(frame)


def test_random_garbage_never_escapes_the_wire_error_hierarchy():
    rng = np.random.default_rng(31337)
    for _ in range(300):
        blob = rng.integers(0, 256, size=int(rng.integers(1, 200))).astype(
            np.uint8
        ).tobytes()
        decoder = wire.FrameDecoder()
        try:
            decoder.feed(blob)
        except wire.WireError:
            pass  # structured rejection: exactly what the server maps to
        # Anything else (IndexError, struct.error, ...) fails the test.


def test_mutated_valid_frames_never_escape_wire_errors():
    rng = np.random.default_rng(424242)
    payload = wire.encode_upload(3, batches_at(3), binary=True)
    pristine = wire.encode_frame("upload", payload, codec=wire.CODEC_BINARY)
    for _ in range(300):
        blob = bytearray(pristine)
        for _flip in range(int(rng.integers(1, 8))):
            blob[int(rng.integers(0, len(blob)))] = int(rng.integers(0, 256))
        decoder = wire.FrameDecoder()
        try:
            frames = decoder.feed(bytes(blob))
            for _frame_type, decoded in frames:
                # A frame that survived byte flips may still carry a
                # nonsense payload; the payload codec must reject it
                # structurally too, not crash.
                try:
                    wire.decode_upload(decoded)
                except wire.WireError:
                    pass
        except wire.WireError:
            pass


# -- hostile bytes against a live reactor --------------------------------------
@pytest.fixture()
def live_net():
    server = DatabaseServer(build_database(), snapshot_every=None)
    net = NetworkServer(
        server,
        max_connections=16,
        max_inflight=4,
        idle_timeout=30.0,
        loop_threads=2,
    )
    net.start()
    yield net
    net.close(stop_server=True)
    assert net._unhandled_errors == []


def _raw_conn(net: NetworkServer) -> socket.socket:
    sock = socket.create_connection(net.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _read_until_closed(sock: socket.socket, limit: int = 1 << 20) -> bytes:
    data = bytearray()
    try:
        while len(data) < limit:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data.extend(chunk)
    except (socket.timeout, OSError):
        pass
    return bytes(data)


def test_reactor_answers_garbage_with_structured_error_then_closes(live_net):
    sock = _raw_conn(live_net)
    sock.sendall(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n")
    data = _read_until_closed(sock)
    sock.close()
    frame_type, payload = wire.read_frame(io.BytesIO(data))
    assert frame_type == "error"
    assert payload["code"] == wire.ERR_BAD_FRAME


def test_reactor_answers_version_mismatch_structurally(live_net):
    sock = _raw_conn(live_net)
    blob = bytearray(wire.encode_frame("hello", {"client": "fuzz"}))
    blob[4] = 42  # unknown protocol version
    sock.sendall(bytes(blob))
    data = _read_until_closed(sock)
    sock.close()
    frame_type, payload = wire.read_frame(io.BytesIO(data))
    assert frame_type == "error"
    assert payload["code"] == wire.ERR_VERSION_MISMATCH


def test_reactor_rejects_hostile_length_prefix_without_buffering(live_net):
    sock = _raw_conn(live_net)
    sock.sendall(_valid_header(0x7FFFFFFF))
    data = _read_until_closed(sock)
    sock.close()
    frame_type, payload = wire.read_frame(io.BytesIO(data))
    assert frame_type == "error"
    assert payload["code"] == wire.ERR_BAD_FRAME
    # The declared 2 GiB body never accumulated server-side.
    assert live_net._reassembly_hwm <= wire.MAX_FRAME_BYTES


def test_mid_frame_disconnects_leave_no_debris(live_net):
    rng = np.random.default_rng(2024)
    blob = wire.encode_frame("hello", {"client": "fuzz"})
    for _ in range(30):
        cut = int(rng.integers(1, len(blob)))
        sock = _raw_conn(live_net)
        sock.sendall(blob[:cut])
        sock.close()
    deadline = _time.monotonic() + 5.0
    while live_net.open_connections and _time.monotonic() < deadline:
        _time.sleep(0.02)
    assert live_net.open_connections == 0
    # The reactor still serves a well-behaved exchange afterwards.  A
    # straggler from the accept backlog may transiently hold a slot
    # (client-side closes race the server-side accept), so tolerate a
    # connection-cap rejection and redial — exactly what the SDK does.
    deadline = _time.monotonic() + 5.0
    while True:
        sock = _raw_conn(live_net)
        sock.sendall(blob)
        frame_type, _payload = wire.read_frame(sock.makefile("rb"))
        sock.close()
        if frame_type == "welcome" or _time.monotonic() >= deadline:
            break
        _time.sleep(0.05)
    assert frame_type == "welcome"


def test_valid_frame_then_garbage_gets_answer_then_error(live_net):
    sock = _raw_conn(live_net)
    stream = sock.makefile("rb")
    sock.sendall(wire.encode_frame("hello", {"client": "fuzz"}) + b"\x00" * 32)
    frame_type, _payload = wire.read_frame(stream)
    assert frame_type == "welcome"
    frame_type, payload = wire.read_frame(stream)
    assert frame_type == "error"
    assert payload["code"] == wire.ERR_BAD_FRAME
    assert stream.read(1) == b""  # then the server hangs up
    sock.close()


def test_random_byte_storm_never_wedges_the_reactor(live_net):
    rng = np.random.default_rng(777)
    for _ in range(25):
        sock = _raw_conn(live_net)
        blob = rng.integers(0, 256, size=int(rng.integers(1, 500))).astype(
            np.uint8
        ).tobytes()
        try:
            sock.sendall(blob)
            _read_until_closed(sock, limit=1 << 16)
        finally:
            sock.close()
    # The loops survived: a fresh handshake still completes promptly.
    sock = _raw_conn(live_net)
    sock.sendall(wire.encode_frame("hello", {"client": "after-storm"}))
    frame_type, _ = wire.read_frame(sock.makefile("rb"))
    assert frame_type == "welcome"
    sock.close()


def test_response_type_frames_sent_as_requests_get_unsupported(live_net):
    sock = _raw_conn(live_net)
    stream = sock.makefile("rb")
    sock.sendall(wire.encode_frame("welcome", {"server": "imposter"}))
    frame_type, payload = wire.read_frame(stream)
    assert frame_type == "error"
    assert payload["code"] == wire.ERR_UNSUPPORTED
    # Not fatal: the connection still answers a real handshake.
    sock.sendall(wire.encode_frame("hello", {"client": "fuzz"}))
    frame_type, _ = wire.read_frame(stream)
    assert frame_type == "welcome"
    sock.close()


# -- hostile credentials against a tenant-aware reactor ------------------------
@pytest.fixture()
def tenant_net():
    from repro.tenancy import Tenant, TenantRegistry

    registry = TenantRegistry(
        [
            Tenant("fuzz-owner", "fuzz-owner-token", role="owner"),
            Tenant("fuzz-analyst", "fuzz-analyst-token", role="analyst"),
        ]
    )
    server = DatabaseServer(build_database(), snapshot_every=None)
    net = NetworkServer(
        server,
        registry=registry,
        max_connections=16,
        max_inflight=4,
        idle_timeout=30.0,
        loop_threads=2,
    )
    net.start()
    yield net
    net.close(stop_server=True)
    assert net._unhandled_errors == []


def _hello_response(net, payload: dict) -> tuple[str, dict]:
    sock = _raw_conn(net)
    try:
        sock.sendall(wire.encode_frame("hello", payload))
        stream = sock.makefile("rb")
        frame_type, body = wire.read_frame(stream)
        if frame_type == "error":
            # An auth failure must also close the connection cleanly.
            assert stream.read(1) == b""
        return frame_type, body
    finally:
        sock.close()


def test_malformed_credential_shapes_all_rejected_structurally(tenant_net):
    hostile_values = [
        None,
        0,
        1.5,
        True,
        [],
        ["fuzz-owner"],
        {},
        {"id": "fuzz-owner"},
        "",
    ]
    for tenant in hostile_values:
        for token in hostile_values:
            frame_type, body = _hello_response(
                tenant_net,
                {"client": "fuzz", "tenant": tenant, "token": token},
            )
            assert frame_type == "error"
            assert body["code"] == wire.ERR_AUTH_FAILED


def test_oversized_credentials_rejected_without_amplification(tenant_net):
    for size in (1025, 4096, 1 << 16):
        for payload in (
            {"tenant": "x" * size, "token": "fuzz-owner-token"},
            {"tenant": "fuzz-owner", "token": "x" * size},
            {"tenant": "x" * size, "token": "y" * size},
        ):
            payload["client"] = "fuzz"
            frame_type, body = _hello_response(tenant_net, payload)
            assert frame_type == "error"
            assert body["code"] == wire.ERR_AUTH_FAILED
            assert "1024" in body["message"]


def test_credential_errors_never_echo_the_presented_token(tenant_net):
    # The tenant *id* may appear in the refusal (it names the subject);
    # the presented *token* must never leak into any error surface.
    token_marker = "sekrit-fuzz-token-marker"
    for payload in (
        {"client": "fuzz", "tenant": "fuzz-owner", "token": token_marker},
        {"client": "fuzz", "tenant": "ghost-tenant", "token": token_marker},
    ):
        frame_type, body = _hello_response(tenant_net, payload)
        assert frame_type == "error"
        assert token_marker not in body.get("message", "")


def test_randomized_credential_garbage_never_wedges_auth(tenant_net):
    rng = np.random.default_rng(4242)
    alphabet = np.frombuffer(bytes(range(256)), dtype=np.uint8)
    for _ in range(60):
        tenant = bytes(
            rng.choice(alphabet, size=int(rng.integers(0, 64)))
        ).decode("latin1")
        token = bytes(
            rng.choice(alphabet, size=int(rng.integers(0, 64)))
        ).decode("latin1")
        frame_type, body = _hello_response(
            tenant_net, {"client": "fuzz", "tenant": tenant, "token": token}
        )
        assert frame_type == "error"
        assert body["code"] == wire.ERR_AUTH_FAILED
    # The registry still authenticates a well-formed principal.
    frame_type, body = _hello_response(
        tenant_net,
        {
            "client": "fuzz",
            "tenant": "fuzz-analyst",
            "token": "fuzz-analyst-token",
        },
    )
    assert frame_type == "welcome"
    assert body["tenant"] == "fuzz-analyst"
    assert body["role"] == "analyst"


def test_request_frames_before_credentialed_hello_are_refused(tenant_net):
    for frame in ("query", "upload", "stats", "snapshot", "reshard"):
        sock = _raw_conn(tenant_net)
        try:
            sock.sendall(wire.encode_frame(frame, {}))
            frame_type, body = wire.read_frame(sock.makefile("rb"))
        finally:
            sock.close()
        assert frame_type == "error"
        assert body["code"] == wire.ERR_AUTH_FAILED


# -- hostile bytes against the metrics listener --------------------------------
@pytest.fixture()
def metrics_endpoint(live_net):
    from repro.net.metrics import MetricsServer

    with MetricsServer(live_net, port=0) as metrics:
        yield metrics.address


def _raw_metrics_conn(address) -> socket.socket:
    sock = socket.create_connection(address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def test_metrics_truncated_request_lines_close_cleanly(metrics_endpoint):
    for blob in (b"", b"G", b"GET", b"GET /metrics", b"GET /metrics HTTP/1.1\r\n"):
        sock = _raw_metrics_conn(metrics_endpoint)
        try:
            if blob:
                sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            data = _read_until_closed(sock, limit=1 << 16)
        finally:
            sock.close()
        # Either nothing (too truncated to parse) or an HTTP error —
        # never a hang, never a traceback blob.
        assert b"Traceback" not in data


def test_metrics_garbage_requests_never_crash_the_listener(metrics_endpoint):
    rng = np.random.default_rng(9091)
    for _ in range(25):
        blob = (
            rng.integers(0, 256, size=int(rng.integers(1, 300)))
            .astype(np.uint8)
            .tobytes()
        )
        sock = _raw_metrics_conn(metrics_endpoint)
        try:
            sock.sendall(blob)
            _read_until_closed(sock, limit=1 << 16)
        except OSError:
            pass
        finally:
            sock.close()
    # The listener survived the storm and still serves a real scrape.
    sock = _raw_metrics_conn(metrics_endpoint)
    try:
        sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: fuzz\r\n\r\n")
        data = _read_until_closed(sock, limit=1 << 20)
    finally:
        sock.close()
    assert data.startswith(b"HTTP/1.0 200") or data.startswith(b"HTTP/1.1 200")
    assert b"incshrink_" in data


def test_metrics_rejects_writes_and_unknown_paths(metrics_endpoint):
    for request, expected in (
        (b"POST /metrics HTTP/1.1\r\nHost: f\r\nContent-Length: 0\r\n\r\n", b" 405 "),
        (b"DELETE /healthz HTTP/1.1\r\nHost: f\r\n\r\n", b" 405 "),
        (b"GET /admin HTTP/1.1\r\nHost: f\r\n\r\n", b" 404 "),
    ):
        sock = _raw_metrics_conn(metrics_endpoint)
        try:
            sock.sendall(request)
            data = _read_until_closed(sock, limit=1 << 16)
        finally:
            sock.close()
        assert expected in data.split(b"\r\n", 1)[0] + b" "
