"""Tests for the Transform protocol (Algorithm 1)."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.common.errors import ProtocolError
from repro.common.types import RecordBatch
from repro.core.budget import ContributionLedger
from repro.core.transform import TransformProtocol
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.storage.outsourced_table import OutsourcedTable
from repro.storage.secure_cache import SecureCache


@dataclass
class Pipeline:
    runtime: MPCRuntime
    view_def: JoinViewDefinition
    probe_store: OutsourcedTable
    driver_store: OutsourcedTable
    ledger: ContributionLedger
    transform: TransformProtocol
    cache: SecureCache

    def upload(self, time, probe_rows, driver_rows, probe_cap=4, driver_cap=3):
        for store, rows, cap, name in (
            (self.probe_store, probe_rows, probe_cap, self.view_def.probe_table),
            (self.driver_store, driver_rows, driver_cap, self.view_def.driver_table),
        ):
            batch = RecordBatch(
                store.schema,
                np.asarray(rows, dtype=np.uint32).reshape(-1, 2),
            ).padded_to(cap)
            shared = self.runtime.owner_share_table(
                store.schema, batch.rows, batch.is_real.astype(np.uint32)
            )
            store.append_batch(shared, time)
            self.ledger.register_batch(name, time, len(batch))


def make_pipeline(view_def, join_impl="sort-merge", seed=0) -> Pipeline:
    runtime = MPCRuntime(seed=seed)
    probe_store = OutsourcedTable(view_def.probe_schema, view_def.probe_table)
    driver_store = OutsourcedTable(view_def.driver_schema, view_def.driver_table)
    ledger = ContributionLedger(view_def.omega, view_def.budget)
    transform = TransformProtocol(
        runtime, view_def, probe_store, driver_store, ledger, join_impl
    )
    return Pipeline(
        runtime, view_def, probe_store, driver_store, ledger, transform,
        SecureCache(view_def.view_schema),
    )


class TestTransform:
    def test_counts_and_caches_new_view_entries(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[1, 1], [2, 1]], [[1, 2]])
        report = p.transform.run(1, p.cache)
        assert report.real_entries == 1  # (1,1) ⋈ (1,2) within window 2
        assert report.counter_value == 1
        assert report.cache_delta == tiny_view_def.omega * 3  # ω × driver capacity
        assert len(p.cache) == report.cache_delta

    def test_counter_accumulates_across_invocations(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[1, 1]], [[1, 1]])
        p.transform.run(1, p.cache)
        p.upload(2, [[2, 2]], [[2, 2]])
        report = p.transform.run(2, p.cache)
        assert report.counter_value == 2

    def test_probe_window_spans_budgeted_invocations(self, tiny_view_def):
        """b=6, ω=2 → a probe batch joins drivers for 3 invocations."""
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[7, 1]], [])
        p.transform.run(1, p.cache)
        p.upload(2, [], [[7, 2]])
        r2 = p.transform.run(2, p.cache)
        assert r2.real_entries == 1  # still active at its 2nd invocation
        p.upload(3, [], [[7, 3]])
        r3 = p.transform.run(3, p.cache)
        assert r3.real_entries == 1  # 3rd (final) invocation, Δts=2 ok
        assert r3.counter_value == 2  # cumulative since no Shrink ran

    def test_retired_probe_no_longer_joins(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[7, 1]], [])
        p.transform.run(1, p.cache)
        for t in (2, 3):
            p.upload(t, [], [])
            p.transform.run(t, p.cache)
        # Budget exhausted after 3 invocations; a 4th-step driver with a
        # timestamp inside the window must find nothing.
        p.upload(4, [], [[7, 3]])
        report = p.transform.run(4, p.cache)
        assert report.real_entries == 0

    def test_truncation_drops_counted(self, tiny_view_def):
        """ω=2: a driver matching 3 probes drops one pair."""
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[5, 1], [5, 1], [5, 1]], [[5, 2]])
        report = p.transform.run(1, p.cache)
        assert report.real_entries == 2
        assert report.dropped == 1

    def test_transcript_reveals_only_public_delta(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[1, 1], [2, 1]], [[1, 2]])
        p.transform.run(1, p.cache)
        events = p.runtime.transcript.of_protocol("transform")
        assert len(events) == 1
        assert set(events[0].payload) == {"cache_delta"}
        # The published size is the padded length, not the real count.
        assert events[0].payload["cache_delta"] == tiny_view_def.omega * 3

    def test_padded_delta_size_is_data_independent(self, tiny_view_def):
        sizes = []
        for rows in ([[1, 1]], [[1, 1], [2, 1], [3, 1], [4, 1]]):
            p = make_pipeline(tiny_view_def)
            p.upload(1, rows, [[1, 2]])
            report = p.transform.run(1, p.cache)
            sizes.append(report.cache_delta)
        assert sizes[0] == sizes[1]

    def test_missing_driver_batch_raises(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        with pytest.raises(ProtocolError, match="no driver batch"):
            p.transform.run(1, p.cache)

    def test_nested_loop_impl_produces_same_counts(self, tiny_view_def):
        reports = []
        for impl in ("sort-merge", "nested-loop"):
            p = make_pipeline(tiny_view_def, join_impl=impl)
            p.upload(1, [[1, 1], [2, 1], [1, 1]], [[1, 2], [2, 3]])
            reports.append(p.transform.run(1, p.cache))
        assert reports[0].real_entries == reports[1].real_entries
        assert reports[0].dropped == reports[1].dropped

    def test_invalid_join_impl_rejected(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TransformProtocol(
                p.runtime, tiny_view_def, p.probe_store, p.driver_store,
                p.ledger, join_impl="hash-join",
            )

    def test_simulated_seconds_positive(self, tiny_view_def):
        p = make_pipeline(tiny_view_def)
        p.upload(1, [[1, 1]], [[1, 2]])
        report = p.transform.run(1, p.cache)
        assert report.seconds > 0
