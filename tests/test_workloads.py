"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.workload.cpdb import cpdb_view_def, make_cpdb_workload
from repro.workload.stream import Workload
from repro.workload.tpcds import make_tpcds_workload, tpcds_view_def
from repro.workload.variants import FIGURE9_SCALES, make_workload


class TestTpcdsWorkload:
    def test_deterministic_per_seed(self):
        a = make_tpcds_workload(seed=5, n_steps=20)
        b = make_tpcds_workload(seed=5, n_steps=20)
        for sa, sb in zip(a.steps, b.steps):
            assert (sa.probe.rows == sb.probe.rows).all()
            assert (sa.driver.rows == sb.driver.rows).all()

    def test_different_seeds_differ(self):
        a = make_tpcds_workload(seed=1, n_steps=20)
        b = make_tpcds_workload(seed=2, n_steps=20)
        assert any(
            (sa.probe.rows != sb.probe.rows).any()
            for sa, sb in zip(a.steps, b.steps)
        )

    def test_padded_batch_sizes_constant(self):
        wl = make_tpcds_workload(seed=0, n_steps=30)
        probe_sizes = {len(s.probe) for s in wl.steps}
        driver_sizes = {len(s.driver) for s in wl.steps}
        assert len(probe_sizes) == 1
        assert len(driver_sizes) == 1

    def test_view_rate_near_paper_figure(self):
        """The paper reports ≈2.7 new view entries per step for TPC-ds."""
        wl = make_tpcds_workload(seed=0, n_steps=400)
        assert 1.8 <= wl.average_view_rate() <= 3.6

    def test_returns_reference_existing_sales(self):
        wl = make_tpcds_workload(seed=0, n_steps=50)
        sale_pids = {int(p) for p in wl.all_probe_rows()[:, 0]}
        return_pids = {int(p) for p in wl.all_driver_rows()[:, 0]}
        assert return_pids <= sale_pids

    def test_view_def_parameters_match_paper(self):
        vd = tpcds_view_def()
        assert vd.omega == 1
        assert vd.budget == 10
        assert vd.window_invocations == 10

    def test_recommended_timer_interval(self):
        wl = make_tpcds_workload(seed=0, n_steps=200)
        t = wl.recommended_timer_interval(theta=30.0)
        assert 8 <= t <= 17  # ⌊30/rate⌋ with rate ≈ 2-3.6


class TestCpdbWorkload:
    def test_view_rate_near_paper_figure(self):
        """The paper reports ≈9.8 new view entries per step for CPDB."""
        wl = make_cpdb_workload(seed=0, n_steps=300)
        assert 6.0 <= wl.average_view_rate() <= 14.0

    def test_multiplicity_exceeds_one(self):
        """Q2's join multiplicity > 1 is what exercises ω > 1."""
        wl = make_cpdb_workload(seed=0, n_steps=200)
        vd = wl.view_def
        probe = wl.all_probe_rows()
        driver = wl.all_driver_rows()
        per_probe = {}
        for row in probe:
            per_probe.setdefault(int(row[0]), 0)
        pairs = vd.logical_join_rows(probe, driver)
        for row in pairs:
            per_probe[int(row[0])] = per_probe.get(int(row[0]), 0)
        # At least one allegation joins 2+ awards.
        counts = {}
        for row in pairs:
            key = (int(row[0]), int(row[1]))
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values(), default=0) >= 2

    def test_view_def_parameters_match_paper(self):
        vd = cpdb_view_def()
        assert vd.omega == 10
        assert vd.budget == 20
        assert vd.window_invocations == 2
        assert vd.driver_public

    def test_deterministic_per_seed(self):
        a = make_cpdb_workload(seed=3, n_steps=15)
        b = make_cpdb_workload(seed=3, n_steps=15)
        for sa, sb in zip(a.steps, b.steps):
            assert (sa.driver.rows == sb.driver.rows).all()

    def test_hot_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            make_cpdb_workload(hot_fraction=1.5)


class TestVariantsAndScaling:
    def test_sparse_reduces_rate(self):
        std = make_workload("tpcds", seed=0, n_steps=200, variant="standard")
        sparse = make_workload("tpcds", seed=0, n_steps=200, variant="sparse")
        assert sparse.average_view_rate() < 0.4 * std.average_view_rate()

    def test_burst_increases_rate(self):
        # Spike steps are clamped by the fixed public capacity, so the
        # realised volume gain sits below the nominal spike multiplier.
        std = make_workload("tpcds", seed=0, n_steps=200, variant="standard")
        burst = make_workload("tpcds", seed=0, n_steps=200, variant="burst")
        assert burst.average_view_rate() > 1.3 * std.average_view_rate()

    def test_burst_is_bursty_not_just_bigger(self):
        """Burst concentrates arrivals into spike steps: the per-step
        variance-to-mean ratio must exceed the standard workload's."""
        import numpy as np

        def per_step_entries(wl):
            vd = wl.view_def
            probe = wl.all_probe_rows()
            counts = []
            for step in wl.steps:
                counts.append(
                    vd.logical_join_count(probe, step.driver.real_rows())
                )
            return np.asarray(counts, dtype=float)

        std = per_step_entries(
            make_workload("tpcds", seed=0, n_steps=150, variant="standard")
        )
        burst = per_step_entries(
            make_workload("tpcds", seed=0, n_steps=150, variant="burst")
        )
        assert burst.var() / max(burst.mean(), 1e-9) > std.var() / max(
            std.mean(), 1e-9
        )

    def test_variants_keep_padded_sizes(self):
        std = make_workload("tpcds", seed=0, n_steps=20, variant="standard")
        sparse = make_workload("tpcds", seed=0, n_steps=20, variant="sparse")
        assert len(std.steps[0].probe) == len(sparse.steps[0].probe)
        assert len(std.steps[0].driver) == len(sparse.steps[0].driver)

    def test_scale_grows_batches(self):
        one = make_workload("cpdb", seed=0, n_steps=10, scale=1.0)
        four = make_workload("cpdb", seed=0, n_steps=10, scale=4.0)
        assert len(four.steps[0].probe) > len(one.steps[0].probe)

    def test_figure9_scales_constant(self):
        assert FIGURE9_SCALES == (0.5, 1.0, 2.0, 4.0)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload("mysterydata")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload("tpcds", variant="tsunami")

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload("tpcds", scale=0)

    def test_omega_override_passes_through(self):
        wl = make_workload("cpdb", n_steps=5, omega=4, budget=8)
        assert wl.view_def.omega == 4
        assert wl.view_def.budget == 8


class TestWorkloadValidation:
    def test_needs_steps(self, tiny_view_def):
        with pytest.raises(ConfigurationError):
            Workload("w", tiny_view_def, [])

    def test_strictly_increasing_times(self):
        wl = make_tpcds_workload(seed=0, n_steps=5)
        times = [s.time for s in wl.steps]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
