"""Tests for the Shrink protocols (sDPTimer, sDPANT), flush, baselines."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn
from repro.common.types import Schema
from repro.core.baselines import ExhaustivePaddingSync, OneTimeMaterialization
from repro.core.counter import SharedCounter
from repro.core.flush import CacheFlusher
from repro.core.shrink_ant import SDPANT
from repro.core.shrink_timer import SDPTimer
from repro.dp.accountant import PrivacyAccountant
from repro.mpc.runtime import MPCRuntime
from repro.sharing.shared_value import SharedTable
from repro.storage.materialized_view import MaterializedView
from repro.storage.secure_cache import SecureCache

SCHEMA = Schema(("k", "ts"))


def setup(seed=0):
    runtime = MPCRuntime(seed=seed)
    counter = SharedCounter()
    cache = SecureCache(SCHEMA)
    view = MaterializedView(SCHEMA)
    return runtime, counter, cache, view


def fill_cache(runtime, counter, cache, n_real, n_dummy, seed=0):
    rows = np.asarray(
        [[i + 1, i + 1] for i in range(n_real)] + [[0, 0]] * n_dummy,
        dtype=np.uint32,
    ).reshape(-1, 2)
    flags = np.asarray([1] * n_real + [0] * n_dummy, dtype=np.uint32)
    cache.append(
        SharedTable.from_plain(SCHEMA, rows, flags, spawn(seed, "fill"))
    )
    with runtime.protocol("seed-counter") as ctx:
        counter.add(ctx, n_real)


class TestSDPTimer:
    def test_no_update_off_schedule(self):
        runtime, counter, cache, view = setup()
        timer = SDPTimer(runtime, counter, epsilon=1.0, b=2, interval=5)
        assert timer.step(3, cache, view) is None
        assert len(view) == 0

    def test_update_on_schedule(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, n_real=10, n_dummy=10)
        timer = SDPTimer(runtime, counter, epsilon=50.0, b=1, interval=5)
        report = timer.step(5, cache, view)
        assert report is not None
        # At ε=50 the noise is tiny: the read size ≈ true count.
        assert report.released_size in (9, 10, 11)
        assert len(view) == report.released_size
        assert timer.updates_done == 1

    def test_counter_reset_after_update(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 5, 5)
        timer = SDPTimer(runtime, counter, epsilon=50.0, b=1, interval=1)
        timer.step(1, cache, view)
        with runtime.protocol("check") as ctx:
            assert counter.read(ctx) == 0

    def test_negative_noise_defers_real_tuples(self):
        """Find a seed where the draw is negative and check deferral."""
        for seed in range(40):
            runtime, counter, cache, view = setup(seed=seed)
            fill_cache(runtime, counter, cache, 10, 0, seed=seed)
            timer = SDPTimer(runtime, counter, epsilon=0.5, b=2, interval=1)
            report = timer.step(1, cache, view)
            if report.released_size < 10:
                assert report.deferred_real == 10 - report.released_size
                assert len(cache) == 10 - report.released_size
                return
        pytest.fail("no negative-noise draw in 40 seeds (p ≈ 2^-40)")

    def test_update_publishes_only_noised_size(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 10, 10)
        timer = SDPTimer(runtime, counter, epsilon=1.0, b=2, interval=1)
        timer.step(1, cache, view)
        events = runtime.transcript.of_kind("view-update")
        assert len(events) == 1
        assert set(events[0].payload) == {"size"}

    def test_accountant_charged_per_release(self):
        runtime, counter, cache, view = setup()
        acc = PrivacyAccountant()
        timer = SDPTimer(runtime, counter, epsilon=1.0, b=4, interval=1, accountant=acc)
        timer.step(1, cache, view)
        timer.step(2, cache, view)
        assert acc.parallel_epsilon() == pytest.approx(0.25)  # ε/b per segment
        assert acc.sequential_epsilon() == pytest.approx(0.5)

    def test_invalid_parameters(self):
        runtime, counter, _, _ = setup()
        with pytest.raises(ConfigurationError):
            SDPTimer(runtime, counter, epsilon=0, b=1, interval=1)
        with pytest.raises(ConfigurationError):
            SDPTimer(runtime, counter, epsilon=1, b=0, interval=1)
        with pytest.raises(ConfigurationError):
            SDPTimer(runtime, counter, epsilon=1, b=1, interval=0)


class TestSDPANT:
    def test_triggers_when_count_far_above_threshold(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 200, 10)
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=10.0)
        report = ant.step(1, cache, view)
        assert report is not None
        assert len(view) > 0
        assert ant.updates_done == 1

    def test_does_not_trigger_far_below_threshold(self):
        runtime, counter, cache, view = setup()
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=500.0)
        assert ant.step(1, cache, view) is None
        assert len(view) == 0
        # The non-trigger is still observable (the SVT's ⊥ output).
        assert len(runtime.transcript.of_kind("ant-check")) == 1

    def test_threshold_rearmed_after_update(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 200, 0)
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=10.0)
        ant.step(1, cache, view)
        with runtime.protocol("peek") as ctx:
            first = ant._read_threshold(ctx)
        fill_cache(runtime, counter, cache, 200, 0, seed=1)
        ant.step(2, cache, view)
        with runtime.protocol("peek2") as ctx:
            second = ant._read_threshold(ctx)
        assert first != second

    def test_threshold_is_secret_shared(self):
        runtime, counter, cache, view = setup()
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=10.0)
        ant.step(1, cache, view)
        shares = ant._shared_threshold
        assert shares is not None
        # Neither share alone decodes to the noisy threshold: the stored
        # words are uniformly masked.
        from repro.sharing.fixed_point import decode_fixed

        with runtime.protocol("peek") as ctx:
            true_threshold = ant._read_threshold(ctx)
        assert decode_fixed(shares.share0[0]) != pytest.approx(true_threshold, abs=0.01)

    def test_counter_reset_only_on_trigger(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 5, 0)
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=1000.0)
        ant.step(1, cache, view)  # far below: no trigger
        with runtime.protocol("check") as ctx:
            assert counter.read(ctx) == 5

    def test_accountant_charged_only_on_release(self):
        runtime, counter, cache, view = setup()
        acc = PrivacyAccountant()
        ant = SDPANT(runtime, counter, epsilon=20.0, b=1, threshold=1000.0, accountant=acc)
        ant.step(1, cache, view)
        assert acc.sequential_epsilon() == 0.0
        fill_cache(runtime, counter, cache, 2000, 0)
        ant.step(2, cache, view)
        assert acc.sequential_epsilon() == pytest.approx(20.0)

    def test_invalid_parameters(self):
        runtime, counter, _, _ = setup()
        with pytest.raises(ConfigurationError):
            SDPANT(runtime, counter, epsilon=0, b=1, threshold=1)
        with pytest.raises(ConfigurationError):
            SDPANT(runtime, counter, epsilon=1, b=1, threshold=0)


class TestCacheFlusher:
    def test_due_schedule(self):
        runtime, _, _, _ = setup()
        flusher = CacheFlusher(runtime, flush_interval=10, flush_size=5)
        assert not flusher.due(5)
        assert flusher.due(10)
        assert flusher.due(20)
        assert not flusher.due(0)

    def test_flush_moves_prefix_and_recycles_rest(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 3, 20)
        flusher = CacheFlusher(runtime, flush_interval=1, flush_size=5)
        report = flusher.run(1, cache, view)
        assert report.flushed_rows == 5
        assert report.rescued_real == 3
        assert report.recycled_real == 0
        assert len(cache) == 0
        assert len(view) == 5
        assert view.update_count == 0  # flush is not a view update

    def test_flush_publishes_public_size_only(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 1, 1)
        CacheFlusher(runtime, 1, 2).run(1, cache, view)
        events = runtime.transcript.of_kind("cache-flush")
        assert len(events) == 1
        assert set(events[0].payload) == {"size"}

    def test_undersized_flush_destroys_reals_and_reports_it(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 10, 0)
        report = CacheFlusher(runtime, 1, 4).run(1, cache, view)
        assert report.rescued_real == 4
        assert report.recycled_real == 6


class TestBaselines:
    def test_ep_moves_everything_every_step(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 3, 7)
        ep = ExhaustivePaddingSync(runtime, counter)
        report = ep.step(1, cache, view)
        assert report.released_size == 10
        assert report.fetched_real == 3
        assert len(cache) == 0
        assert len(view) == 10
        with runtime.protocol("check") as ctx:
            assert counter.read(ctx) == 0

    def test_ep_view_keeps_all_padding(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 1, 99)
        ExhaustivePaddingSync(runtime, counter).step(1, cache, view)
        assert len(view) == 100  # dummies are never removed — EP's cost

    def test_otm_never_updates(self):
        runtime, counter, cache, view = setup()
        fill_cache(runtime, counter, cache, 5, 5)
        otm = OneTimeMaterialization()
        for t in range(1, 10):
            assert otm.step(t, cache, view) is None
        assert len(view) == 0
        assert len(cache) == 10
