"""Tests for the composed IncShrink ∘ DP-Sync harness (Theorem 17)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.composed import (
    ComposedRunConfig,
    run_composed_experiment,
)


class TestComposedConfig:
    def test_unknown_owner_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ComposedRunConfig(owner_strategy="telepathy")

    def test_non_dp_server_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ComposedRunConfig(server_mode="ep")


class TestComposedRuns:
    def test_every_step_owner_matches_plain_deployment(self):
        """With the pass-through owner strategy the composition reduces
        to the plain engine: zero owner gap, ε total = server ε."""
        res = run_composed_experiment(
            ComposedRunConfig(owner_strategy="every-step", n_steps=40)
        )
        assert res.owner_max_gap == 0
        assert res.total_epsilon == pytest.approx(res.config.server_epsilon)

    def test_dp_timer_owner_creates_gap_and_adds_epsilon(self):
        res = run_composed_experiment(
            ComposedRunConfig(
                owner_strategy="dp-timer",
                owner_epsilon=1.0,
                owner_interval=3,
                n_steps=40,
            )
        )
        assert res.owner_max_gap > 0
        assert res.total_epsilon == pytest.approx(1.0 + 1.5)

    def test_dp_ant_owner_runs(self):
        res = run_composed_experiment(
            ComposedRunConfig(
                owner_strategy="dp-ant", owner_epsilon=2.0, n_steps=40
            )
        )
        assert res.summary.query_count == 40
        assert res.total_epsilon == pytest.approx(2.0 + 1.5)

    def test_public_driver_needs_no_owner_strategy(self):
        """CPDB's Award table is public: only the Allegation owner runs
        DP-Sync, and the composition still works end to end."""
        res = run_composed_experiment(
            ComposedRunConfig(
                dataset="cpdb",
                owner_strategy="dp-timer",
                n_steps=30,
                timer_interval=3,
            )
        )
        assert res.summary.query_count == 30

    def test_theorem17_bound_dominates_measured_error(self):
        """The composed error bound is an upper envelope: measured avg L1
        stays below it (the bound is deliberately loose)."""
        res = run_composed_experiment(
            ComposedRunConfig(
                owner_strategy="dp-timer", owner_epsilon=1.0, n_steps=60
            )
        )
        assert res.summary.avg_l1_error < res.theorem17_bound

    def test_owner_gap_increases_error_vs_passthrough(self):
        """Holding records back at the owner can only hurt accuracy
        relative to immediate upload, all else equal."""
        passthrough = run_composed_experiment(
            ComposedRunConfig(owner_strategy="every-step", n_steps=60, seed=3)
        )
        delayed = run_composed_experiment(
            ComposedRunConfig(
                owner_strategy="dp-timer",
                owner_epsilon=0.3,   # heavy noise → long gaps
                owner_interval=5,
                n_steps=60,
                seed=3,
            )
        )
        assert delayed.owner_max_gap > passthrough.owner_max_gap
        assert delayed.summary.avg_l1_error > passthrough.summary.avg_l1_error

    def test_server_ant_mode_composition(self):
        res = run_composed_experiment(
            ComposedRunConfig(
                owner_strategy="every-step", server_mode="dp-ant", n_steps=40
            )
        )
        assert res.theorem17_bound > 0
