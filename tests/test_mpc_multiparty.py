"""Tests for the N-server extension (Section 8)."""

import numpy as np
import pytest

from repro.common.errors import ProtocolError, SecurityError
from repro.common.types import Schema
from repro.mpc.multiparty import NShare, ServerGroup

SCHEMA = Schema(("k", "ts"))


def make_group(n=3, seed=0):
    return ServerGroup(n, seed=seed)


class TestNSharing:
    def test_owner_share_roundtrip(self):
        group = make_group(4)
        rows = np.asarray([[1, 2], [3, 4]], dtype=np.uint32)
        flags = np.asarray([1, 0], dtype=np.uint32)
        table = group.owner_share_table(SCHEMA, rows, flags)
        with group.protocol("p") as ctx:
            out_rows, out_flags = ctx.reveal_table(table)
        assert (out_rows == rows).all()
        assert out_flags.tolist() == [True, False]

    def test_in_protocol_reshare_roundtrip(self):
        group = make_group(5)
        values = np.arange(16, dtype=np.uint32)
        with group.protocol("p") as ctx:
            shared = ctx.share(values)
            assert shared.n_servers == 5
            assert (ctx.reveal(shared) == values).all()

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_any_strict_coalition_sees_uniform_noise(self, n):
        """Up to N−1 corrupted servers learn nothing (Lemma 9)."""
        group = make_group(n)
        secret = np.full(512, 7, dtype=np.uint32)
        table = group.owner_share_table(SCHEMA, secret.reshape(-1, 2), np.ones(256))
        for coalition_size in range(1, n):
            view = group.corruption_view(
                table.rows, corrupted=list(range(coalition_size))
            )
            # A constant-valued secret must not shine through the XOR of
            # any strict share subset.
            assert (view.ravel() == 7).sum() < 16

    def test_full_coalition_rejected(self):
        group = make_group(3)
        table = group.owner_share_table(
            SCHEMA, np.asarray([[1, 2]], dtype=np.uint32), np.ones(1)
        )
        with pytest.raises(SecurityError):
            group.corruption_view(table.rows, corrupted=[0, 1, 2])

    def test_share_count_mismatch_detected(self):
        group = make_group(3)
        foreign = ServerGroup(4).owner_share_table(
            SCHEMA, np.asarray([[1, 2]], dtype=np.uint32), np.ones(1)
        )
        with group.protocol("p") as ctx:
            with pytest.raises(ProtocolError, match="share count"):
                ctx.reveal(foreign.rows)

    def test_nshare_validation(self):
        with pytest.raises(ProtocolError):
            NShare([np.zeros(2, dtype=np.uint32)])
        with pytest.raises(ProtocolError):
            NShare([np.zeros(2, dtype=np.uint32), np.zeros(3, dtype=np.uint32)])


class TestNPartyProtocolScope:
    def test_reveal_outside_scope_raises(self):
        group = make_group(3)
        table = group.owner_share_table(
            SCHEMA, np.asarray([[1, 2]], dtype=np.uint32), np.ones(1)
        )
        with group.protocol("p") as ctx:
            pass
        with pytest.raises(SecurityError):
            ctx.reveal(table.rows)

    def test_protocols_do_not_nest(self):
        group = make_group(3)
        with group.protocol("outer"):
            with pytest.raises(ProtocolError):
                with group.protocol("inner"):
                    pass

    def test_minimum_two_servers(self):
        with pytest.raises(ProtocolError):
            ServerGroup(1)

    def test_transcript_records_events(self):
        group = make_group(3)
        with group.protocol("shrink-n", time=4) as ctx:
            ctx.publish("view-update", size=9)
        assert group.transcript.of_kind("view-update")[0].payload == {"size": 9}


class TestNPartyNoise:
    def test_single_noise_instance_regardless_of_n(self):
        """Growing the server set must not inject more noise: the draw's
        distribution is one Lap(Δ/ε) for every N."""
        stds = {}
        for n in (2, 3, 6):
            group = make_group(n, seed=1)
            with group.protocol("p") as ctx:
                draws = [ctx.joint_laplace(1.0, 1.0) for _ in range(20_000)]
            stds[n] = np.std(draws)
        # Lap(1) has std sqrt(2) ≈ 1.414 for every group size.
        for n, std in stds.items():
            assert std == pytest.approx(np.sqrt(2), rel=0.1), f"N={n}"

    def test_noise_parameter_validation(self):
        group = make_group(2)
        with group.protocol("p") as ctx:
            with pytest.raises(ValueError):
                ctx.joint_laplace(0.0, 1.0)

    def test_noise_charges_cost(self):
        group = make_group(3)
        with group.protocol("p") as ctx:
            ctx.joint_laplace(1.0, 1.0)
            assert ctx.gates == group.cost_model.laplace_gates
            assert ctx.seconds > 0


class TestNPartyViewUpdateFlow:
    def test_dp_sized_cache_read_across_n_servers(self):
        """A miniature Shrink over an N-shared cache: sort real-first,
        fetch a noised prefix, re-share the remainder — end to end with
        no party ever holding plaintext outside the scope."""
        from repro.oblivious.sort import composite_key, oblivious_sort

        group = make_group(4, seed=2)
        rows = np.asarray(
            [[1, 1], [0, 0], [2, 2], [0, 0], [3, 3]], dtype=np.uint32
        )
        flags = np.asarray([1, 0, 1, 0, 1], dtype=np.uint32)
        cache = group.owner_share_table(SCHEMA, rows, flags)

        class _CtxAdapter:
            """Adapts the N-party context to the 2-party sort helper."""

            def __init__(self, ctx):
                self._ctx = ctx

            def charge_compare_exchanges(self, count, words):
                self._ctx.charge_gates(
                    count * group.cost_model.compare_exchange_gates(words)
                )

        with group.protocol("shrink-n", time=1) as ctx:
            plain_rows, plain_flags = ctx.reveal_table(cache)
            keys = composite_key(
                np.where(plain_flags, 0, 1).astype(np.uint32),
                np.arange(len(plain_rows), dtype=np.uint32),
            )
            _, [sorted_rows, sorted_flags] = oblivious_sort(
                _CtxAdapter(ctx), keys, [plain_rows, plain_flags.astype(np.uint32)], 3
            )
            size = max(0, round(3 + ctx.joint_laplace(1.0, 100.0)))
            fetched = ctx.share_table(
                SCHEMA, sorted_rows[:size], sorted_flags[:size]
            )
            ctx.publish("view-update", size=size)

        with group.protocol("audit") as ctx:
            fetched_rows, fetched_flags = ctx.reveal_table(fetched)
        # At ε=100 the noise is negligible: all three reals fetched first.
        assert fetched_flags[:3].all()
        assert {int(r[0]) for r in fetched_rows[:3]} == {1, 2, 3}
