"""The distributed scan fabric is a no-op for everything but the host.

Acceptance criteria of :mod:`repro.dist`: for randomized workloads,
``backend="remote"`` — shard scans scattered over a fleet of shard
worker daemons with replication — returns **byte-identical** answers,
charges the **identical total gates**, and reports the **identical
realized ε** as the in-process executor, for shard counts {1, 2, 4} ×
replication {1, 2}, with and without a worker dying.  Failover is
exercised two ways: a worker stopped *between* queries (the sync phase
routes around it) and a worker killed *mid-scan* with its reply
provably in flight (the scatter re-dispatches the batch to a replica
and the re-scatter gauge increments) — including a real subprocess
SIGKILL.

Alongside the end-to-end matrix, this file unit-tests the shared
full-jitter backoff helper, the new wire frame codecs, endpoint
parsing, the worker daemon's consistency refusals (append gaps, stale
epochs), and the gauge surfaces.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time as _time

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import spawn
from repro.common.types import RecordBatch
from repro.dist import (
    RemoteScanBackend,
    ShardWorker,
    WorkerEndpoint,
    parse_worker_endpoints,
)
from repro.dist.membership import WorkerLink
from repro.mpc.cost_model import CostModel
from repro.net import protocol as wire
from repro.net.backoff import backoff_delay
from repro.query.parallel import ParallelScanExecutor
from repro.sharing.shared_value import SharedTable

from test_sharding_equivalence import (
    DRIVER_SCHEMA,
    PROBE_SCHEMA,
    build_database,
    dashboard_query,
    make_view_def,
    random_script,
    run_deployment,
)


# -- the shared backoff helper -------------------------------------------------
class TestBackoffDelay:
    def test_window_doubles_then_caps(self):
        full = lambda: 1.0  # noqa: E731 - deterministic "jitter"
        assert backoff_delay(0, base=0.05, cap=2.0, rng=full) == 0.05
        assert backoff_delay(1, base=0.05, cap=2.0, rng=full) == 0.1
        assert backoff_delay(3, base=0.05, cap=2.0, rng=full) == 0.4
        assert backoff_delay(50, base=0.05, cap=2.0, rng=full) == 2.0

    def test_full_jitter_spans_zero_to_window(self):
        assert backoff_delay(5, rng=lambda: 0.0) == 0.0
        for _ in range(100):
            d = backoff_delay(4, base=0.05, cap=2.0)
            assert 0.0 <= d <= 0.05 * 2**4

    def test_huge_attempt_does_not_overflow(self):
        assert backoff_delay(10_000, cap=7.5, rng=lambda: 1.0) == 7.5

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)
        with pytest.raises(ValueError):
            backoff_delay(0, base=-0.1)

    def test_client_connect_uses_the_shared_schedule(self, monkeypatch):
        """The analyst client redials on backoff_delay, not a linear ramp."""
        from repro.net.client import IncShrinkClient

        delays = []
        monkeypatch.setattr(
            "repro.net.client.backoff_delay",
            lambda attempt, base: delays.append((attempt, base)) or 0.0,
        )
        client = IncShrinkClient(
            "127.0.0.1", _free_unbound_port(), connect_retries=3,
            retry_backoff=0.01, timeout=0.2,
        )
        with pytest.raises(ConnectionError):
            client.connect()
        assert delays == [(0, 0.01), (1, 0.01)]


def _free_unbound_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


# -- wire codecs of the distributed frames -------------------------------------
class TestDistFrameCodecs:
    def test_dist_frame_codes_extend_without_collision(self):
        codes = list(wire.FRAME_CODES.values())
        assert len(codes) == len(set(codes))
        for frame in wire.DIST_FRAMES:
            assert frame in wire.FRAME_CODES

    def test_cost_model_round_trip(self):
        model = CostModel(gates_per_second=1e6, laplace_gates=123)
        assert wire.decode_cost_model(wire.encode_cost_model(model)) == model

    @pytest.mark.parametrize("binary", [False, True])
    def test_shard_content_round_trip(self, binary):
        gen = np.random.default_rng(0)
        arrays = [
            gen.integers(0, 2**32, size=(7, 3), dtype=np.uint32),
            gen.integers(0, 2**32, size=(7, 3), dtype=np.uint32),
            gen.integers(0, 2, size=7, dtype=np.uint32),
            gen.integers(0, 2, size=7, dtype=np.uint32),
        ]
        entry = wire.encode_shard_content(*arrays, binary=binary)
        if not binary:  # the JSON path is the v2 snapshot array codec
            assert entry["rows0"]["dtype"] == "uint32"
        out = wire.decode_shard_content(entry)
        for a, b in zip(arrays, out):
            np.testing.assert_array_equal(a, b)

    def test_shard_content_shape_mismatch_rejected(self):
        entry = wire.encode_shard_content(
            np.zeros((3, 2), dtype=np.uint32),
            np.zeros((3, 2), dtype=np.uint32),
            np.zeros(3, dtype=np.uint32),
            np.zeros(2, dtype=np.uint32),  # flag length != row count
        )
        with pytest.raises(wire.WireError, match="flag"):
            wire.decode_shard_content(entry)

    def test_scan_spec_round_trip(self):
        spec = wire.encode_scan_spec(
            sum_indices=(1, 2),
            need_count=True,
            group_column=0,
            group_domain=(0, 1, 2, 3),
            clause_specs=((1, 0, 40),),
            payload_words=3,
            predicate_words=3,
        )
        out = wire.decode_scan_spec(spec)
        assert out["sum_indices"] == (1, 2)
        assert out["group_domain"] == (0, 1, 2, 3)
        assert out["clause_specs"] == ((1, 0, 40),)

    @pytest.mark.parametrize("binary", [False, True])
    def test_scan_partial_round_trip(self, binary):
        counts = np.array([3, 1], dtype=np.int64)
        sums = np.array([[5, 6], [7, 8]], dtype=np.uint64)
        entry = wire.encode_scan_partial(2, counts, sums, 999, binary=binary)
        shard, c, s, g = wire.decode_scan_partial(entry)
        assert (shard, g) == (2, 999)
        np.testing.assert_array_equal(c, counts)
        np.testing.assert_array_equal(s, sums)


class TestEndpointParsing:
    def test_parses_comma_list_with_spaces(self):
        eps = parse_worker_endpoints("127.0.0.1:7001, 127.0.0.1:7002,")
        assert eps == [
            WorkerEndpoint("127.0.0.1", 7001),
            WorkerEndpoint("127.0.0.1", 7002),
        ]
        assert eps[0].name == "127.0.0.1:7001"

    @pytest.mark.parametrize("bad", ["", "no-port", "host:99999", ":7001"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            parse_worker_endpoints(bad)


# -- executor surface ----------------------------------------------------------
class TestRemoteBackendSurface:
    def test_remote_backend_requires_coordinator(self):
        with pytest.raises(ConfigurationError, match="remote"):
            ParallelScanExecutor(backend="remote")

    def test_backend_for_remote_serves_single_shard_views(self):
        """The one-worker baseline scans remotely too — no silent local
        fallback on single-shard views."""
        executor = ParallelScanExecutor(backend="remote", remote=object())
        view = _tiny_view(n_shards=1)
        assert executor.backend_for(view) == "remote"

    def test_coordinator_validates_configuration(self):
        with pytest.raises(ConfigurationError, match=">= 1 worker"):
            RemoteScanBackend([])
        with pytest.raises(ConfigurationError, match="replication"):
            RemoteScanBackend([WorkerEndpoint("127.0.0.1", 1)], replication=0)

    def test_replication_capped_at_fleet_size(self):
        remote = RemoteScanBackend(
            [WorkerEndpoint("127.0.0.1", 1), WorkerEndpoint("127.0.0.1", 2)],
            replication=5,
        )
        assert remote.replication == 2
        ring = remote.replica_links(3)
        assert [l.endpoint.port for l in ring] == [2, 1]

    def test_start_with_no_reachable_worker_raises(self):
        remote = RemoteScanBackend(
            [WorkerEndpoint("127.0.0.1", _free_unbound_port())]
        )
        with pytest.raises(ProtocolError, match="no shard worker reachable"):
            remote.start()


def _tiny_view(n_shards: int):
    from repro.server.sharding import ShardLayout
    from repro.storage.materialized_view import MaterializedView

    vd = make_view_def()
    view = MaterializedView(vd.view_schema, layout=ShardLayout(n_shards))
    gen = np.random.default_rng(0)
    rows = gen.integers(0, 8, size=(6, vd.view_schema.width), dtype=np.uint32)
    view.append(
        SharedTable.from_plain(
            vd.view_schema, rows, np.ones(6, dtype=np.uint32), spawn(2, "t")
        )
    )
    return view


# -- the worker daemon's consistency refusals ----------------------------------
@pytest.fixture()
def worker_and_link():
    with ShardWorker() as worker:
        link = WorkerLink(WorkerEndpoint(*worker.address), timeout=10.0)
        link.connect()
        try:
            yield worker, link
        finally:
            link.disconnect()


def _content(n: int = 4, width: int = 3) -> dict:
    gen = np.random.default_rng(1)
    return wire.encode_shard_content(
        gen.integers(0, 9, size=(n, width), dtype=np.uint32),
        gen.integers(0, 9, size=(n, width), dtype=np.uint32),
        gen.integers(0, 2, size=n, dtype=np.uint32),
        gen.integers(0, 2, size=n, dtype=np.uint32),
    )


class TestWorkerDaemon:
    def test_handshake_negotiates_binary_and_reports_role(self, worker_and_link):
        worker, link = worker_and_link
        assert link.codec == wire.CODEC_BINARY
        assert link.alive

    def test_assign_then_append_tracks_rows(self, worker_and_link):
        worker, link = worker_and_link
        out = link.exchange(
            "shard_assign",
            {"view": "v1", "shard": 0, "epoch": 0, **_content(4)},
            expect="shard_ok",
        )
        assert out["rows"] == 4
        out = link.exchange(
            "shard_append",
            {"view": "v1", "shard": 0, "epoch": 0, "start": 4, **_content(2)},
            expect="shard_ok",
        )
        assert out["rows"] == 6
        assert worker.gauges()["hosted_rows"] == 6

    def test_append_gap_refused(self, worker_and_link):
        _, link = worker_and_link
        link.exchange(
            "shard_assign",
            {"view": "v1", "shard": 0, "epoch": 0, **_content(4)},
            expect="shard_ok",
        )
        with pytest.raises(wire.RemoteError, match="append gap"):
            link.exchange(
                "shard_append",
                {"view": "v1", "shard": 0, "epoch": 0, "start": 7, **_content(2)},
                expect="shard_ok",
            )
        # The connection survives a refused payload.
        assert link.alive
        assert link.exchange("heartbeat", {}, expect="heartbeat_ok")

    def test_stale_epoch_refused(self, worker_and_link):
        _, link = worker_and_link
        link.exchange(
            "shard_assign",
            {"view": "v1", "shard": 0, "epoch": 0, **_content(4)},
            expect="shard_ok",
        )
        with pytest.raises(wire.RemoteError, match="stale"):
            link.exchange(
                "shard_append",
                {"view": "v1", "shard": 0, "epoch": 3, "start": 4, **_content(2)},
                expect="shard_ok",
            )

    def test_scan_of_unassigned_shard_refused(self, worker_and_link):
        _, link = worker_and_link
        spec = wire.encode_scan_spec(
            sum_indices=(), need_count=True, group_column=None,
            group_domain=None, clause_specs=(), payload_words=3,
            predicate_words=3,
        )
        with pytest.raises(wire.RemoteError, match="unassigned"):
            link.exchange(
                "scan",
                {
                    "view": "v9", "epoch": 0, "spec": spec,
                    "cost_model": wire.encode_cost_model(CostModel()),
                    "tasks": [{"shard": 0, "rows": 4, "start": 0}],
                },
                expect="scan_partial",
            )

    def test_analyst_frames_unsupported(self, worker_and_link):
        _, link = worker_and_link
        with pytest.raises(wire.RemoteError, match="do not serve"):
            link.exchange("query", {}, expect="result")


# -- end-to-end equivalence: remote fleet ≡ in-process -------------------------
def run_remote_deployment(
    n_shards: int,
    seed: int,
    workers: list[ShardWorker],
    replication: int,
    kill_between_queries: bool = False,
):
    """The exact upload/step/query script of ``run_deployment``, with the
    scans scattered over ``workers``.  With ``kill_between_queries`` the
    first worker is stopped halfway through the stream."""
    db = build_database(n_shards, "thread")
    db.set_remote_workers(
        [WorkerEndpoint(*w.address) for w in workers],
        replication=replication,
        heartbeat_interval=0.2,
    )
    vd = make_view_def("full")
    from repro.query.ast import AggregateSpec, LogicalQuery

    queries = [
        LogicalQuery.for_view(vd, AggregateSpec.count()),
        dashboard_query(vd),
    ]
    script = random_script(seed)
    answers = []
    for t, (probe, driver) in enumerate(script, start=1):
        ts_col = np.full((len(probe), 1), t, dtype=np.uint32)
        probe = np.hstack([probe[:, :1], ts_col]) if len(probe) else probe
        driver_ts = np.full((len(driver), 1), t, dtype=np.uint32)
        driver = np.hstack([driver[:, :1], driver_ts]) if len(driver) else driver
        db.upload(
            t,
            {
                "orders": RecordBatch(
                    PROBE_SCHEMA, probe.reshape(-1, 2)
                ).padded_to(4),
                "shipments": RecordBatch(
                    DRIVER_SCHEMA, driver.reshape(-1, 2)
                ).padded_to(4),
            },
        )
        db.step(t)
        if kill_between_queries and t == len(script) // 2:
            workers[0].stop()
        for q in queries:
            answers.append(db.query(q, t).answers)
    total_gates = sum(r.gates for r in db.runtime.runs)
    return db, answers, total_gates


@pytest.fixture()
def fleet():
    workers = [ShardWorker().start() for _ in range(2)]
    yield workers
    for w in workers:
        w.stop()


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@pytest.mark.parametrize("replication", [1, 2])
def test_remote_equals_in_process(n_shards, replication, fleet):
    """Byte-identical answers, identical gates, identical realized ε
    across the {1,2,4} shard × {1,2} replication matrix."""
    base_db, base_answers, base_gates = run_deployment(n_shards, seed=0)
    db, answers, gates = run_remote_deployment(
        n_shards, 0, fleet, replication
    )
    try:
        assert answers == base_answers
        assert gates == base_gates
        assert db.realized_epsilon() == base_db.realized_epsilon()
        assert (
            db.accountant.snapshot_state() == base_db.accountant.snapshot_state()
        )
        # The fleet actually served: every shard of the queried view's
        # container landed on `replication` workers.
        stats = db.remote_worker_stats()
        assigned = sum(v["assigned_shards"] for v in stats.values())
        assert assigned == n_shards * min(replication, len(fleet))
    finally:
        db.close_remote()


def test_remote_worker_death_between_queries_fails_over(fleet):
    """With replication 2, stopping a worker mid-stream is invisible to
    answers, gates, and ε: the sync phase routes around the corpse."""
    base_db, base_answers, base_gates = run_deployment(4, seed=1)
    db, answers, gates = run_remote_deployment(
        4, 1, fleet, replication=2, kill_between_queries=True
    )
    try:
        assert answers == base_answers
        assert gates == base_gates
        assert db.realized_epsilon() == base_db.realized_epsilon()
        stats = db.remote_worker_stats()
        alive = [v["alive"] for v in stats.values()]
        assert sorted(alive) == [False, True]
    finally:
        db.close_remote()


def test_remote_death_with_no_replica_errors_cleanly(fleet):
    """Replication 1 has nowhere to fail over: the query must error with
    a clean ProtocolError naming the shard, not hang or mis-answer."""
    db, _, _ = run_remote_deployment(4, 0, fleet, replication=1)
    try:
        db.set_incremental(False)
        q = dashboard_query(make_view_def("full"))
        assert db.query(q, 7).answers  # healthy first
        for w in fleet:
            w.stop()
        with pytest.raises(ProtocolError):
            db.query(q, 7)
    finally:
        db.close_remote()


def test_mid_scan_worker_kill_rescatters_and_matches(fleet, monkeypatch):
    """Kill a worker while its scan reply is provably in flight (the
    stall hook keeps it there): the batch re-scatters to the replica,
    the re-scatter gauge increments, and the answer — and realized ε —
    are byte-identical."""
    base_db, _, _ = run_deployment(4, seed=0)
    q = dashboard_query(make_view_def("full"))
    expected = base_db.query(q, 7).answers
    eps_expected = base_db.realized_epsilon()

    db, _, _ = run_remote_deployment(4, 0, fleet, replication=2)
    try:
        db.set_incremental(False)  # force real remote scans every query
        assert db.query(q, 7).answers == expected  # replicas all warm

        monkeypatch.setenv("REPRO_DIST_SCAN_STALL_MS", "400")
        result = {}

        def run_query():
            result["answers"] = db.query(q, 7).answers

        thread = threading.Thread(target=run_query)
        thread.start()
        _time.sleep(0.15)  # sync done, scan frames dispatched, stalled
        fleet[0].stop()  # dies with its scan in flight
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert result["answers"] == expected
        assert db.scan_executor.remote.total_rescatters > 0
        stats = db.remote_worker_stats()
        assert sum(v["rescatters"] for v in stats.values()) > 0
        assert db.realized_epsilon() == eps_expected
    finally:
        db.close_remote()


# -- real processes: SIGKILL a daemon mid-scan ---------------------------------
def _spawn_worker_daemon(extra_env=None) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    src = str(
        __import__("pathlib").Path(__file__).resolve().parents[1] / "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.match(r"shard worker listening on [\d.]+:(\d+)", line)
    assert match, f"unexpected daemon banner: {line!r}"
    return proc, int(match.group(1))


def test_sigkill_worker_process_mid_scan_is_byte_identical():
    """The headline failover property on real OS processes: SIGKILL one
    daemon while a scan is in flight; the answer is byte-identical at
    identical realized ε and the re-scatter gauge increments."""
    base_db, _, _ = run_deployment(4, seed=0)
    q = dashboard_query(make_view_def("full"))
    expected = base_db.query(q, 7).answers
    eps_expected = base_db.realized_epsilon()

    stall = {"REPRO_DIST_SCAN_STALL_MS": "500"}
    victim, victim_port = _spawn_worker_daemon(stall)
    survivor, survivor_port = _spawn_worker_daemon(stall)
    db = None
    try:
        db = build_database(4, "thread")
        db.set_remote_workers(
            [
                WorkerEndpoint("127.0.0.1", victim_port),
                WorkerEndpoint("127.0.0.1", survivor_port),
            ],
            replication=2,
            heartbeat_interval=0.25,
        )
        db.set_incremental(False)
        script = random_script(0)
        for t, (probe, driver) in enumerate(script, start=1):
            ts_col = np.full((len(probe), 1), t, dtype=np.uint32)
            probe = np.hstack([probe[:, :1], ts_col]) if len(probe) else probe
            driver_ts = np.full((len(driver), 1), t, dtype=np.uint32)
            driver = (
                np.hstack([driver[:, :1], driver_ts]) if len(driver) else driver
            )
            db.upload(
                t,
                {
                    "orders": RecordBatch(
                        PROBE_SCHEMA, probe.reshape(-1, 2)
                    ).padded_to(4),
                    "shipments": RecordBatch(
                        DRIVER_SCHEMA, driver.reshape(-1, 2)
                    ).padded_to(4),
                },
            )
            db.step(t)
        assert db.query(q, 7).answers == expected  # fleet warm + correct

        result = {}

        def run_query():
            result["answers"] = db.query(q, 7).answers

        thread = threading.Thread(target=run_query)
        thread.start()
        _time.sleep(0.2)  # scan frames out, both daemons stalling
        os.kill(victim.pid, signal.SIGKILL)
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert result["answers"] == expected
        assert db.realized_epsilon() == eps_expected
        assert db.scan_executor.remote.total_rescatters > 0
    finally:
        if db is not None and hasattr(db, "close_remote"):
            db.close_remote()
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


# -- serving-stats surface -----------------------------------------------------
def test_serving_stats_expose_per_worker_gauges(fleet):
    """The ``stats`` frame's ``workers`` block carries the fleet gauges
    (assigned shards, heartbeat age, scans served, re-scatters)."""
    from repro.server.runtime import DatabaseServer

    db, _, _ = run_remote_deployment(2, 0, fleet, replication=2)
    server = DatabaseServer(db)
    try:
        payload = server.observability()
        workers = payload["workers"]
        assert len(workers) == 2
        for gauges in workers.values():
            assert gauges["alive"] is True
            assert gauges["assigned_shards"] > 0
            assert gauges["rescatters"] == 0
            assert gauges["last_heartbeat_age_seconds"] is not None
            assert "scans_served" in gauges
    finally:
        server.stop()


def test_stats_workers_block_empty_without_fleet():
    db = build_database(2, "thread")
    from repro.server.runtime import DatabaseServer

    server = DatabaseServer(db)
    try:
        assert server.observability()["workers"] == {}
    finally:
        server.stop()
