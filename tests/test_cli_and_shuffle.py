"""Tests for the CLI entry point and the oblivious shuffle utility."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.common.types import multiset
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.shuffle import oblivious_shuffle
from repro.oblivious.sort import network_comparator_count


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "--dataset", "tpcds", "--mode", "ep", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "avg L1 error" in out
        assert "realized epsilon" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--steps", "12"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure4_command(self, capsys):
        assert main(["figure4", "--steps", "12"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure5_command(self, capsys):
        assert main(["figure5", "--dataset", "tpcds", "--steps", "10"]) == 0
        assert "privacy vs" in capsys.readouterr().out

    def test_figure8_command(self, capsys):
        assert main(["figure8", "--steps", "10"]) == 0
        assert "truncation bound" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mode", "quantum"])


class TestObliviousShuffle:
    def _shuffle(self, rows, flags, seed=0):
        runtime = MPCRuntime(seed=seed)
        with runtime.protocol("s") as ctx:
            out = oblivious_shuffle(ctx, rows, flags, payload_words=3)
            gates = ctx.gates
        return out, gates

    def test_preserves_multiset(self):
        rows = np.asarray([[i, i * 2] for i in range(17)], dtype=np.uint32)
        flags = np.asarray([i % 2 == 0 for i in range(17)])
        (out_rows, out_flags), _ = self._shuffle(rows, flags)
        assert multiset(out_rows) == multiset(rows)
        assert out_flags.sum() == flags.sum()

    def test_flags_travel_with_rows(self):
        rows = np.asarray([[i, 0] for i in range(20)], dtype=np.uint32)
        flags = np.asarray([i < 10 for i in range(20)])
        (out_rows, out_flags), _ = self._shuffle(rows, flags)
        for row, flag in zip(out_rows, out_flags):
            assert flag == (int(row[0]) < 10)

    def test_actually_permutes(self):
        rows = np.asarray([[i, 0] for i in range(64)], dtype=np.uint32)
        flags = np.ones(64, dtype=bool)
        (out_rows, _), _ = self._shuffle(rows, flags)
        assert (out_rows[:, 0] != rows[:, 0]).any()

    def test_different_runs_differ(self):
        rows = np.asarray([[i, 0] for i in range(32)], dtype=np.uint32)
        flags = np.ones(32, dtype=bool)
        (a, _), _ = self._shuffle(rows, flags, seed=1)
        (b, _), _ = self._shuffle(rows, flags, seed=2)
        assert (a[:, 0] != b[:, 0]).any()

    def test_charges_one_sort(self):
        rows = np.asarray([[i, 0] for i in range(16)], dtype=np.uint32)
        flags = np.ones(16, dtype=bool)
        runtime = MPCRuntime(seed=0)
        _, gates = self._shuffle(rows, flags)
        expected = network_comparator_count(16) * runtime.cost_model.compare_exchange_gates(3)
        assert gates == expected

    def test_trivial_inputs(self):
        rows = np.zeros((1, 2), dtype=np.uint32)
        flags = np.ones(1, dtype=bool)
        (out_rows, out_flags), gates = self._shuffle(rows, flags)
        assert (out_rows == rows).all()
        assert gates == 0
