"""Tests for the CLI entry point and the oblivious shuffle utility."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.common.types import multiset
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.shuffle import oblivious_shuffle
from repro.oblivious.sort import network_comparator_count


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "--dataset", "tpcds", "--mode", "ep", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "avg L1 error" in out
        assert "realized epsilon" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--steps", "12"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure4_command(self, capsys):
        assert main(["figure4", "--steps", "12"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure5_command(self, capsys):
        assert main(["figure5", "--dataset", "tpcds", "--steps", "10"]) == 0
        assert "privacy vs" in capsys.readouterr().out

    def test_figure8_command(self, capsys):
        assert main(["figure8", "--steps", "10"]) == 0
        assert "truncation bound" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mode", "quantum"])


class TestQueryCli:
    LIVE = ["query", "--dataset", "tpcds", "--steps", "8"]

    def test_flag_specified_multi_aggregate_group_by(self, capsys):
        assert (
            main(
                self.LIVE
                + [
                    "--count",
                    "--sum", "returns:return_ts",
                    "--avg", "returns:return_ts",
                    "--group-by", "sales:pid:0,1,2,3",
                    "--where", "sales:pid:0-30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plan: " in out
        assert "count" in out and "avg_returns_return_ts" in out
        assert "ground truth" in out

    def test_json_specified_query(self, capsys):
        spec = (
            '{"aggregates": [{"kind": "count"},'
            ' {"kind": "sum", "table": "returns", "column": "return_ts"}],'
            ' "predicate": [{"table": "sales", "column": "pid", "lo": 0,'
            ' "hi": 99}]}'
        )
        assert main(self.LIVE + ["--json", spec]) == 0
        assert "sum_returns_return_ts" in capsys.readouterr().out

    def test_defaults_to_count(self, capsys):
        assert main(self.LIVE) == 0
        assert "count" in capsys.readouterr().out

    def test_snapshot_roundtrip(self, capsys, tmp_path):
        snap = str(tmp_path / "cli-query.snap")
        assert (
            main(
                ["serve", "--dataset", "tpcds", "--steps", "8", "--clients",
                 "1", "--snapshot", snap]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["query", "--snapshot", snap, "--count"]) == 0
        out = capsys.readouterr().out
        assert "queried snapshot" in out and "(step 8)" in out

    def test_epsilon_release_reports_spend(self, capsys):
        assert main(self.LIVE + ["--count", "--epsilon", "0.5"]) == 0
        assert "released with epsilon=0.5" in capsys.readouterr().out

    def test_unknown_view_rejected(self):
        with pytest.raises(SystemExit, match="no registered view"):
            main(self.LIVE + ["--view", "ghost", "--count"])

    def test_malformed_flag_rejected(self):
        with pytest.raises(SystemExit, match="malformed"):
            main(self.LIVE + ["--sum", "no-colon"])

    def test_invalid_json_rejected(self):
        with pytest.raises(SystemExit, match="valid JSON"):
            main(self.LIVE + ["--json", "{nope"])

    def test_malformed_where_value_rejected(self):
        for bad in ("-5", "10-", "5--3", "x"):
            with pytest.raises(SystemExit, match="malformed --where"):
                main(self.LIVE + ["--count", "--where", f"sales:pid:{bad}"])

    def test_malformed_group_by_domain_rejected(self):
        with pytest.raises(SystemExit, match="malformed --group-by"):
            main(self.LIVE + ["--count", "--group-by", "sales:pid:1,x"])

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(SystemExit, match="epsilon must be positive"):
            main(self.LIVE + ["--count", "--epsilon", "0"])

    def test_structurally_invalid_json_rejected_cleanly(self):
        for bad in (
            '{"predicate": [{"table": "sales", "column": "pid", "lo": 0}]}',
            '{"aggregates": [{"kind": "sum"}]}',
            '{"group_by": {"table": "sales"}}',
            '{"aggregates": ["count"]}',
        ):
            with pytest.raises(SystemExit, match="malformed --json"):
                main(self.LIVE + ["--json", bad])


class TestObliviousShuffle:
    def _shuffle(self, rows, flags, seed=0):
        runtime = MPCRuntime(seed=seed)
        with runtime.protocol("s") as ctx:
            out = oblivious_shuffle(ctx, rows, flags, payload_words=3)
            gates = ctx.gates
        return out, gates

    def test_preserves_multiset(self):
        rows = np.asarray([[i, i * 2] for i in range(17)], dtype=np.uint32)
        flags = np.asarray([i % 2 == 0 for i in range(17)])
        (out_rows, out_flags), _ = self._shuffle(rows, flags)
        assert multiset(out_rows) == multiset(rows)
        assert out_flags.sum() == flags.sum()

    def test_flags_travel_with_rows(self):
        rows = np.asarray([[i, 0] for i in range(20)], dtype=np.uint32)
        flags = np.asarray([i < 10 for i in range(20)])
        (out_rows, out_flags), _ = self._shuffle(rows, flags)
        for row, flag in zip(out_rows, out_flags):
            assert flag == (int(row[0]) < 10)

    def test_actually_permutes(self):
        rows = np.asarray([[i, 0] for i in range(64)], dtype=np.uint32)
        flags = np.ones(64, dtype=bool)
        (out_rows, _), _ = self._shuffle(rows, flags)
        assert (out_rows[:, 0] != rows[:, 0]).any()

    def test_different_runs_differ(self):
        rows = np.asarray([[i, 0] for i in range(32)], dtype=np.uint32)
        flags = np.ones(32, dtype=bool)
        (a, _), _ = self._shuffle(rows, flags, seed=1)
        (b, _), _ = self._shuffle(rows, flags, seed=2)
        assert (a[:, 0] != b[:, 0]).any()

    def test_charges_one_sort(self):
        rows = np.asarray([[i, 0] for i in range(16)], dtype=np.uint32)
        flags = np.ones(16, dtype=bool)
        runtime = MPCRuntime(seed=0)
        _, gates = self._shuffle(rows, flags)
        expected = network_comparator_count(16) * runtime.cost_model.compare_exchange_gates(3)
        assert gates == expected

    def test_trivial_inputs(self):
        rows = np.zeros((1, 2), dtype=np.uint32)
        flags = np.ones(1, dtype=bool)
        (out_rows, out_flags), gates = self._shuffle(rows, flags)
        assert (out_rows == rows).all()
        assert gates == 0
