"""Tests for the Batcher sorting network: correctness, obliviousness, cost."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.runtime import MPCRuntime
from repro.oblivious.sort import (
    apply_network,
    batcher_network,
    composite_key,
    network_comparator_count,
    oblivious_sort,
)


class TestNetworkConstruction:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            batcher_network(6)

    def test_trivial_sizes(self):
        assert batcher_network(1) == ()
        assert len(batcher_network(2)) == 1

    def test_comparator_count_known_values(self):
        # Batcher odd-even mergesort comparator counts for small n.
        assert network_comparator_count(2) == 1
        assert network_comparator_count(4) == 5
        assert network_comparator_count(8) == 19

    def test_comparator_count_pads_to_pow2(self):
        assert network_comparator_count(5) == network_comparator_count(8)

    def test_stages_are_disjoint(self):
        """Comparators within one stage must touch disjoint positions —
        that is what makes them parallelisable (and our vectorised
        application correct)."""
        for n in (4, 8, 16, 32):
            for lo, hi in batcher_network(n):
                touched = np.concatenate([lo, hi])
                assert len(np.unique(touched)) == len(touched)

    def test_network_is_data_independent(self):
        """The comparator sequence depends only on n — the core oblivious
        property.  (The network is cached, so identity equality holds.)"""
        assert batcher_network(16) is batcher_network(16)


class TestApplyNetwork:
    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=64)
    )
    @settings(max_examples=100, deadline=None)
    def test_sorts_any_input(self, values):
        keys = np.asarray(values, dtype=np.uint64)
        sorted_keys, perm = apply_network(keys)
        assert (sorted_keys == np.sort(keys)).all()
        assert (keys[perm] == sorted_keys).all()

    def test_permutation_is_bijection(self):
        keys = np.asarray([5, 3, 3, 1, 9, 0, 3], dtype=np.uint64)
        _, perm = apply_network(keys)
        assert sorted(perm.tolist()) == list(range(len(keys)))

    def test_non_power_of_two_padding_removed(self):
        keys = np.asarray([9, 1, 5], dtype=np.uint64)
        sorted_keys, perm = apply_network(keys)
        assert len(sorted_keys) == 3
        assert sorted_keys.tolist() == [1, 5, 9]

    def test_empty_input(self):
        sorted_keys, perm = apply_network(np.zeros(0, dtype=np.uint64))
        assert len(sorted_keys) == 0
        assert len(perm) == 0


class TestObliviousSort:
    def test_payloads_follow_keys(self):
        runtime = MPCRuntime(seed=0)
        keys = np.asarray([3, 1, 2], dtype=np.uint64)
        payload = np.asarray([[30], [10], [20]], dtype=np.uint32)
        flags = np.asarray([1, 0, 1], dtype=np.uint32)
        with runtime.protocol("p") as ctx:
            sorted_keys, [rows, out_flags] = oblivious_sort(
                ctx, keys, [payload, flags], payload_words=2
            )
        assert rows[:, 0].tolist() == [10, 20, 30]
        assert out_flags.tolist() == [0, 1, 1]

    def test_charges_comparator_count(self):
        runtime = MPCRuntime(seed=0)
        keys = np.arange(8, dtype=np.uint64)
        with runtime.protocol("p") as ctx:
            oblivious_sort(ctx, keys, [keys.astype(np.uint32)], payload_words=1)
            expected = network_comparator_count(8) * runtime.cost_model.compare_exchange_gates(1)
            assert ctx.gates == expected

    def test_cost_depends_only_on_length(self):
        """Two different inputs of the same size must charge identical
        gates — the execution-time side of obliviousness."""
        costs = []
        for seed, data in ((0, [5, 1, 4, 2]), (0, [0, 0, 0, 0])):
            runtime = MPCRuntime(seed=seed)
            with runtime.protocol("p") as ctx:
                oblivious_sort(
                    ctx,
                    np.asarray(data, dtype=np.uint64),
                    [np.asarray(data, dtype=np.uint32)],
                    payload_words=1,
                )
                costs.append(ctx.gates)
        assert costs[0] == costs[1]


class TestCompositeKey:
    def test_primary_dominates(self):
        keys = composite_key(
            np.asarray([1, 2], dtype=np.uint32), np.asarray([999, 0], dtype=np.uint32)
        )
        assert keys[0] < keys[1]

    def test_secondary_breaks_ties(self):
        keys = composite_key(
            np.asarray([7, 7], dtype=np.uint32), np.asarray([2, 1], dtype=np.uint32)
        )
        assert keys[1] < keys[0]

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_injective(self, a, b):
        key = composite_key(
            np.asarray([a], dtype=np.uint32), np.asarray([b], dtype=np.uint32)
        )[0]
        assert int(key) >> 32 == a
        assert int(key) & 0xFFFFFFFF == b
