"""Tests for the Laplace mechanism and its analytical helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import spawn
from repro.dp.laplace import (
    laplace_cdf,
    laplace_mechanism,
    laplace_noise,
    laplace_quantile,
    laplace_sum_high_probability_bound,
    laplace_sum_tail_bound,
)


class TestLaplaceNoise:
    def test_moments(self):
        draws = laplace_noise(spawn(0, "lap"), 2.0, size=100_000)
        assert abs(draws.mean()) < 0.05
        assert draws.var() == pytest.approx(2 * 4.0, rel=0.05)

    def test_scalar_return_without_size(self):
        assert isinstance(laplace_noise(spawn(1, "lap"), 1.0), float)

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            laplace_noise(spawn(0, "lap"), 0.0)

    def test_matches_joint_sampler_distribution(self):
        """The trusted-curator and in-MPC samplers must agree in law —
        the ablation point the design depends on (same noise, different
        trust)."""
        from repro.mpc.joint_noise import laplace_from_u32

        gen = spawn(2, "lap")
        local = laplace_noise(gen, 1.5, size=40_000)
        zs = gen.integers(0, 2**32, size=40_000, dtype=np.uint32)
        joint = np.asarray([laplace_from_u32(z, 1.5) for z in zs])
        # Compare a few quantiles.
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert np.quantile(local, q) == pytest.approx(
                np.quantile(joint, q), abs=0.12
            )


class TestLaplaceMechanism:
    def test_centres_on_value(self):
        gen = spawn(3, "lap")
        draws = [laplace_mechanism(gen, 100.0, 1.0, 1.0) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(100.0, abs=0.2)

    def test_parameter_validation(self):
        gen = spawn(0, "lap")
        with pytest.raises(ValueError):
            laplace_mechanism(gen, 0, sensitivity=1, epsilon=0)
        with pytest.raises(ValueError):
            laplace_mechanism(gen, 0, sensitivity=-1, epsilon=1)


class TestAnalyticalHelpers:
    @given(st.floats(0.01, 0.99), st.floats(0.1, 10))
    @settings(max_examples=50, deadline=None)
    def test_quantile_inverts_cdf(self, q, scale):
        assert laplace_cdf(laplace_quantile(q, scale), scale) == pytest.approx(
            q, abs=1e-9
        )

    def test_cdf_symmetry(self):
        assert laplace_cdf(0, 1.0) == pytest.approx(0.5)
        assert laplace_cdf(-3, 2.0) == pytest.approx(1 - laplace_cdf(3, 2.0))

    def test_quantile_domain(self):
        with pytest.raises(ValueError):
            laplace_quantile(0.0, 1.0)
        with pytest.raises(ValueError):
            laplace_quantile(1.0, 1.0)

    def test_tail_bound_decreases_in_alpha(self):
        b1 = laplace_sum_tail_bound(10, 1.0, 2.0)
        b2 = laplace_sum_tail_bound(10, 1.0, 5.0)
        assert b2 < b1

    def test_tail_bound_formula(self):
        assert laplace_sum_tail_bound(4, 1.0, 2.0) == pytest.approx(
            math.exp(-4 / 16)
        )

    def test_high_probability_bound_formula(self):
        assert laplace_sum_high_probability_bound(9, 2.0, 0.05) == pytest.approx(
            2 * 2.0 * math.sqrt(9 * math.log(20))
        )

    def test_high_probability_bound_empirically_holds(self):
        """Corollary 11: sum of k Laplace draws exceeds α with prob ≤ β."""
        gen = spawn(4, "lap")
        k, scale, beta = 25, 1.0, 0.05
        alpha = laplace_sum_high_probability_bound(k, scale, beta)
        trials = 2000
        sums = laplace_noise(gen, scale, size=(trials * k)).reshape(trials, k).sum(axis=1)
        assert (sums >= alpha).mean() <= beta

    def test_tail_bound_invalid_inputs(self):
        with pytest.raises(ValueError):
            laplace_sum_tail_bound(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            laplace_sum_high_probability_bound(5, 1.0, 1.5)
