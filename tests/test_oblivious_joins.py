"""Tests for the truncated oblivious joins (Example 5.1, Algorithm 4).

The key properties:

* correctness — with generous caps, real output pairs equal the logical
  join;
* truncation — Eq. 3: adding/removing one input record changes the real
  output by at most ω rows;
* obliviousness — padded output size is ω·|driver| regardless of data;
* equivalence — sort-merge and nested-loop implementations produce the
  same real tuple multiset under identical caps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import multiset
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.join_common import match_pairs_truncated
from repro.oblivious.nested_loop_join import truncated_nested_loop_join
from repro.oblivious.sort_merge_join import (
    oblivious_join_count,
    truncated_sort_merge_join,
)


def run_join(impl, probe, driver, omega, probe_caps=None, driver_caps=None,
             probe_flags=None, driver_flags=None, predicate=None):
    """Drive a join implementation with plain row arrays."""
    probe = np.asarray(probe, dtype=np.uint32).reshape(-1, 2)
    driver = np.asarray(driver, dtype=np.uint32).reshape(-1, 2)
    if probe_caps is None:
        probe_caps = np.full(len(probe), 10**6)
    if driver_caps is None:
        driver_caps = np.full(len(driver), 10**6)
    if probe_flags is None:
        probe_flags = np.ones(len(probe), dtype=bool)
    if driver_flags is None:
        driver_flags = np.ones(len(driver), dtype=bool)
    runtime = MPCRuntime(seed=0)
    with runtime.protocol("join") as ctx:
        return impl(
            ctx,
            probe, probe_flags, 0, probe_caps,
            driver, driver_flags, 0, driver_caps,
            omega,
            predicate,
        )


PROBE = [[1, 100], [2, 100], [2, 101], [3, 100]]
DRIVER = [[2, 105], [3, 105], [9, 105]]


class TestSortMergeJoin:
    def test_exact_join_with_generous_caps(self):
        result = run_join(truncated_sort_merge_join, PROBE, DRIVER, omega=4)
        reals = result.rows[result.flags]
        expected = {
            (2, 100, 2, 105),
            (2, 101, 2, 105),
            (3, 100, 3, 105),
        }
        assert {tuple(map(int, r)) for r in reals} == expected
        assert result.dropped == 0

    def test_padded_size_is_omega_times_driver(self):
        result = run_join(truncated_sort_merge_join, PROBE, DRIVER, omega=4)
        assert len(result.rows) == 4 * len(DRIVER)

    def test_padded_size_independent_of_matches(self):
        nothing_matches = [[7, 1], [8, 1]]
        result = run_join(truncated_sort_merge_join, nothing_matches, DRIVER, omega=4)
        assert len(result.rows) == 4 * len(DRIVER)
        assert result.real_count == 0

    def test_driver_slot_layout(self):
        result = run_join(truncated_sort_merge_join, PROBE, DRIVER, omega=2)
        # Driver row 0 (key 2) owns slots [0, 2): both its joins live there.
        assert result.flags[0] and result.flags[1]
        # Driver row 2 (key 9) owns slots [4, 6): no joins.
        assert not result.flags[4] and not result.flags[5]

    def test_omega_truncates_driver_contributions(self):
        result = run_join(truncated_sort_merge_join, PROBE, DRIVER, omega=1)
        # Driver (2,105) matches two probes but may emit only one.
        assert result.real_count == 2  # one for key 2, one for key 3
        assert result.dropped == 1

    def test_probe_caps_respected(self):
        probe = [[5, 100]]
        driver = [[5, 101], [5, 102], [5, 103]]
        result = run_join(
            truncated_sort_merge_join, probe, driver, omega=2,
            probe_caps=np.asarray([2]),
        )
        # The single probe record's lifetime cap (2) binds below the
        # per-invocation bound min(ω, cap) = 2: two joins, one dropped.
        assert result.real_count == 2
        assert result.dropped == 1
        assert result.left_emitted.tolist() == [2]

    def test_probe_cap_below_omega_binds(self):
        probe = [[5, 100]]
        driver = [[5, 101], [5, 102]]
        result = run_join(
            truncated_sort_merge_join, probe, driver, omega=3,
            probe_caps=np.asarray([1]),
        )
        assert result.real_count == 1
        assert result.left_emitted.tolist() == [1]

    def test_dummy_rows_never_join(self):
        result = run_join(
            truncated_sort_merge_join, PROBE, DRIVER, omega=4,
            probe_flags=np.asarray([True, False, True, True]),
        )
        reals = {tuple(map(int, r)) for r in result.rows[result.flags]}
        assert (2, 100, 2, 105) not in reals
        assert (2, 101, 2, 105) in reals

    def test_pair_predicate_filters(self):
        predicate = lambda p, d: int(d[1]) - int(p[1]) <= 4  # noqa: E731
        result = run_join(
            truncated_sort_merge_join, PROBE, DRIVER, omega=4, predicate=predicate
        )
        reals = {tuple(map(int, r)) for r in result.rows[result.flags]}
        assert (2, 101, 2, 105) in reals  # delta 4 ok
        assert (2, 100, 2, 105) not in reals  # delta 5 filtered

    def test_emitted_counts_align_with_flags(self):
        result = run_join(truncated_sort_merge_join, PROBE, DRIVER, omega=4)
        assert result.left_emitted.sum() == result.real_count
        assert result.right_emitted.sum() == result.real_count

    def test_empty_driver(self):
        result = run_join(truncated_sort_merge_join, PROBE, [], omega=3)
        assert len(result.rows) == 0
        assert result.real_count == 0

    def test_empty_probe(self):
        result = run_join(truncated_sort_merge_join, [], DRIVER, omega=3)
        assert len(result.rows) == 3 * 3
        assert result.real_count == 0


class TestEquivalenceWithNestedLoop:
    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(100, 110)), max_size=10
        ),
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(100, 110)), max_size=8
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_real_multiset(self, probe, driver, omega):
        probe = [list(p) for p in probe] or [[0, 0]]
        driver = [list(d) for d in driver] or [[0, 0]]
        probe_flags = np.asarray([p != [0, 0] for p in probe])
        driver_flags = np.asarray([d != [0, 0] for d in driver])
        smj = run_join(
            truncated_sort_merge_join, probe, driver, omega,
            probe_flags=probe_flags, driver_flags=driver_flags,
        )
        nlj = run_join(
            truncated_nested_loop_join, probe, driver, omega,
            probe_flags=probe_flags, driver_flags=driver_flags,
        )
        assert multiset(smj.rows[smj.flags]) == multiset(nlj.rows[nlj.flags])
        assert smj.dropped == nlj.dropped

    def test_nested_loop_costs_more_gates(self):
        """The quadratic circuit must charge more than sort-merge on the
        same (non-trivial) input — the ablation the operators exist for."""
        probe = [[k % 5, 100 + k] for k in range(20)]
        driver = [[k % 5, 105 + k] for k in range(10)]
        costs = {}
        for name, impl in (
            ("smj", truncated_sort_merge_join),
            ("nlj", truncated_nested_loop_join),
        ):
            runtime = MPCRuntime(seed=0)
            with runtime.protocol("join") as ctx:
                impl(
                    ctx,
                    np.asarray(probe, dtype=np.uint32), np.ones(20, dtype=bool), 0,
                    np.full(20, 100),
                    np.asarray(driver, dtype=np.uint32), np.ones(10, dtype=bool), 0,
                    np.full(10, 100),
                    2,
                    None,
                )
                costs[name] = ctx.gates
        assert costs["nlj"] > costs["smj"]


class TestStabilityEq3:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(100, 104)),
            min_size=1, max_size=8,
        ),
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(100, 104)),
            min_size=1, max_size=6,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_removing_one_probe_changes_output_by_at_most_omega(
        self, probe, driver, omega
    ):
        """Eq. 3: ||g(DS) − g(DS − {ds_i})|| ≤ ω for every input record.

        We compare real-output multisets with and without the first probe
        record; the symmetric difference may not exceed 2ω (ω rows lost
        plus at most ω rows gained by records that inherit its slots)."""
        probe = [list(p) for p in probe]
        driver = [list(d) for d in driver]
        full = run_join(truncated_sort_merge_join, probe, driver, omega)
        reduced = run_join(truncated_sort_merge_join, probe[1:] or [[0, 0]], driver, omega)
        full_ms = multiset(full.rows[full.flags])
        reduced_ms = multiset(reduced.rows[reduced.flags])
        diff = 0
        for key in set(full_ms) | set(reduced_ms):
            diff += abs(full_ms.get(key, 0) - reduced_ms.get(key, 0))
        assert diff <= 2 * omega * max(1, len(driver))


class TestObliviousJoinCount:
    def test_exact_count(self):
        runtime = MPCRuntime(seed=0)
        probe = np.asarray(PROBE, dtype=np.uint32)
        driver = np.asarray(DRIVER, dtype=np.uint32)
        with runtime.protocol("q") as ctx:
            count = oblivious_join_count(
                ctx, probe, np.ones(4, dtype=bool), 0,
                driver, np.ones(3, dtype=bool), 0,
            )
        assert count == 3

    def test_count_with_predicate(self):
        runtime = MPCRuntime(seed=0)
        probe = np.asarray(PROBE, dtype=np.uint32)
        driver = np.asarray(DRIVER, dtype=np.uint32)
        with runtime.protocol("q") as ctx:
            count = oblivious_join_count(
                ctx, probe, np.ones(4, dtype=bool), 0,
                driver, np.ones(3, dtype=bool), 0,
                lambda p, d: int(d[1]) - int(p[1]) <= 4,
            )
        # Only (2,101)⋈(2,105) has a timestamp delta within 4.
        assert count == 1

    def test_dummies_excluded(self):
        runtime = MPCRuntime(seed=0)
        probe = np.asarray(PROBE, dtype=np.uint32)
        driver = np.asarray(DRIVER, dtype=np.uint32)
        with runtime.protocol("q") as ctx:
            count = oblivious_join_count(
                ctx, probe, np.zeros(4, dtype=bool), 0,
                driver, np.ones(3, dtype=bool), 0,
            )
        assert count == 0

    def test_cost_grows_with_input(self):
        runtime = MPCRuntime(seed=0)
        small = np.asarray([[1, 1]] , dtype=np.uint32)
        big = np.asarray([[i, 1] for i in range(64)], dtype=np.uint32)
        with runtime.protocol("a") as ctx:
            oblivious_join_count(ctx, small, np.ones(1, dtype=bool), 0,
                                 small, np.ones(1, dtype=bool), 0)
            small_gates = ctx.gates
        with runtime.protocol("b") as ctx:
            oblivious_join_count(ctx, big, np.ones(64, dtype=bool), 0,
                                 big, np.ones(64, dtype=bool), 0)
            big_gates = ctx.gates
        assert big_gates > 10 * small_gates


class TestMatchPairsTruncated:
    def test_greedy_in_order(self):
        assigned, d_em, p_em, dropped = match_pairs_truncated(
            np.asarray([0]), [[0, 1, 2]], omega=2,
            driver_caps=np.asarray([5]), probe_caps=np.asarray([5, 5, 5]),
        )
        assert assigned == [[0, 1]]
        assert d_em.tolist() == [2]
        assert dropped == 1

    def test_probe_cap_blocks(self):
        assigned, _, p_em, dropped = match_pairs_truncated(
            np.asarray([0, 1]), [[0], [0]], omega=2,
            driver_caps=np.asarray([5, 5]), probe_caps=np.asarray([1]),
        )
        assert assigned == [[0], []]
        assert p_em.tolist() == [1]
        assert dropped == 1

    def test_zero_cap_drops_everything(self):
        assigned, _, _, dropped = match_pairs_truncated(
            np.asarray([0]), [[0, 1]], omega=3,
            driver_caps=np.asarray([0]), probe_caps=np.asarray([9, 9]),
        )
        assert assigned == [[]]
        assert dropped == 2
