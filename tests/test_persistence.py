"""Snapshot/restore round-trips for the persistence layer.

The acceptance criterion: a database snapshotted mid-stream and restored
(in this process or a fresh one) must answer queries **byte-identically**
to the uninterrupted run and report the identical ``realized_epsilon()``
— restarting the server must never double-spend privacy budget.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import PersistenceError
from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.query.ast import (
    AggregateSpec,
    GroupBySpec,
    LogicalJoinCountQuery,
    LogicalJoinSumQuery,
    LogicalQuery,
)
from repro.server.database import IncShrinkDatabase, ViewRegistration
from repro.server.persistence import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    restore_database,
    snapshot_database,
)

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))

SCRIPT = [
    ([[1, 1], [2, 1]], [[1, 2]]),
    ([[3, 2]], [[2, 3], [3, 3]]),
    ([], [[3, 4]]),
    ([[9, 4]], []),
    ([[3, 5]], [[9, 5]]),
    ([], [[3, 6]]),
]


def make_view(name: str, window_hi: int, omega: int = 2, budget: int = 6):
    return JoinViewDefinition(
        name=name,
        probe_table="orders",
        probe_schema=PROBE_SCHEMA,
        probe_key="key",
        probe_ts="ots",
        driver_table="shipments",
        driver_schema=DRIVER_SCHEMA,
        driver_key="key",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
        omega=omega,
        budget=budget,
    )


def build_database(flush_interval: int = 2000, **view_kwargs) -> IncShrinkDatabase:
    """Three views covering all three persistent policy shapes."""
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=7)
    db.register_view(
        ViewRegistration(
            make_view("full", 2, **view_kwargs),
            mode="ep",
            flush_interval=flush_interval,
        )
    )
    db.register_view(
        ViewRegistration(
            make_view("audit", 2, **view_kwargs),
            mode="dp-timer",
            timer_interval=1,
            flush_interval=flush_interval,
        )
    )
    db.register_view(
        ViewRegistration(
            make_view("recent", 1, **view_kwargs),
            mode="dp-ant",
            ant_threshold=1.0,
            flush_interval=flush_interval,
        )
    )
    return db


def feed(db: IncShrinkDatabase, time: int) -> None:
    probe_rows, driver_rows = SCRIPT[time - 1]
    probe = RecordBatch(
        PROBE_SCHEMA, np.asarray(probe_rows, dtype=np.uint32).reshape(-1, 2)
    ).padded_to(4)
    driver = RecordBatch(
        DRIVER_SCHEMA, np.asarray(driver_rows, dtype=np.uint32).reshape(-1, 2)
    ).padded_to(3)
    db.upload(time, {"orders": probe, "shipments": driver})
    db.step(time)


def count_query(window_hi: int = 2) -> LogicalJoinCountQuery:
    return LogicalJoinCountQuery(
        probe_table="orders",
        driver_table="shipments",
        probe_key="key",
        driver_key="key",
        probe_ts="ots",
        driver_ts="sts",
        window_lo=0,
        window_hi=window_hi,
    )


def sum_query() -> LogicalJoinSumQuery:
    count = count_query()
    return LogicalJoinSumQuery(
        **{
            f: getattr(count, f)
            for f in (
                "probe_table", "driver_table", "probe_key", "driver_key",
                "probe_ts", "driver_ts", "window_lo", "window_hi",
            )
        },
        sum_table="shipments",
        sum_column="sts",
    )


def answer_mix(db: IncShrinkDatabase, time: int) -> list[float]:
    """The full query surface: two view scans, a SUM, and the NM fallback."""
    return [
        db.query(count_query(2), time).answer,
        db.query(count_query(1), time).answer,
        db.query(sum_query(), time).answer,
        db.query(count_query(7), time).answer,  # no matching view → NM
    ]


def fingerprint(db: IncShrinkDatabase) -> dict:
    return {
        "realized": db.realized_epsilon(),
        "per_view": {
            name: db.view_realized_epsilon(name) for name in db.views
        },
        "sequential": db.accountant.sequential_epsilon(),
        "events": db.accountant.snapshot_state(),
        "upload_counts": db.upload_counts(),
        "view_rows": {name: len(vr.view) for name, vr in db.views.items()},
        "cache_rows": {name: len(vr.cache) for name, vr in db.views.items()},
    }


@pytest.mark.parametrize("snapshot_at", [1, 2, 4])
def test_mid_stream_roundtrip_is_byte_identical(tmp_path, snapshot_at):
    """Stop at any step, restore, continue: identical answers and ε."""
    n_steps = len(SCRIPT)
    uninterrupted = build_database()
    for t in range(1, n_steps + 1):
        feed(uninterrupted, t)
    expected_answers = answer_mix(uninterrupted, n_steps)

    interrupted = build_database()
    for t in range(1, snapshot_at + 1):
        feed(interrupted, t)
    path = tmp_path / "mid.snap"
    snapshot_database(interrupted, path)

    restored = restore_database(path).database
    for t in range(snapshot_at + 1, n_steps + 1):
        feed(restored, t)

    assert answer_mix(restored, n_steps) == expected_answers
    assert fingerprint(restored) == fingerprint(uninterrupted)


def test_queries_do_not_perturb_the_stream(tmp_path):
    """Read load is RNG-neutral: a replica that answered hundreds of
    queries evolves identically to one that answered none — the property
    that lets the serving runtime run reads concurrently with ingestion."""
    chatty = build_database()
    quiet = build_database()
    for t in range(1, len(SCRIPT) + 1):
        feed(chatty, t)
        answer_mix(chatty, t)  # extra reads between every step
        feed(quiet, t)
    assert answer_mix(chatty, len(SCRIPT)) == answer_mix(quiet, len(SCRIPT))
    assert fingerprint(chatty)["events"] == fingerprint(quiet)["events"]


def test_mid_flush_roundtrip(tmp_path):
    """Snapshot between two flushes: the pending flush fires identically."""
    n_steps = len(SCRIPT)

    def build():
        return build_database(flush_interval=2)

    uninterrupted = build()
    for t in range(1, n_steps + 1):
        feed(uninterrupted, t)

    interrupted = build()
    for t in range(1, 4):  # t=3: flush ran at 2, next due at 4
        feed(interrupted, t)
    assert any(len(vr.cache) for vr in interrupted.views.values()), (
        "the mid-flush scenario needs a non-empty cache at snapshot time"
    )
    path = tmp_path / "midflush.snap"
    snapshot_database(interrupted, path)
    restored = restore_database(path).database
    for t in range(4, n_steps + 1):
        feed(restored, t)

    assert answer_mix(restored, n_steps) == answer_mix(uninterrupted, n_steps)
    assert fingerprint(restored) == fingerprint(uninterrupted)


def test_empty_cache_roundtrip(tmp_path):
    """Snapshot a finalized deployment that has not ingested anything."""
    fresh = build_database()
    fresh.finalize()
    path = tmp_path / "empty.snap"
    snapshot_database(fresh, path)
    restored = restore_database(path).database
    assert all(len(vr.cache) == 0 for vr in restored.views.values())

    baseline = build_database()
    for t in range(1, len(SCRIPT) + 1):
        feed(baseline, t)
        feed(restored, t)
    assert answer_mix(restored, len(SCRIPT)) == answer_mix(baseline, len(SCRIPT))
    assert fingerprint(restored) == fingerprint(baseline)


def test_exhausted_budget_roundtrip(tmp_path):
    """Retired batches stay retired: restoring must not refill the
    contribution budget a batch already spent."""
    n_steps = len(SCRIPT)
    # omega == budget → every batch participates in exactly one Transform.
    uninterrupted = build_database(omega=2, budget=2)
    for t in range(1, n_steps + 1):
        feed(uninterrupted, t)

    interrupted = build_database(omega=2, budget=2)
    for t in range(1, 4):
        feed(interrupted, t)
    exhausted = [
        b.time
        for g in interrupted.groups.values()
        for b in g.probe_scope.batches
        if b.invocations_used >= 1
    ]
    assert exhausted, "scenario must contain budget-exhausted batches"

    path = tmp_path / "budget.snap"
    snapshot_database(interrupted, path)
    restored = restore_database(path).database

    for live_g, rest_g in zip(
        interrupted.groups.values(), restored.groups.values()
    ):
        live = [(b.time, b.invocations_used) for b in live_g.probe_scope.batches]
        rest = [(b.time, b.invocations_used) for b in rest_g.probe_scope.batches]
        assert live == rest
        assert len(rest_g.probe_scope.active_batches(2, 2)) == len(
            live_g.probe_scope.active_batches(2, 2)
        )

    for t in range(4, n_steps + 1):
        feed(restored, t)
    assert answer_mix(restored, n_steps) == answer_mix(uninterrupted, n_steps)
    assert fingerprint(restored) == fingerprint(uninterrupted)


def test_share_aliasing_is_preserved(tmp_path):
    db = build_database()
    for t in range(1, 3):
        feed(db, t)
    path = tmp_path / "alias.snap"
    snapshot_database(db, path)
    restored = restore_database(path).database
    physical = restored.tables["orders"]
    for group in restored.groups.values():
        for i, batch in enumerate(group.probe_scope.batches):
            assert batch.table is physical.batches[i].table, (
                "scope batches must wrap the same share objects as the "
                "physical store — uploads are stored once"
            )


def test_metadata_roundtrip(tmp_path):
    db = build_database()
    feed(db, 1)
    path = tmp_path / "meta.snap"
    metadata = {"last_time": 1, "note": "hello", "nested": {"k": [1, 2]}}
    info = snapshot_database(db, path, metadata=metadata)
    restored = restore_database(path)
    assert restored.metadata == metadata
    assert restored.info.sha256 == info.sha256
    assert restored.info.bytes_written == info.bytes_written


class TestIntegrity:
    def _snapshot(self, tmp_path) -> Path:
        db = build_database()
        feed(db, 1)
        path = tmp_path / "ok.snap"
        snapshot_database(db, path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            restore_database(tmp_path / "nope.snap")

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_text("not json {", encoding="utf8")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            restore_database(path)

    def test_wrong_magic(self, tmp_path):
        path = self._snapshot(tmp_path)
        doc = json.loads(path.read_text(encoding="utf8"))
        doc["magic"] = "some-other-format"
        path.write_text(json.dumps(doc), encoding="utf8")
        with pytest.raises(PersistenceError, match="not an IncShrink snapshot"):
            restore_database(path)

    def test_unknown_version(self, tmp_path):
        path = self._snapshot(tmp_path)
        doc = json.loads(path.read_text(encoding="utf8"))
        doc["version"] = 99
        path.write_text(json.dumps(doc), encoding="utf8")
        with pytest.raises(PersistenceError, match="format version"):
            restore_database(path)

    def test_tampered_body_fails_digest(self, tmp_path):
        path = self._snapshot(tmp_path)
        doc = json.loads(path.read_text(encoding="utf8"))
        # An attacker refunding spent budget must be caught by the digest.
        doc["body"]["accountant"] = []
        path.write_text(json.dumps(doc), encoding="utf8")
        with pytest.raises(PersistenceError, match="integrity check"):
            restore_database(path)

    def test_magic_constant_is_stable(self, tmp_path):
        path = self._snapshot(tmp_path)
        doc = json.loads(path.read_text(encoding="utf8"))
        assert doc["magic"] == SNAPSHOT_MAGIC == "incshrink-snapshot"


def test_restore_in_fresh_process(tmp_path):
    """The acceptance scenario end-to-end: restore in a *fresh process*
    and compare answers and realized ε against the uninterrupted run."""
    n_steps = len(SCRIPT)
    uninterrupted = build_database()
    for t in range(1, n_steps + 1):
        feed(uninterrupted, t)
    expected = {
        "answers": answer_mix(uninterrupted, n_steps),
        "realized": uninterrupted.realized_epsilon(),
    }

    interrupted = build_database()
    for t in range(1, 3):
        feed(interrupted, t)
    path = tmp_path / "fresh-process.snap"
    snapshot_database(interrupted, path)

    repo_root = Path(__file__).resolve().parents[1]
    script = (
        "import json, sys; sys.path.insert(0, 'tests');"
        "from test_persistence import SCRIPT, answer_mix, feed;"
        "from repro.server.persistence import restore_database;"
        f"db = restore_database({str(path)!r}).database;"
        f"[feed(db, t) for t in range(3, {n_steps} + 1)];"
        "print(json.dumps({'answers': answer_mix(db, len(SCRIPT)),"
        " 'realized': db.realized_epsilon()}))"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        cwd=repo_root,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout.strip().splitlines()[-1]) == expected


def multi_query() -> LogicalQuery:
    """A unified-AST query: three aggregates, grouped, in one scan."""
    return LogicalQuery.for_view(
        make_view("full", 2),
        AggregateSpec.count(),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
        group_by=GroupBySpec("orders", "key", (1, 2, 3)),
    )


def test_unified_query_roundtrip_byte_identical(tmp_path):
    """Grouped multi-aggregate answers survive a snapshot bit-for-bit."""
    db = build_database()
    for t in (1, 2, 3):
        feed(db, t)
    original = db.query(multi_query(), 3).answers
    snapshot_database(db, tmp_path / "compiler.snap")
    restored = restore_database(tmp_path / "compiler.snap").database
    assert restored.query(multi_query(), 3).answers == original


def test_noisy_query_budget_and_noise_stream_roundtrip(tmp_path):
    """Budget-exact restore: spent query-release ε round-trips, and the
    restored query-noise stream continues *identically* — a restart can
    neither double-spend nor replay noise."""
    db = build_database()
    for t in (1, 2):
        feed(db, t)
    db.query(multi_query(), 2, epsilon=0.6)
    snapshot_database(db, tmp_path / "noisy.snap")
    restored = restore_database(tmp_path / "noisy.snap").database
    assert restored.query_epsilon() == db.query_epsilon() == pytest.approx(0.6)
    assert restored.realized_epsilon() == db.realized_epsilon()
    # Identical continuation of the noise stream and of the accountant's
    # query-segment sequence on both sides of the restart boundary.
    live = db.query(multi_query(), 2, epsilon=0.6)
    resumed = restored.query(multi_query(), 2, epsilon=0.6)
    assert live.answers == resumed.answers
    assert (
        restored.accountant.snapshot_state() == db.accountant.snapshot_state()
    )


def test_restore_is_plan_cache_free(tmp_path):
    """The plan cache is session state: a restored database replans from
    its restored (identical) public sizes instead of trusting any cached
    comparison."""
    db = build_database()
    for t in (1, 2):
        feed(db, t)
    before = db.query(multi_query(), 2)
    assert db.planner.cache_info()["entries"] >= 1
    snapshot_database(db, tmp_path / "cache.snap")
    restored = restore_database(tmp_path / "cache.snap").database
    info = restored.planner.cache_info()
    assert info["entries"] == 0 and info["hits"] == 0
    after = restored.query(multi_query(), 2)
    assert after.plan == before.plan  # replanning lands on the same plan


# -- snapshot format v2: shard layout round-trip and v1 upgrade ---------------
def build_sharded_database(n_shards: int) -> IncShrinkDatabase:
    db = IncShrinkDatabase(total_epsilon=2000.0, seed=7, n_shards=n_shards)
    db.register_view(
        ViewRegistration(make_view("full", 2), mode="ep", flush_interval=2000)
    )
    db.register_view(
        ViewRegistration(
            make_view("audit", 2),
            mode="dp-timer",
            timer_interval=1,
            flush_interval=2000,
        )
    )
    db.register_view(
        ViewRegistration(
            make_view("recent", 1),
            mode="dp-ant",
            ant_threshold=1.0,
            flush_interval=2000,
        )
    )
    return db


def test_v2_roundtrip_preserves_shard_layout(tmp_path):
    """A sharded deployment restores with its layout — and its answers."""
    db = build_sharded_database(4)
    for t in range(1, 5):
        feed(db, t)
    expected = answer_mix(db, 4)
    shard_lengths = {n: vr.view.shard_lengths() for n, vr in db.views.items()}
    snapshot_database(db, tmp_path / "sharded.snap")

    doc = json.loads((tmp_path / "sharded.snap").read_text(encoding="utf8"))
    assert doc["version"] == SNAPSHOT_VERSION
    assert doc["body"]["config"]["n_shards"] == 4

    restored = restore_database(tmp_path / "sharded.snap").database
    assert restored.n_shards == 4
    assert {
        n: vr.view.shard_lengths() for n, vr in restored.views.items()
    } == shard_lengths
    assert answer_mix(restored, 4) == expected
    assert fingerprint(restored) == fingerprint(db)


def _downgrade_to_v1(path: Path) -> None:
    """Rewrite a single-shard v2 snapshot into the historical v1 layout."""
    from repro.server.persistence import _canonical_bytes
    import hashlib

    doc = json.loads(path.read_text(encoding="utf8"))
    body = doc["body"]
    assert body["config"].pop("n_shards") == 1
    body["config"]["cost_model"].pop("max_parallel_workers")
    for view_entry in body["views"]:
        shards = view_entry["view"].pop("shards")
        assert len(shards) == 1
        view_entry["view"]["table"] = shards[0]
    doc["version"] = 1
    doc["sha256"] = hashlib.sha256(_canonical_bytes(body)).hexdigest()
    path.write_text(json.dumps(doc), encoding="utf8")


def test_v1_snapshot_upgrade_roundtrip(tmp_path):
    """A pre-sharding (v1) snapshot restores as one shard, continues the
    stream byte-identically, and can be resharded in place afterwards."""
    n_steps = len(SCRIPT)
    uninterrupted = build_database()
    for t in range(1, n_steps + 1):
        feed(uninterrupted, t)
    expected_answers = answer_mix(uninterrupted, n_steps)

    interrupted = build_database()
    for t in range(1, 3):
        feed(interrupted, t)
    path = tmp_path / "legacy.snap"
    snapshot_database(interrupted, path)
    _downgrade_to_v1(path)

    restored = restore_database(path).database
    assert restored.n_shards == 1
    for t in range(3, n_steps + 1):
        feed(restored, t)
    assert answer_mix(restored, n_steps) == expected_answers
    assert fingerprint(restored) == fingerprint(uninterrupted)

    # In-place upgrade: reshard the restored deployment, answers fixed.
    restored.reshard(4)
    assert answer_mix(restored, n_steps) == expected_answers
    assert all(vr.view.n_shards == 4 for vr in restored.views.values())
    assert fingerprint(restored)["realized"] == fingerprint(uninterrupted)["realized"]
