"""Unit tests for the simulation clock and RNG derivation."""

import numpy as np
import pytest

from repro.common.clock import SimClock
from repro.common.rng import (
    RING_MOD,
    msb,
    random_ring_elements,
    spawn,
    uniform_unit_from_u32,
)


class TestSimClock:
    def test_ticks_advance(self):
        clock = SimClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.now == 2

    def test_every_matches_modulo(self):
        clock = SimClock()
        fired = []
        for _ in range(9):
            clock.tick()
            if clock.every(3):
                fired.append(clock.now)
        assert fired == [3, 6, 9]

    def test_every_never_fires_at_time_zero(self):
        assert not SimClock().every(1)

    def test_nonpositive_period_never_fires(self):
        clock = SimClock()
        clock.tick()
        assert not clock.every(0)
        assert not clock.every(-2)


class TestSpawn:
    def test_deterministic(self):
        a = spawn(7, "x").integers(0, 1000, 5)
        b = spawn(7, "x").integers(0, 1000, 5)
        assert (a == b).all()

    def test_different_paths_differ(self):
        a = spawn(7, "server", 0).integers(0, 2**32, 16)
        b = spawn(7, "server", 1).integers(0, 2**32, 16)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = spawn(1, "x").integers(0, 2**32, 16)
        b = spawn(2, "x").integers(0, 2**32, 16)
        assert (a != b).any()

    def test_string_and_int_labels_accepted(self):
        assert spawn(0, "a", 3, "b") is not None


class TestRingHelpers:
    def test_random_ring_elements_dtype_and_range(self):
        vals = random_ring_elements(spawn(0, "r"), 1000)
        assert vals.dtype == np.uint32
        assert len(vals) == 1000

    def test_uniform_unit_open_interval(self):
        assert 0.0 < uniform_unit_from_u32(0) < 1.0
        assert 0.0 < uniform_unit_from_u32(RING_MOD - 1) < 1.0

    def test_uniform_unit_midpoint(self):
        assert uniform_unit_from_u32(RING_MOD // 2) == pytest.approx(0.5, abs=1e-6)

    def test_msb(self):
        assert msb(0) == 0
        assert msb(RING_MOD - 1) == 1
        assert msb(1 << 31) == 1
        assert msb((1 << 31) - 1) == 0
