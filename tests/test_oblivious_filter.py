"""Tests for oblivious selection and padded counting scans."""

import numpy as np
import pytest

from repro.mpc.runtime import MPCRuntime
from repro.oblivious.filter import oblivious_count, oblivious_select


@pytest.fixture
def rows_flags():
    rows = np.asarray([[1, 10], [2, 20], [3, 30], [0, 0]], dtype=np.uint32)
    flags = np.asarray([True, True, True, False])
    return rows, flags


class TestObliviousSelect:
    def test_output_size_equals_input_size(self, rows_flags):
        """Obliviousness: selection never shrinks the array."""
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            out_rows, out_flags = oblivious_select(
                ctx, rows, flags, rows[:, 1] >= 20, payload_words=2
            )
        assert out_rows.shape == rows.shape

    def test_flags_are_conjunction(self, rows_flags):
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            _, out_flags = oblivious_select(
                ctx, rows, flags, rows[:, 1] >= 20, payload_words=2
            )
        # Row 0 fails predicate; row 3 is a dummy (its padded payload
        # may incidentally satisfy anything, but its flag stays off).
        assert out_flags.tolist() == [False, True, True, False]

    def test_mask_length_mismatch_raises(self, rows_flags):
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            with pytest.raises(ValueError):
                oblivious_select(ctx, rows, flags, np.asarray([True]), 2)

    def test_charges_one_scan(self, rows_flags):
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            oblivious_select(ctx, rows, flags, flags, payload_words=2)
            assert ctx.gates == len(rows) * runtime.cost_model.scan_row_gates(2)


class TestObliviousCount:
    def test_counts_real_rows_only(self, rows_flags):
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert oblivious_count(ctx, rows, flags, None, 2) == 3

    def test_predicate_restricts_count(self, rows_flags):
        rows, flags = rows_flags
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            count = oblivious_count(ctx, rows, flags, rows[:, 1] >= 20, 2)
        assert count == 2

    def test_cost_scales_with_total_rows_not_real_rows(self):
        """Dummies cost scan time — the core of the EP-vs-DP trade-off."""
        runtime = MPCRuntime(seed=0)
        rows_small = np.zeros((10, 2), dtype=np.uint32)
        rows_big = np.zeros((1000, 2), dtype=np.uint32)
        no_flags_small = np.zeros(10, dtype=bool)
        no_flags_big = np.zeros(1000, dtype=bool)
        with runtime.protocol("a") as ctx:
            oblivious_count(ctx, rows_small, no_flags_small, None, 2)
            small_gates = ctx.gates
        with runtime.protocol("b") as ctx:
            oblivious_count(ctx, rows_big, no_flags_big, None, 2)
            big_gates = ctx.gates
        assert big_gates == 100 * small_gates

    def test_empty_table(self):
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            assert (
                oblivious_count(
                    ctx, np.zeros((0, 2), dtype=np.uint32), np.zeros(0, dtype=bool), None, 2
                )
                == 0
            )
