"""Security boundary and failure-injection tests.

These validate the simulated threat model: the places where a real
deployment relies on cryptography are, here, guarded interfaces — and
crossing them must fail loudly, not silently leak.
"""

import numpy as np
import pytest

from repro.common.errors import (
    ContributionBudgetError,
    ProtocolError,
    SecurityError,
)
from repro.common.rng import spawn
from repro.common.types import RecordBatch, Schema
from repro.core.engine import EngineConfig, IncShrinkEngine
from repro.mpc.runtime import MPCRuntime
from repro.sharing.shared_value import SharedArray, SharedTable


class TestShareConfidentiality:
    def test_single_server_share_store_is_uniform_noise(self, tiny_view_def):
        """What server 0 stores about an upload carries no signal: its
        share of a constant column should look uniform, not constant."""
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="otm"))
        rows = np.asarray([[7, 1]] * 64, dtype=np.uint32)
        probe = RecordBatch(tiny_view_def.probe_schema, rows)
        driver = RecordBatch.empty(tiny_view_def.driver_schema).padded_to(3)
        engine.upload(1, probe, driver)
        share0 = engine.probe_store.batches[0].table.rows.share0
        # 64 identical plaintext rows; shares must not repeat that way.
        assert len({int(v) for v in share0[:, 0]}) > 32

    def test_counter_shares_refresh_every_round(self, tiny_view_def):
        engine = IncShrinkEngine(
            tiny_view_def, EngineConfig(mode="dp-timer", timer_interval=1)
        )
        driver = RecordBatch.empty(tiny_view_def.driver_schema).padded_to(3)
        probe = RecordBatch.empty(tiny_view_def.probe_schema).padded_to(4)
        snapshots = []
        for t in (1, 2, 3):
            engine.upload(t, probe, driver)
            engine.process_step(t)
            snapshots.append(int(engine.transform.counter._shares.share0[0]))
        # Counter value is 0 throughout, yet the stored shares change.
        assert len(set(snapshots)) > 1


class TestProtocolBoundaries:
    def test_no_plaintext_reveal_outside_protocol(self, runtime):
        shared = runtime.owner_share_table(
            Schema(("a",)),
            np.asarray([[5]], dtype=np.uint32),
            np.asarray([1], dtype=np.uint32),
        )
        with runtime.protocol("p") as ctx:
            pass  # scope opens and closes
        with pytest.raises(SecurityError):
            ctx.reveal_table(shared)

    def test_share_array_outside_scope_raises(self, runtime):
        with runtime.protocol("p") as ctx:
            pass
        with pytest.raises(SecurityError):
            ctx.share_array(np.asarray([1], dtype=np.uint32))

    def test_joint_uniform_outside_scope_raises(self, runtime):
        with runtime.protocol("p") as ctx:
            pass
        with pytest.raises(SecurityError):
            ctx.joint_uniform_u32()

    def test_charging_outside_scope_raises(self, runtime):
        with runtime.protocol("p") as ctx:
            pass
        with pytest.raises(SecurityError):
            ctx.charge_gates(1)


class TestTamperingAndMisuse:
    def test_mismatched_share_shapes_rejected(self):
        with pytest.raises(ProtocolError):
            SharedArray(np.zeros(4, dtype=np.uint32), np.zeros(5, dtype=np.uint32))

    def test_truncated_share_store_detected_on_recover(self):
        arr = SharedArray.from_plain(np.arange(8, dtype=np.uint32), spawn(0, "s"))
        arr.share1 = arr.share1[:4]  # a corrupted/truncated store
        runtime = MPCRuntime(seed=0)
        with runtime.protocol("p") as ctx:
            with pytest.raises(ProtocolError):
                ctx.reveal(arr)

    def test_budget_exhaustion_blocks_further_use(self, tiny_view_def):
        """Running Transform past a batch's lifetime budget must fail
        inside the budget machinery, never silently reuse retired data."""
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="ep"))
        probe = RecordBatch(
            tiny_view_def.probe_schema, np.asarray([[1, 1]], dtype=np.uint32)
        ).padded_to(4)
        empty_probe = RecordBatch.empty(tiny_view_def.probe_schema).padded_to(4)
        driver = RecordBatch.empty(tiny_view_def.driver_schema).padded_to(3)
        engine.upload(1, probe, driver)
        engine.process_step(1)
        for t in (2, 3, 4, 5):
            engine.upload(t, empty_probe, driver)
            engine.process_step(t)
        # Batch from t=1 was active for exactly b//ω = 3 invocations.
        assert engine.ledger.remaining_uses(tiny_view_def.probe_table, 1) == 0
        with pytest.raises(ContributionBudgetError):
            engine.ledger.charge_invocation(tiny_view_def.probe_table, 1, 99)

    def test_double_upload_same_time_rejected(self, tiny_view_def):
        engine = IncShrinkEngine(tiny_view_def, EngineConfig(mode="otm"))
        probe = RecordBatch.empty(tiny_view_def.probe_schema).padded_to(4)
        driver = RecordBatch.empty(tiny_view_def.driver_schema).padded_to(3)
        engine.upload(1, probe, driver)
        with pytest.raises(ContributionBudgetError, match="already registered"):
            engine.upload(1, probe, driver)


class TestLeakageSurface:
    def test_transcript_contains_no_plaintext_rows(self, tiny_view_def):
        """Nothing resembling uploaded payloads may appear in any public
        event — the transcript is sizes, times, and booleans only."""
        engine = IncShrinkEngine(
            tiny_view_def, EngineConfig(mode="dp-ant", ant_threshold=2.0)
        )
        secret_value = 3_141_592
        probe = RecordBatch(
            tiny_view_def.probe_schema,
            np.asarray([[secret_value % (1 << 32), 1]], dtype=np.uint32),
        ).padded_to(4)
        driver = RecordBatch.empty(tiny_view_def.driver_schema).padded_to(3)
        engine.upload(1, probe, driver)
        engine.process_step(1)
        for event in engine.runtime.transcript:
            for value in event.payload.values():
                assert value != secret_value % (1 << 32)

    def test_dp_update_sizes_not_exact_counts_across_runs(self):
        """Aggregate check over seeds: released sizes differ from true
        window counts in the vast majority of updates (Laplace noise is
        continuous; ties are rounding flukes)."""
        from repro.experiments.harness import RunConfig, run_experiment

        exact = 0
        total = 0
        for seed in range(3):
            res = run_experiment(
                RunConfig(dataset="tpcds", mode="dp-timer", n_steps=40, seed=seed)
            )
            sizes = [
                e.payload["size"]
                for e in res.engine.runtime.transcript.of_kind("view-update")
            ]
            # reconstruct true per-window counts from the logical mirror
            vd = res.engine.view_def
            total += len(sizes)
            exact += sum(1 for s in sizes if s == 0)
        assert total > 0
        assert exact < total  # not all updates degenerate
