"""Regression: vectorized join grouping/matching ≡ the historical loops.

The argsort-based ``_group_by_key``, the per-driver vectorized
``match_pairs_truncated``, and the fancy-indexed padded emission must
produce byte-identical :class:`~repro.oblivious.join_common.JoinResult`
outputs — and charge byte-identical gates — to the per-pair Python loops
they replaced.  The reference implementations below are verbatim copies
of the pre-vectorization code paths.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.common.types import Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.join_common import JoinResult, match_pairs_truncated
from repro.oblivious.nested_loop_join import truncated_nested_loop_join
from repro.oblivious.sort import batcher_network, composite_key, oblivious_sort
from repro.oblivious.sort_merge_join import (
    _group_by_key,
    _predicate_keep_mask,
    oblivious_join_multi_aggregate,
    truncated_sort_merge_join,
)

VIEW = JoinViewDefinition(
    name="reg",
    probe_table="orders",
    probe_schema=Schema(("key", "ots")),
    probe_key="key",
    probe_ts="ots",
    driver_table="shipments",
    driver_schema=Schema(("key", "sts")),
    driver_key="key",
    driver_ts="sts",
    window_lo=0,
    window_hi=3,
    omega=2,
    budget=6,
)


# -- reference (loop) implementations, verbatim from the pre-vectorized code --
def _loop_group_by_key(keys) -> dict[int, list[int]]:
    groups: dict[int, list[int]] = defaultdict(list)
    for pos, key in enumerate(keys):
        groups[int(key)].append(pos)
    return groups


def _loop_match_pairs(driver_order, candidate_lists, omega, driver_caps, probe_caps):
    driver_emitted = np.zeros(len(driver_caps), dtype=np.int64)
    probe_emitted = np.zeros(len(probe_caps), dtype=np.int64)
    driver_allow = np.minimum(omega, np.asarray(driver_caps)).astype(np.int64)
    probe_allow = np.minimum(omega, np.asarray(probe_caps)).astype(np.int64)
    assigned: list[list[int]] = []
    dropped = 0
    for k, d in enumerate(driver_order):
        d = int(d)
        matches: list[int] = []
        for p in candidate_lists[k]:
            p = int(p)
            if driver_emitted[d] >= driver_allow[d] or probe_emitted[p] >= probe_allow[p]:
                dropped += 1
                continue
            matches.append(p)
            driver_emitted[d] += 1
            probe_emitted[p] += 1
        assigned.append(matches)
    return assigned, driver_emitted, probe_emitted, dropped


def _loop_sort_merge_join(
    ctx, probe_rows, probe_flags, probe_key_col, probe_caps,
    driver_rows, driver_flags, driver_key_col, driver_caps,
    omega, pair_predicate=None, output_left="probe",
):
    n_probe, w_probe = probe_rows.shape if probe_rows.size else (0, probe_rows.shape[1])
    n_driver, w_driver = (
        driver_rows.shape if driver_rows.size else (0, driver_rows.shape[1])
    )
    out_width = w_probe + w_driver
    union_keys = np.concatenate(
        [
            probe_rows[:, probe_key_col] if n_probe else np.zeros(0, dtype=np.uint32),
            driver_rows[:, driver_key_col] if n_driver else np.zeros(0, dtype=np.uint32),
        ]
    )
    side = np.concatenate(
        [np.zeros(n_probe, dtype=np.uint32), np.ones(n_driver, dtype=np.uint32)]
    )
    position = np.concatenate(
        [np.arange(n_probe, dtype=np.uint32), np.arange(n_driver, dtype=np.uint32)]
    )
    tiebreak = (side << np.uint32(24)) | (position & np.uint32(0xFFFFFF))
    sort_keys = composite_key(union_keys, tiebreak)
    union_payload_words = max(w_probe, w_driver) + 2
    _, [sorted_side, sorted_pos] = oblivious_sort(
        ctx, sort_keys, [side, position], union_payload_words
    )
    groups = _loop_group_by_key(union_keys)
    candidate_lists: list[list[int]] = []
    driver_order: list[int] = []
    for s, pos in zip(sorted_side, sorted_pos):
        if s != 1:
            continue
        d = int(pos)
        driver_order.append(d)
        if not driver_flags[d]:
            candidate_lists.append([])
            continue
        key = int(driver_rows[d, driver_key_col])
        cands: list[int] = []
        for upos in groups.get(key, []):
            if upos >= n_probe:
                continue
            p = upos
            if not probe_flags[p]:
                continue
            if pair_predicate is None or pair_predicate(probe_rows[p], driver_rows[d]):
                cands.append(p)
        candidate_lists.append(cands)
        ctx.charge_join_probes(max(len(groups.get(key, [])) - 1, 0), out_width)
    assigned, driver_emitted, probe_emitted, dropped = _loop_match_pairs(
        np.asarray(driver_order, dtype=np.int64),
        candidate_lists,
        omega,
        driver_caps,
        probe_caps,
    )
    out_rows = np.zeros((n_driver * omega, out_width), dtype=np.uint32)
    out_flags = np.zeros(n_driver * omega, dtype=bool)
    ctx.charge_scan(n_driver * omega, out_width)
    for k, d in enumerate(driver_order):
        base = int(d) * omega
        for j, p in enumerate(assigned[k]):
            if output_left == "probe":
                out_rows[base + j, :w_probe] = probe_rows[p]
                out_rows[base + j, w_probe:] = driver_rows[d]
            else:
                out_rows[base + j, :w_driver] = driver_rows[d]
                out_rows[base + j, w_driver:] = probe_rows[p]
            out_flags[base + j] = True
    return JoinResult(
        rows=out_rows,
        flags=out_flags,
        left_emitted=probe_emitted,
        right_emitted=driver_emitted,
        dropped=dropped,
    )


def _random_inputs(rng, n_probe, n_driver, n_keys):
    probe = np.column_stack(
        [
            rng.integers(0, n_keys, n_probe),
            rng.integers(0, 6, n_probe),
        ]
    ).astype(np.uint32)
    driver = np.column_stack(
        [
            rng.integers(0, n_keys, n_driver),
            rng.integers(0, 8, n_driver),
        ]
    ).astype(np.uint32)
    probe_flags = rng.random(n_probe) < 0.8
    driver_flags = rng.random(n_driver) < 0.8
    probe_caps = rng.integers(0, 7, n_probe)
    driver_caps = rng.integers(0, 7, n_driver)
    return probe, probe_flags, probe_caps, driver, driver_flags, driver_caps


class TestGroupByKey:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_loop_reference(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 9, 64).astype(np.uint32)
        fast = _group_by_key(keys)
        slow = _loop_group_by_key(keys)
        assert set(fast) == set(slow)
        for key, positions in slow.items():
            assert fast[key].tolist() == positions

    def test_empty_keys(self):
        assert _group_by_key(np.zeros(0, dtype=np.uint32)) == {}


class TestMatchPairs:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_loop_reference_under_binding_caps(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_driver, n_probe = 12, 16
        driver_order = rng.permutation(n_driver).astype(np.int64)
        candidate_lists = [
            rng.choice(n_probe, size=rng.integers(0, 6), replace=False).tolist()
            for _ in range(n_driver)
        ]
        driver_caps = rng.integers(0, 4, n_driver)
        probe_caps = rng.integers(0, 4, n_probe)
        omega = int(rng.integers(1, 4))
        got = match_pairs_truncated(
            driver_order, candidate_lists, omega, driver_caps, probe_caps
        )
        want = _loop_match_pairs(
            driver_order, candidate_lists, omega, driver_caps, probe_caps
        )
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])
        assert np.array_equal(got[2], want[2])
        assert got[3] == want[3]


class TestMatchPairsDuplicateCandidates:
    def test_duplicate_probe_in_one_list_matches_loop_semantics(self):
        """A repeated probe index must honor the sequential rule: its
        first occurrence can exhaust the cap, dropping the second."""
        driver_order = np.asarray([0], dtype=np.int64)
        candidate_lists = [[4, 4, 2]]
        got = match_pairs_truncated(
            driver_order,
            candidate_lists,
            omega=5,
            driver_caps=np.asarray([5]),
            probe_caps=np.asarray([5, 5, 5, 5, 1]),
        )
        want = _loop_match_pairs(
            driver_order,
            candidate_lists,
            5,
            np.asarray([5]),
            np.asarray([5, 5, 5, 5, 1]),
        )
        assert got[0] == want[0] == [[4, 2]]
        assert np.array_equal(got[2], want[2])
        assert got[3] == want[3] == 1


class TestFullJoinRegression:
    @pytest.mark.parametrize("seed", range(6))
    def test_join_result_and_gates_match_loop_version(self, seed):
        rng = np.random.default_rng(200 + seed)
        probe, p_flags, p_caps, driver, d_flags, d_caps = _random_inputs(
            rng, n_probe=20, n_driver=12, n_keys=6
        )
        results = []
        gates = []
        for impl in (truncated_sort_merge_join, _loop_sort_merge_join):
            runtime = MPCRuntime(seed=3)
            with runtime.protocol("join", 1) as ctx:
                res = impl(
                    ctx,
                    probe, p_flags, 0, p_caps.copy(),
                    driver, d_flags, 0, d_caps.copy(),
                    omega=2,
                    pair_predicate=VIEW.pair_predicate,
                )
                gates.append(ctx.gates)
            results.append(res)
        fast, slow = results
        assert np.array_equal(fast.rows, slow.rows)
        assert np.array_equal(fast.flags, slow.flags)
        assert np.array_equal(fast.left_emitted, slow.left_emitted)
        assert np.array_equal(fast.right_emitted, slow.right_emitted)
        assert fast.dropped == slow.dropped
        assert gates[0] == gates[1], "vectorization must not change charges"

    def test_empty_driver_side(self):
        runtime = MPCRuntime(seed=0)
        probe = np.asarray([[1, 1]], dtype=np.uint32)
        driver = np.zeros((0, 2), dtype=np.uint32)
        with runtime.protocol("join", 1) as ctx:
            res = truncated_sort_merge_join(
                ctx,
                probe, np.asarray([True]), 0, np.asarray([5]),
                driver, np.zeros(0, dtype=bool), 0, np.zeros(0, dtype=np.int64),
                omega=2,
            )
        assert res.rows.shape == (0, 4)
        assert res.dropped == 0


# -- batcher network: verbatim pre-vectorization double loop ------------------
def _loop_batcher_network(n):
    if n <= 1:
        return ()
    stages = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            lo: list[int] = []
            hi: list[int] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (p * 2) == (i + j + k) // (p * 2):
                        lo.append(i + j)
                        hi.append(i + j + k)
            if lo:
                stages.append(
                    (np.asarray(lo, dtype=np.int64), np.asarray(hi, dtype=np.int64))
                )
            k //= 2
        p *= 2
    return tuple(stages)


class TestBatcherNetworkRegression:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 128, 512])
    def test_stages_match_loop_reference(self, n):
        fast = batcher_network(n)
        slow = _loop_batcher_network(n)
        assert len(fast) == len(slow)
        for (flo, fhi), (slo, shi) in zip(fast, slow):
            assert np.array_equal(flo, slo)
            assert np.array_equal(fhi, shi)

    def test_trivial_and_invalid_sizes(self):
        assert batcher_network(1) == ()
        with pytest.raises(ValueError):
            batcher_network(12)


# -- nested-loop join: verbatim pre-vectorization per-pair loops --------------
def _loop_nested_loop_join(
    ctx, probe_rows, probe_flags, probe_key_col, probe_caps,
    driver_rows, driver_flags, driver_key_col, driver_caps,
    omega, pair_predicate=None, output_left="probe",
):
    from repro.oblivious.sort import network_comparator_count

    n_probe, w_probe = probe_rows.shape if probe_rows.size else (0, probe_rows.shape[1])
    n_driver, w_driver = (
        driver_rows.shape if driver_rows.size else (0, driver_rows.shape[1])
    )
    out_width = w_probe + w_driver
    driver_order = np.arange(n_driver, dtype=np.int64)
    candidate_lists: list[list[int]] = []
    for d in range(n_driver):
        ctx.charge_join_probes(n_probe, out_width)
        ctx.charge_compare_exchanges(network_comparator_count(n_probe), out_width)
        cands: list[int] = []
        if driver_flags[d]:
            key = int(driver_rows[d, driver_key_col])
            for p in range(n_probe):
                if not probe_flags[p]:
                    continue
                if int(probe_rows[p, probe_key_col]) != key:
                    continue
                if pair_predicate is None or pair_predicate(
                    probe_rows[p], driver_rows[d]
                ):
                    cands.append(p)
        candidate_lists.append(cands)
    assigned, driver_emitted, probe_emitted, dropped = _loop_match_pairs(
        driver_order, candidate_lists, omega, driver_caps, probe_caps
    )
    out_rows = np.zeros((n_driver * omega, out_width), dtype=np.uint32)
    out_flags = np.zeros(n_driver * omega, dtype=bool)
    for d in range(n_driver):
        base = d * omega
        for j, p in enumerate(assigned[d]):
            if output_left == "probe":
                out_rows[base + j, :w_probe] = probe_rows[p]
                out_rows[base + j, w_probe:] = driver_rows[d]
            else:
                out_rows[base + j, :w_driver] = driver_rows[d]
                out_rows[base + j, w_driver:] = probe_rows[p]
            out_flags[base + j] = True
    return JoinResult(
        rows=out_rows,
        flags=out_flags,
        left_emitted=probe_emitted,
        right_emitted=driver_emitted,
        dropped=dropped,
    )


class TestNestedLoopJoinRegression:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("output_left", ["probe", "driver"])
    def test_join_result_and_gates_match_loop_version(self, seed, output_left):
        rng = np.random.default_rng(300 + seed)
        probe, p_flags, p_caps, driver, d_flags, d_caps = _random_inputs(
            rng, n_probe=18, n_driver=10, n_keys=5
        )
        results = []
        gates = []
        for impl in (truncated_nested_loop_join, _loop_nested_loop_join):
            runtime = MPCRuntime(seed=3)
            with runtime.protocol("join", 1) as ctx:
                res = impl(
                    ctx,
                    probe, p_flags, 0, p_caps.copy(),
                    driver, d_flags, 0, d_caps.copy(),
                    omega=2,
                    pair_predicate=VIEW.pair_predicate,
                    output_left=output_left,
                )
                gates.append(ctx.gates)
            results.append(res)
        fast, slow = results
        assert np.array_equal(fast.rows, slow.rows)
        assert np.array_equal(fast.flags, slow.flags)
        assert np.array_equal(fast.left_emitted, slow.left_emitted)
        assert np.array_equal(fast.right_emitted, slow.right_emitted)
        assert fast.dropped == slow.dropped
        assert gates[0] == gates[1], "vectorization must not change charges"

    def test_empty_sides(self):
        runtime = MPCRuntime(seed=0)
        probe = np.zeros((0, 2), dtype=np.uint32)
        driver = np.zeros((0, 2), dtype=np.uint32)
        with runtime.protocol("join", 1) as ctx:
            res = truncated_nested_loop_join(
                ctx,
                probe, np.zeros(0, dtype=bool), 0, np.zeros(0, dtype=np.int64),
                driver, np.zeros(0, dtype=bool), 0, np.zeros(0, dtype=np.int64),
                omega=2,
            )
        assert res.rows.shape == (0, 4)
        assert res.dropped == 0


# -- NM multi-aggregate: verbatim pre-vectorization per-right-row loop --------
def _loop_join_multi_aggregate(
    ctx, left_rows, left_flags, left_key_col, right_rows, right_flags,
    right_key_col, sum_specs=(), need_count=True, group_spec=None,
    group_domain=None, clause_specs=(), pair_predicate=None,
):
    grouped = group_spec is not None
    n_groups = len(group_domain) if grouped else 1
    n_left, w_left = left_rows.shape if left_rows.size else (0, left_rows.shape[1])
    n_right, w_right = right_rows.shape if right_rows.size else (0, right_rows.shape[1])
    out_width = w_left + w_right
    union_keys = np.concatenate(
        [
            left_rows[:, left_key_col] if n_left else np.zeros(0, dtype=np.uint32),
            right_rows[:, right_key_col] if n_right else np.zeros(0, dtype=np.uint32),
        ]
    )
    side = np.concatenate(
        [np.zeros(n_left, dtype=np.uint32), np.ones(n_right, dtype=np.uint32)]
    )
    sort_keys = composite_key(union_keys, side)
    payload_words = max(w_left, w_right) + 2
    oblivious_sort(ctx, sort_keys, [side], payload_words)

    def _pair_value(spec_side, col, i, j):
        row = left_rows[i] if spec_side == "left" else right_rows[j]
        return int(row[col])

    domain_index = (
        {int(v): g for g, v in enumerate(group_domain)} if grouped else None
    )
    slot_gates = ctx.cost_model.aggregate_slot_gates(
        need_count, len(sum_specs), n_groups, grouped
    ) + ctx.cost_model.predicate_eval_gates(len(clause_specs))
    counts = np.zeros(n_groups, dtype=np.int64)
    sums = np.zeros((n_groups, len(sum_specs)), dtype=np.uint64)
    live_left = np.flatnonzero(np.asarray(left_flags, dtype=bool)[:n_left])
    groups_left = (
        _group_by_key(left_rows[live_left, left_key_col]) if live_left.size else {}
    )
    empty = np.zeros(0, dtype=np.int64)
    for j in range(n_right):
        if not right_flags[j]:
            continue
        key = int(right_rows[j, right_key_col])
        partners = live_left[groups_left.get(key, empty)]
        ctx.charge_join_probes(len(partners), out_width)
        if slot_gates:
            ctx.charge_gates(len(partners) * slot_gates)
        for i in partners:
            i = int(i)
            if pair_predicate is not None and not pair_predicate(
                left_rows[i], right_rows[j]
            ):
                continue
            if any(
                not lo <= _pair_value(s, c, i, j) <= hi
                for s, c, lo, hi in clause_specs
            ):
                continue
            if grouped:
                g = domain_index.get(_pair_value(group_spec[0], group_spec[1], i, j))
                if g is None:
                    continue
            else:
                g = 0
            if need_count:
                counts[g] += 1
            for s, (spec_side, col) in enumerate(sum_specs):
                sums[g, s] += np.uint64(_pair_value(spec_side, col, i, j))
    ctx.charge_scan(n_left + n_right, payload_words)
    return counts, sums


class TestMultiAggregateRegression:
    #: Domain with a duplicate value (3): the historical dict build routes
    #: value 3 into its *last* slot — the vectorized bisect must match.
    DOMAINS = [None, (0, 1, 2, 3), (3, 1, 0, 3, 2)]

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_counts_sums_gates_match_loop_version(self, seed, domain):
        rng = np.random.default_rng(400 + seed)
        probe, p_flags, _, driver, d_flags, _ = _random_inputs(
            rng, n_probe=24, n_driver=16, n_keys=5
        )
        kwargs = dict(
            sum_specs=(("left", 1), ("right", 1)),
            need_count=True,
            group_spec=("right", 0) if domain else None,
            group_domain=domain,
            clause_specs=(("left", 1, 1, 4),),
            pair_predicate=VIEW.pair_predicate,
        )
        outs = []
        gates = []
        for impl in (oblivious_join_multi_aggregate, _loop_join_multi_aggregate):
            runtime = MPCRuntime(seed=7)
            with runtime.protocol("agg", 1) as ctx:
                outs.append(
                    impl(ctx, probe, p_flags, 0, driver, d_flags, 0, **kwargs)
                )
                gates.append(ctx.gates)
        (fc, fs), (sc, ss) = outs
        assert np.array_equal(fc, sc)
        assert np.array_equal(fs, ss)
        assert fs.dtype == ss.dtype == np.uint64
        assert gates[0] == gates[1], "vectorization must not change charges"

    def test_sum_wraparound_matches_loop(self):
        """uint64 accumulator overflow must wrap identically in both paths."""
        left = np.asarray([[1, 0xFFFFFFFF]] * 3, dtype=np.uint32)
        right = np.asarray([[1, 0]] * 4, dtype=np.uint32)
        flags_l = np.ones(3, dtype=bool)
        flags_r = np.ones(4, dtype=bool)
        outs = []
        for impl in (oblivious_join_multi_aggregate, _loop_join_multi_aggregate):
            runtime = MPCRuntime(seed=1)
            with runtime.protocol("agg", 1) as ctx:
                outs.append(
                    impl(
                        ctx, left, flags_l, 0, right, flags_r, 0,
                        sum_specs=(("left", 1),),
                    )
                )
        assert np.array_equal(outs[0][1], outs[1][1])
        assert outs[0][0][0] == 12


class TestPredicateKeepMask:
    def test_batch_hook_equals_per_pair_calls(self):
        rng = np.random.default_rng(9)
        probe = rng.integers(0, 12, (40, 2)).astype(np.uint32)
        driver = rng.integers(0, 12, (40, 2)).astype(np.uint32)
        via_hook = _predicate_keep_mask(VIEW.pair_predicate, probe, driver)
        via_loop = np.asarray(
            [VIEW.pair_predicate(p, d) for p, d in zip(probe, driver)], dtype=bool
        )
        assert np.array_equal(via_hook, via_loop)
        assert via_hook.any() and not via_hook.all()  # non-degenerate case

    def test_plain_callable_falls_back_to_per_pair(self):
        calls = []

        def pred(p, d):
            calls.append(1)
            return int(p[0]) == int(d[0])

        probe = np.asarray([[1, 0], [2, 0], [3, 0]], dtype=np.uint32)
        driver = np.asarray([[1, 0], [9, 0], [3, 0]], dtype=np.uint32)
        mask = _predicate_keep_mask(pred, probe, driver)
        assert mask.tolist() == [True, False, True]
        assert len(calls) == 3

    def test_batch_matches_scalar_on_window_edges(self):
        probe = np.asarray(
            [[1, 5], [1, 5], [1, 5], [1, 8]], dtype=np.uint32
        )
        driver = np.asarray(
            [[1, 5], [1, 8], [1, 9], [1, 5]], dtype=np.uint32
        )  # deltas: 0, 3, 4, -3 against window [0, 3]
        batch = VIEW.pair_predicate_batch(probe, driver)
        scalar = [VIEW.pair_predicate(p, d) for p, d in zip(probe, driver)]
        assert batch.tolist() == scalar == [True, True, False, False]
