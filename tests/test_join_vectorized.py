"""Regression: vectorized join grouping/matching ≡ the historical loops.

The argsort-based ``_group_by_key``, the per-driver vectorized
``match_pairs_truncated``, and the fancy-indexed padded emission must
produce byte-identical :class:`~repro.oblivious.join_common.JoinResult`
outputs — and charge byte-identical gates — to the per-pair Python loops
they replaced.  The reference implementations below are verbatim copies
of the pre-vectorization code paths.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.common.types import Schema
from repro.core.view_def import JoinViewDefinition
from repro.mpc.runtime import MPCRuntime
from repro.oblivious.join_common import JoinResult, match_pairs_truncated
from repro.oblivious.sort import composite_key, oblivious_sort
from repro.oblivious.sort_merge_join import (
    _group_by_key,
    truncated_sort_merge_join,
)

VIEW = JoinViewDefinition(
    name="reg",
    probe_table="orders",
    probe_schema=Schema(("key", "ots")),
    probe_key="key",
    probe_ts="ots",
    driver_table="shipments",
    driver_schema=Schema(("key", "sts")),
    driver_key="key",
    driver_ts="sts",
    window_lo=0,
    window_hi=3,
    omega=2,
    budget=6,
)


# -- reference (loop) implementations, verbatim from the pre-vectorized code --
def _loop_group_by_key(keys) -> dict[int, list[int]]:
    groups: dict[int, list[int]] = defaultdict(list)
    for pos, key in enumerate(keys):
        groups[int(key)].append(pos)
    return groups


def _loop_match_pairs(driver_order, candidate_lists, omega, driver_caps, probe_caps):
    driver_emitted = np.zeros(len(driver_caps), dtype=np.int64)
    probe_emitted = np.zeros(len(probe_caps), dtype=np.int64)
    driver_allow = np.minimum(omega, np.asarray(driver_caps)).astype(np.int64)
    probe_allow = np.minimum(omega, np.asarray(probe_caps)).astype(np.int64)
    assigned: list[list[int]] = []
    dropped = 0
    for k, d in enumerate(driver_order):
        d = int(d)
        matches: list[int] = []
        for p in candidate_lists[k]:
            p = int(p)
            if driver_emitted[d] >= driver_allow[d] or probe_emitted[p] >= probe_allow[p]:
                dropped += 1
                continue
            matches.append(p)
            driver_emitted[d] += 1
            probe_emitted[p] += 1
        assigned.append(matches)
    return assigned, driver_emitted, probe_emitted, dropped


def _loop_sort_merge_join(
    ctx, probe_rows, probe_flags, probe_key_col, probe_caps,
    driver_rows, driver_flags, driver_key_col, driver_caps,
    omega, pair_predicate=None, output_left="probe",
):
    n_probe, w_probe = probe_rows.shape if probe_rows.size else (0, probe_rows.shape[1])
    n_driver, w_driver = (
        driver_rows.shape if driver_rows.size else (0, driver_rows.shape[1])
    )
    out_width = w_probe + w_driver
    union_keys = np.concatenate(
        [
            probe_rows[:, probe_key_col] if n_probe else np.zeros(0, dtype=np.uint32),
            driver_rows[:, driver_key_col] if n_driver else np.zeros(0, dtype=np.uint32),
        ]
    )
    side = np.concatenate(
        [np.zeros(n_probe, dtype=np.uint32), np.ones(n_driver, dtype=np.uint32)]
    )
    position = np.concatenate(
        [np.arange(n_probe, dtype=np.uint32), np.arange(n_driver, dtype=np.uint32)]
    )
    tiebreak = (side << np.uint32(24)) | (position & np.uint32(0xFFFFFF))
    sort_keys = composite_key(union_keys, tiebreak)
    union_payload_words = max(w_probe, w_driver) + 2
    _, [sorted_side, sorted_pos] = oblivious_sort(
        ctx, sort_keys, [side, position], union_payload_words
    )
    groups = _loop_group_by_key(union_keys)
    candidate_lists: list[list[int]] = []
    driver_order: list[int] = []
    for s, pos in zip(sorted_side, sorted_pos):
        if s != 1:
            continue
        d = int(pos)
        driver_order.append(d)
        if not driver_flags[d]:
            candidate_lists.append([])
            continue
        key = int(driver_rows[d, driver_key_col])
        cands: list[int] = []
        for upos in groups.get(key, []):
            if upos >= n_probe:
                continue
            p = upos
            if not probe_flags[p]:
                continue
            if pair_predicate is None or pair_predicate(probe_rows[p], driver_rows[d]):
                cands.append(p)
        candidate_lists.append(cands)
        ctx.charge_join_probes(max(len(groups.get(key, [])) - 1, 0), out_width)
    assigned, driver_emitted, probe_emitted, dropped = _loop_match_pairs(
        np.asarray(driver_order, dtype=np.int64),
        candidate_lists,
        omega,
        driver_caps,
        probe_caps,
    )
    out_rows = np.zeros((n_driver * omega, out_width), dtype=np.uint32)
    out_flags = np.zeros(n_driver * omega, dtype=bool)
    ctx.charge_scan(n_driver * omega, out_width)
    for k, d in enumerate(driver_order):
        base = int(d) * omega
        for j, p in enumerate(assigned[k]):
            if output_left == "probe":
                out_rows[base + j, :w_probe] = probe_rows[p]
                out_rows[base + j, w_probe:] = driver_rows[d]
            else:
                out_rows[base + j, :w_driver] = driver_rows[d]
                out_rows[base + j, w_driver:] = probe_rows[p]
            out_flags[base + j] = True
    return JoinResult(
        rows=out_rows,
        flags=out_flags,
        left_emitted=probe_emitted,
        right_emitted=driver_emitted,
        dropped=dropped,
    )


def _random_inputs(rng, n_probe, n_driver, n_keys):
    probe = np.column_stack(
        [
            rng.integers(0, n_keys, n_probe),
            rng.integers(0, 6, n_probe),
        ]
    ).astype(np.uint32)
    driver = np.column_stack(
        [
            rng.integers(0, n_keys, n_driver),
            rng.integers(0, 8, n_driver),
        ]
    ).astype(np.uint32)
    probe_flags = rng.random(n_probe) < 0.8
    driver_flags = rng.random(n_driver) < 0.8
    probe_caps = rng.integers(0, 7, n_probe)
    driver_caps = rng.integers(0, 7, n_driver)
    return probe, probe_flags, probe_caps, driver, driver_flags, driver_caps


class TestGroupByKey:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_loop_reference(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 9, 64).astype(np.uint32)
        fast = _group_by_key(keys)
        slow = _loop_group_by_key(keys)
        assert set(fast) == set(slow)
        for key, positions in slow.items():
            assert fast[key].tolist() == positions

    def test_empty_keys(self):
        assert _group_by_key(np.zeros(0, dtype=np.uint32)) == {}


class TestMatchPairs:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_loop_reference_under_binding_caps(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_driver, n_probe = 12, 16
        driver_order = rng.permutation(n_driver).astype(np.int64)
        candidate_lists = [
            rng.choice(n_probe, size=rng.integers(0, 6), replace=False).tolist()
            for _ in range(n_driver)
        ]
        driver_caps = rng.integers(0, 4, n_driver)
        probe_caps = rng.integers(0, 4, n_probe)
        omega = int(rng.integers(1, 4))
        got = match_pairs_truncated(
            driver_order, candidate_lists, omega, driver_caps, probe_caps
        )
        want = _loop_match_pairs(
            driver_order, candidate_lists, omega, driver_caps, probe_caps
        )
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])
        assert np.array_equal(got[2], want[2])
        assert got[3] == want[3]


class TestMatchPairsDuplicateCandidates:
    def test_duplicate_probe_in_one_list_matches_loop_semantics(self):
        """A repeated probe index must honor the sequential rule: its
        first occurrence can exhaust the cap, dropping the second."""
        driver_order = np.asarray([0], dtype=np.int64)
        candidate_lists = [[4, 4, 2]]
        got = match_pairs_truncated(
            driver_order,
            candidate_lists,
            omega=5,
            driver_caps=np.asarray([5]),
            probe_caps=np.asarray([5, 5, 5, 5, 1]),
        )
        want = _loop_match_pairs(
            driver_order,
            candidate_lists,
            5,
            np.asarray([5]),
            np.asarray([5, 5, 5, 5, 1]),
        )
        assert got[0] == want[0] == [[4, 2]]
        assert np.array_equal(got[2], want[2])
        assert got[3] == want[3] == 1


class TestFullJoinRegression:
    @pytest.mark.parametrize("seed", range(6))
    def test_join_result_and_gates_match_loop_version(self, seed):
        rng = np.random.default_rng(200 + seed)
        probe, p_flags, p_caps, driver, d_flags, d_caps = _random_inputs(
            rng, n_probe=20, n_driver=12, n_keys=6
        )
        results = []
        gates = []
        for impl in (truncated_sort_merge_join, _loop_sort_merge_join):
            runtime = MPCRuntime(seed=3)
            with runtime.protocol("join", 1) as ctx:
                res = impl(
                    ctx,
                    probe, p_flags, 0, p_caps.copy(),
                    driver, d_flags, 0, d_caps.copy(),
                    omega=2,
                    pair_predicate=VIEW.pair_predicate,
                )
                gates.append(ctx.gates)
            results.append(res)
        fast, slow = results
        assert np.array_equal(fast.rows, slow.rows)
        assert np.array_equal(fast.flags, slow.flags)
        assert np.array_equal(fast.left_emitted, slow.left_emitted)
        assert np.array_equal(fast.right_emitted, slow.right_emitted)
        assert fast.dropped == slow.dropped
        assert gates[0] == gates[1], "vectorization must not change charges"

    def test_empty_driver_side(self):
        runtime = MPCRuntime(seed=0)
        probe = np.asarray([[1, 1]], dtype=np.uint32)
        driver = np.zeros((0, 2), dtype=np.uint32)
        with runtime.protocol("join", 1) as ctx:
            res = truncated_sort_merge_join(
                ctx,
                probe, np.asarray([True]), 0, np.asarray([5]),
                driver, np.zeros(0, dtype=bool), 0, np.zeros(0, dtype=np.int64),
                omega=2,
            )
        assert res.rows.shape == (0, 4)
        assert res.dropped == 0
