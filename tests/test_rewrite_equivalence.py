"""Property-style rewrite equivalence: view plan ≡ NM fallback.

The compiler's core correctness claim: for **any** :class:`LogicalQuery`
— any mix of aggregates, GROUP BY, residual predicate — answering via a
(loss-free) materialized view plan and via the NM fallback join returns
*identical* pre-noise aggregates, and routing choice never changes the
realized privacy loss for identical budgets.

Workloads are randomized per seed; the view runs EP with ω large enough
that truncation never drops a pair, so view state == exact join and any
disagreement between the two physical plans is a compiler bug, not an
approximation artifact.
"""

import numpy as np
import pytest

from repro.common.types import RecordBatch, Schema
from repro.core.view_def import JoinViewDefinition
from repro.query.ast import (
    AggregateSpec,
    ColumnEquals,
    ColumnRange,
    GroupBySpec,
    LogicalQuery,
)
from repro.query.planner import NM_JOIN, VIEW_SCAN, QueryPlan
from repro.query.rewrite import lower_to_view_scan
from repro.server.database import IncShrinkDatabase, ViewRegistration

PROBE_SCHEMA = Schema(("key", "ots"))
DRIVER_SCHEMA = Schema(("key", "sts"))
KEY_DOMAIN = 5
N_STEPS = 4

VIEW = JoinViewDefinition(
    name="prop",
    probe_table="orders",
    probe_schema=PROBE_SCHEMA,
    probe_key="key",
    probe_ts="ots",
    driver_table="shipments",
    driver_schema=DRIVER_SCHEMA,
    driver_key="key",
    driver_ts="sts",
    window_lo=0,
    window_hi=3,
    # ω exceeds any possible per-driver multiplicity (≤ 4 probe rows per
    # step × 4 steps) and the budget survives every invocation, so the EP
    # view materializes the exact join.
    omega=16,
    budget=256,
)


def random_workload(rng):
    steps = []
    for t in range(1, N_STEPS + 1):
        n_probe = int(rng.integers(0, 5))
        n_driver = int(rng.integers(0, 4))
        probe = np.column_stack(
            [rng.integers(0, KEY_DOMAIN, n_probe), np.full(n_probe, t)]
        ).astype(np.uint32)
        driver = np.column_stack(
            [rng.integers(0, KEY_DOMAIN, n_driver), np.full(n_driver, t)]
        ).astype(np.uint32)
        steps.append((t, probe, driver))
    return steps


def build_database(steps, mode="ep", seed=0, **registration_kwargs):
    db = IncShrinkDatabase(total_epsilon=50.0, seed=seed)
    db.register_view(ViewRegistration(VIEW, mode=mode, **registration_kwargs))
    dropped = 0
    for t, probe_rows, driver_rows in steps:
        probe = RecordBatch(PROBE_SCHEMA, probe_rows).padded_to(5)
        driver = RecordBatch(DRIVER_SCHEMA, driver_rows).padded_to(4)
        db.upload(t, {"orders": probe, "shipments": driver})
        dropped += db.step(t).view(VIEW.name).truncation_dropped
    assert dropped == 0, "ω/b must be loss-free for the equivalence property"
    return db


def random_query(rng) -> LogicalQuery:
    pool = [
        AggregateSpec.count(),
        AggregateSpec.sum_of("orders", "ots"),
        AggregateSpec.sum_of("shipments", "sts"),
        AggregateSpec.avg_of("shipments", "sts"),
    ]
    picks = sorted(
        rng.choice(len(pool), size=int(rng.integers(1, len(pool) + 1)), replace=False)
    )
    group_by = None
    if rng.random() < 0.5:
        group_by = GroupBySpec("orders", "key", tuple(range(KEY_DOMAIN)))
    predicate = None
    roll = rng.random()
    if roll < 0.3:
        predicate = ColumnEquals("orders", "key", int(rng.integers(0, KEY_DOMAIN)))
    elif roll < 0.6:
        lo = int(rng.integers(1, N_STEPS + 1))
        predicate = ColumnRange(
            "shipments", "sts", lo, int(rng.integers(lo, N_STEPS + 1))
        )
    return LogicalQuery.for_view(
        VIEW, *[pool[i] for i in picks], group_by=group_by, predicate=predicate
    )


def forced_view_plan(query: LogicalQuery) -> QueryPlan:
    return QueryPlan(
        kind=VIEW_SCAN,
        view_name=VIEW.name,
        view_query=lower_to_view_scan(query, VIEW),
        estimated_gates=0,
        estimated_seconds=0.0,
    )


FORCED_NM = QueryPlan(
    kind=NM_JOIN, view_name=None, view_query=None,
    estimated_gates=0, estimated_seconds=0.0,
)


class TestViewVersusNMEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_pre_noise_aggregates(self, seed):
        rng = np.random.default_rng(seed)
        db = build_database(random_workload(rng))
        t = N_STEPS
        for _ in range(4):
            query = random_query(rng)
            via_view = db.query(query, t, plan=forced_view_plan(query))
            via_nm = db.query(query, t, plan=FORCED_NM)
            assert via_view.answers.rows == via_nm.answers.rows, query
            assert via_view.answers.columns == via_nm.answers.columns
            assert via_view.answers.group_keys == via_nm.answers.group_keys
            # Both equal the plaintext ground truth (the view is loss-free).
            assert via_view.answers.rows == via_view.logical_answers.rows

    @pytest.mark.parametrize("seed", range(3))
    def test_planner_routed_answer_matches_forced_routes(self, seed):
        rng = np.random.default_rng(50 + seed)
        db = build_database(random_workload(rng))
        query = random_query(rng)
        routed = db.query(query, N_STEPS)
        forced = db.query(query, N_STEPS, plan=FORCED_NM)
        assert routed.answers.rows == forced.answers.rows


class TestEpsilonEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_realized_epsilon_for_identical_budgets(self, seed):
        """Routing (view scan vs NM join) is a pure physical choice: two
        identically-built DP deployments answering the same queries via
        different routes must report byte-identical realized ε."""
        rng = np.random.default_rng(seed)
        steps = random_workload(rng)
        queries = [random_query(rng) for _ in range(3)]
        db_view = build_database(steps, mode="dp-timer", seed=3, timer_interval=1)
        db_nm = build_database(steps, mode="dp-timer", seed=3, timer_interval=1)
        for query in queries:
            db_view.query(query, N_STEPS, plan=forced_view_plan(query))
            db_nm.query(query, N_STEPS, plan=FORCED_NM)
        assert db_view.realized_epsilon() == db_nm.realized_epsilon()

    def test_noisy_queries_spend_identically_on_either_route(self):
        rng = np.random.default_rng(99)
        steps = random_workload(rng)
        query = random_query(rng)
        db_view = build_database(steps, seed=5)
        db_nm = build_database(steps, seed=5)
        db_view.query(query, N_STEPS, plan=forced_view_plan(query), epsilon=0.7)
        db_nm.query(query, N_STEPS, plan=FORCED_NM, epsilon=0.7)
        assert db_view.query_epsilon() == db_nm.query_epsilon() == pytest.approx(0.7)
        assert db_view.realized_epsilon() == db_nm.realized_epsilon()
