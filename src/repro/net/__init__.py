"""Network serving subsystem: wire protocol, socket server, client SDK.

Everything the in-process serving runtime exposes — ordered uploads,
planned queries over the full :class:`~repro.query.ast.LogicalQuery`
AST, observability, checkpoints, resharding — made reachable across a
real service boundary:

* :mod:`repro.net.protocol` — the versioned, length-prefixed binary
  frame format (stdlib ``struct``): JSON payloads on version-1 frames,
  raw little-endian array blobs on version-2 frames, an incremental
  :class:`FrameDecoder` for event-driven reassembly, and the
  ``hello``/``welcome`` codec negotiation;
* :mod:`repro.net.server` — :class:`NetworkServer`, an event-driven
  (``selectors``) reactor front door: a small pool of loop threads
  multiplexing non-blocking sockets, bounded admission
  (reject-with-``retry_after``, no unbounded buffering), idle/stall
  timers, upload coalescing, and graceful drain;
* :mod:`repro.net.client` — :class:`IncShrinkClient`, a typed SDK with
  connect/retry, codec negotiation (binary-first), pipelined
  ``upload_many``, bytes-on-wire metering, and results mirroring
  :class:`~repro.server.database.DatabaseQueryResult`.

See ``docs/NETWORK.md`` for the frame reference, the codec negotiation
table, and the leakage argument (the wire exposes nothing beyond the
snapshot format's surface plus public lengths — in either codec).
"""

from .client import IncShrinkClient
from .protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    FRAME_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    ConnectionClosed,
    FrameDecoder,
    RemoteError,
    RemoteQueryResult,
    VersionMismatch,
    WireError,
    encode_frame,
    negotiate_codec,
    read_frame,
    write_frame,
)
from .server import NetworkServer

__all__ = [
    "CODEC_BINARY",
    "CODEC_JSON",
    "FRAME_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_CODECS",
    "ConnectionClosed",
    "FrameDecoder",
    "IncShrinkClient",
    "NetworkServer",
    "RemoteError",
    "RemoteQueryResult",
    "VersionMismatch",
    "WireError",
    "encode_frame",
    "negotiate_codec",
    "read_frame",
    "write_frame",
]
