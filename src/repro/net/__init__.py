"""Network serving subsystem: wire protocol, socket server, client SDK.

Everything the in-process serving runtime exposes — ordered uploads,
planned queries over the full :class:`~repro.query.ast.LogicalQuery`
AST, observability, checkpoints, resharding — made reachable across a
real service boundary:

* :mod:`repro.net.protocol` — the versioned, length-prefixed binary
  frame format (stdlib ``struct`` + JSON payloads) and its pure codecs;
* :mod:`repro.net.server` — :class:`NetworkServer`, a threaded socket
  front door with bounded admission (reject-with-``retry_after``, no
  unbounded buffering) and graceful drain;
* :mod:`repro.net.client` — :class:`IncShrinkClient`, a typed SDK with
  connect/retry, context-manager sessions, and results mirroring
  :class:`~repro.server.database.DatabaseQueryResult`.

See ``docs/NETWORK.md`` for the frame reference and the leakage
argument (the wire exposes nothing beyond the snapshot format's
surface plus public lengths).
"""

from .client import IncShrinkClient
from .protocol import (
    FRAME_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    ConnectionClosed,
    RemoteError,
    RemoteQueryResult,
    VersionMismatch,
    WireError,
    read_frame,
    write_frame,
)
from .server import NetworkServer

__all__ = [
    "FRAME_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "IncShrinkClient",
    "NetworkServer",
    "RemoteError",
    "RemoteQueryResult",
    "VersionMismatch",
    "WireError",
    "read_frame",
    "write_frame",
]
