"""The versioned, length-prefixed binary wire protocol.

The network front door (`NetworkServer` ⇄ `IncShrinkClient`) speaks a
small frame-oriented protocol over any reliable byte stream:

* every frame is a fixed 10-byte header — magic ``INCW``, one protocol
  version byte, one frame-type byte, a big-endian ``uint32`` body
  length — followed by a UTF-8 JSON body (stdlib ``struct`` + ``json``,
  no external dependencies);
* payload arrays (upload batches) ride the **same** base64 array codec
  the snapshot format uses (:func:`repro.server.persistence.encode_array`),
  so the wire never invents a second serialization surface for data:
  what crosses the network is what the snapshot file already exposes,
  plus the public frame lengths (see ``docs/NETWORK.md`` for the full
  leakage argument);
* the query frame carries the complete :class:`~repro.query.ast.
  LogicalQuery` AST — every aggregate, the GROUP BY domain, structural
  predicate clauses, and the optional per-query ``epsilon`` — so a
  remote analyst has exactly the in-process query surface;
* failures travel as structured ``error`` frames with a machine-readable
  ``code`` (and a ``retry_after`` hint when the server sheds load) —
  the connection survives invalid requests, only malformed *framing*
  tears it down.

Every codec below is pure and total over its documented inputs:
``decode_x(encode_x(v)) == v``, and malformed inputs raise
:class:`WireError` / :class:`~repro.common.errors.SchemaError` rather
than crashing the peer.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Mapping

import numpy as np

from ..common.errors import ProtocolError, ReproError, SchemaError
from ..common.types import RecordBatch, Schema
from ..query.ast import (
    AggregateSpec,
    And,
    ColumnEquals,
    ColumnRange,
    GroupBySpec,
    LogicalJoinQuery,
    LogicalQuery,
    QueryAnswer,
    as_logical,
)
from ..server.persistence import decode_array, encode_array

#: Frame magic — identifies an IncShrink wire frame.
PROTOCOL_MAGIC = b"INCW"
#: Bump on any incompatible change to the frame layout or payloads.
PROTOCOL_VERSION = 1
#: Hard ceiling on one frame's body — anything larger is a framing
#: error, not a request (keeps a broken peer from forcing an unbounded
#: allocation).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: magic(4) + version(1) + frame type(1) + body length(4), big-endian.
_HEADER = struct.Struct(">4sBBI")

#: Frame type registry (name → wire code).  Requests and responses share
#: one namespace; the ``*_ok`` / ``result`` types only ever travel
#: server → client.
FRAME_CODES = {
    "hello": 1,
    "welcome": 2,
    "upload": 3,
    "upload_ok": 4,
    "query": 5,
    "result": 6,
    "stats": 7,
    "stats_result": 8,
    "snapshot": 9,
    "snapshot_ok": 10,
    "reshard": 11,
    "reshard_ok": 12,
    "error": 13,
    "bye": 14,
}
FRAME_NAMES = {code: name for name, code in FRAME_CODES.items()}

# -- structured error codes ---------------------------------------------------
ERR_BAD_FRAME = "bad-frame"
ERR_VERSION_MISMATCH = "version-mismatch"
ERR_UNSUPPORTED = "unsupported-frame"
ERR_INVALID_REQUEST = "invalid-request"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_SERVER = "server-error"


class WireError(ProtocolError):
    """The byte stream does not parse as protocol frames."""


class VersionMismatch(WireError):
    """The peer speaks a different protocol version."""


class ConnectionClosed(WireError):
    """The peer closed the stream at a frame boundary (EOF)."""


class RemoteError(ReproError):
    """A structured ``error`` frame received from the server.

    ``code`` is one of the ``ERR_*`` constants; ``retry_after`` (seconds)
    is set when the server shed load and invites a retry.
    """

    def __init__(
        self, code: str, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message
        self.retry_after = retry_after


def error_payload(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    """The body of a structured ``error`` frame."""
    payload: dict = {"code": code, "message": message}
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    return payload


# -- framing ------------------------------------------------------------------
def write_frame(
    stream: BinaryIO, frame_type: str, payload: dict | None = None
) -> None:
    """Serialize one frame (header + JSON body) onto ``stream``.

    >>> import io
    >>> buf = io.BytesIO()
    >>> write_frame(buf, "stats", {})
    >>> read_frame(io.BytesIO(buf.getvalue()))
    ('stats', {})
    """
    code = FRAME_CODES.get(frame_type)
    if code is None:
        raise WireError(f"unknown frame type {frame_type!r}")
    body = json.dumps(
        payload or {}, sort_keys=True, separators=(",", ":")
    ).encode("utf8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"{frame_type} frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    stream.write(_HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, code, len(body)))
    stream.write(body)
    stream.flush()


def _read_exactly(stream: BinaryIO, n: int, at_boundary: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise WireError(
                f"stream ended mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        at_boundary = False
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> tuple[str, dict]:
    """Read one frame; returns ``(frame_type, payload)``.

    Raises :class:`ConnectionClosed` on a clean EOF at a frame boundary,
    :class:`VersionMismatch` when the peer speaks another version, and
    :class:`WireError` for anything that does not parse as a frame.
    """
    header = _read_exactly(stream, _HEADER.size, at_boundary=True)
    magic, version, code, body_len = _HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"peer speaks protocol version {version}, this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    if body_len > MAX_FRAME_BYTES:
        raise WireError(
            f"frame body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    frame_type = FRAME_NAMES.get(code)
    if frame_type is None:
        raise WireError(f"unknown frame type code {code}")
    body = _read_exactly(stream, body_len, at_boundary=False)
    try:
        payload = json.loads(body.decode("utf8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"{frame_type} frame body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise WireError(
            f"{frame_type} frame body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return frame_type, payload


# -- query codec --------------------------------------------------------------
#: The eight join-spec fields every logical query carries.
JOIN_FIELDS = (
    "probe_table",
    "driver_table",
    "probe_key",
    "driver_key",
    "probe_ts",
    "driver_ts",
    "window_lo",
    "window_hi",
)


def _encode_clause(clause: ColumnEquals | ColumnRange) -> dict:
    if isinstance(clause, ColumnEquals):
        return {
            "op": "eq",
            "table": clause.table,
            "column": clause.column,
            "value": clause.value,
        }
    if isinstance(clause, ColumnRange):
        return {
            "op": "range",
            "table": clause.table,
            "column": clause.column,
            "lo": clause.lo,
            "hi": clause.hi,
        }
    raise SchemaError(f"cannot encode predicate clause {clause!r}")


def _decode_clause(entry: dict) -> ColumnEquals | ColumnRange:
    op = entry.get("op")
    if op == "eq":
        return ColumnEquals(entry["table"], entry["column"], int(entry["value"]))
    if op == "range":
        return ColumnRange(
            entry["table"], entry["column"], int(entry["lo"]), int(entry["hi"])
        )
    raise WireError(f"unknown predicate op {op!r}")


def encode_predicate(
    predicate: ColumnEquals | ColumnRange | And | None,
) -> dict | None:
    if predicate is None:
        return None
    if isinstance(predicate, And):
        return {
            "op": "and",
            "clauses": [_encode_clause(c) for c in predicate.clauses],
        }
    return _encode_clause(predicate)


def decode_predicate(entry: dict | None) -> ColumnEquals | ColumnRange | And | None:
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise WireError(f"malformed predicate entry: {entry!r}")
    if entry.get("op") == "and":
        return And(tuple(_decode_clause(c) for c in entry["clauses"]))
    return _decode_clause(entry)


def encode_query(query: LogicalQuery | LogicalJoinQuery) -> dict:
    """Encode any query form (shims normalize through ``as_logical``).

    >>> from repro.query.ast import AggregateSpec, GroupBySpec, LogicalJoinQuery
    >>> join = LogicalJoinQuery("sales", "returns", "pid", "pid",
    ...                         "sale_ts", "return_ts", 0, 10)
    >>> q = LogicalQuery(join=join,
    ...                  aggregates=(AggregateSpec.count(),
    ...                              AggregateSpec.sum_of("returns", "return_ts")),
    ...                  group_by=GroupBySpec("sales", "pid", (1, 2, 3)))
    >>> decode_query(encode_query(q)) == q
    True
    """
    lq = as_logical(query)
    return {
        "join": {f: getattr(lq.join, f) for f in JOIN_FIELDS},
        "aggregates": [
            {
                "kind": a.kind,
                "table": a.table,
                "column": a.column,
                "alias": a.alias,
                "sensitivity": a.sensitivity,
            }
            for a in lq.aggregates
        ],
        "group_by": (
            None
            if lq.group_by is None
            else {
                "table": lq.group_by.table,
                "column": lq.group_by.column,
                "domain": list(lq.group_by.domain),
            }
        ),
        "predicate": encode_predicate(lq.predicate),
    }


def decode_query(entry: dict) -> LogicalQuery:
    """Rebuild the full :class:`LogicalQuery` AST from its wire form.

    All AST validation (ring bounds, aggregate shapes, GROUP BY domain
    limits) re-runs in the dataclass constructors, so a hostile payload
    fails with :class:`~repro.common.errors.SchemaError` — it cannot
    smuggle an invalid query past the in-process checks.
    """
    try:
        join_entry = entry["join"]
        join = LogicalJoinQuery(
            **{f: join_entry[f] for f in JOIN_FIELDS}
        )
        aggregates = tuple(
            AggregateSpec(
                kind=a["kind"],
                table=a.get("table"),
                column=a.get("column"),
                alias=a.get("alias"),
                sensitivity=float(a.get("sensitivity", 1.0)),
            )
            for a in entry["aggregates"]
        )
        group_entry = entry.get("group_by")
        group_by = (
            None
            if group_entry is None
            else GroupBySpec(
                group_entry["table"],
                group_entry["column"],
                tuple(group_entry["domain"]),
            )
        )
        predicate = decode_predicate(entry.get("predicate"))
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireError(f"malformed query payload: {exc!r}") from exc
    return LogicalQuery(
        join=join, aggregates=aggregates, group_by=group_by, predicate=predicate
    )


# -- upload codec -------------------------------------------------------------
def encode_batch(batch: RecordBatch) -> dict:
    """One owner-side padded batch, arrays via the snapshot codec."""
    return {
        "fields": list(batch.schema.fields),
        "rows": encode_array(np.asarray(batch.rows)),
        "is_real": encode_array(np.asarray(batch.is_real)),
    }


def decode_batch(entry: dict) -> RecordBatch:
    try:
        schema = Schema(tuple(entry["fields"]))
        rows = decode_array(entry["rows"])
        is_real = decode_array(entry["is_real"]).astype(bool)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed batch payload: {exc!r}") from exc
    return RecordBatch(schema, rows, is_real)


def encode_upload(
    time: int,
    batches: Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]],
    wait: bool = False,
) -> dict:
    """One step's uploads: ``(time, [(table, batch), ...])`` in order."""
    items = batches.items() if isinstance(batches, Mapping) else batches
    return {
        "time": int(time),
        "batches": [[name, encode_batch(batch)] for name, batch in items],
        "wait": bool(wait),
    }


def decode_upload(entry: dict) -> tuple[int, list[tuple[str, RecordBatch]]]:
    try:
        time = int(entry["time"])
        items = [
            (str(name), decode_batch(batch)) for name, batch in entry["batches"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed upload payload: {exc!r}") from exc
    return time, items


# -- answer/result codec ------------------------------------------------------
def _plain_cell(value: object) -> int | float:
    """JSON-safe scalar that preserves the exact/float distinction."""
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise SchemaError(f"cannot encode answer cell {value!r}")


def encode_answer(answer: QueryAnswer) -> dict:
    """The padded result table; exact COUNT/SUM cells stay integers."""
    return {
        "columns": list(answer.columns),
        "groups": (
            None if answer.group_keys is None else [int(k) for k in answer.group_keys]
        ),
        "rows": [[_plain_cell(v) for v in row] for row in answer.rows],
    }


def decode_answer(entry: dict) -> QueryAnswer:
    try:
        groups = entry["groups"]
        return QueryAnswer(
            columns=tuple(entry["columns"]),
            group_keys=None if groups is None else tuple(int(k) for k in groups),
            rows=tuple(tuple(row) for row in entry["rows"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed answer payload: {exc!r}") from exc


@dataclass(frozen=True)
class RemoteQueryResult:
    """Client-side mirror of :class:`~repro.server.database.DatabaseQueryResult`.

    Carries the full released answer table, the ground-truth mirror the
    server scored against, the plan the server chose, and the simulated
    query-execution time — everything the in-process result exposes,
    minus live object references.
    """

    plan_kind: str
    view_name: str | None
    estimated_gates: int
    estimated_seconds: float
    n_shards: int
    qet_seconds: float
    view_answer: float
    logical_answer: float
    epsilon_spent: float
    answers: QueryAnswer
    logical_answers: QueryAnswer

    @property
    def answer(self) -> float:
        """The historical scalar surface: the first released cell."""
        return self.view_answer


def encode_result(result) -> dict:
    """Wire form of one ``DatabaseQueryResult`` (duck-typed)."""
    plan = result.plan
    obs = result.observation
    return {
        "plan": {
            "kind": plan.kind,
            "view_name": plan.view_name,
            "estimated_gates": int(plan.estimated_gates),
            "estimated_seconds": float(plan.estimated_seconds),
            "n_shards": int(plan.n_shards),
        },
        "qet_seconds": float(obs.qet_seconds),
        "view_answer": float(obs.view_answer),
        "logical_answer": float(obs.logical_answer),
        "epsilon_spent": float(result.epsilon_spent),
        "answers": encode_answer(result.answers),
        "logical_answers": encode_answer(result.logical_answers),
    }


def decode_result(entry: dict) -> RemoteQueryResult:
    try:
        plan = entry["plan"]
        return RemoteQueryResult(
            plan_kind=plan["kind"],
            view_name=plan["view_name"],
            estimated_gates=int(plan["estimated_gates"]),
            estimated_seconds=float(plan["estimated_seconds"]),
            n_shards=int(plan["n_shards"]),
            qet_seconds=float(entry["qet_seconds"]),
            view_answer=float(entry["view_answer"]),
            logical_answer=float(entry["logical_answer"]),
            epsilon_spent=float(entry["epsilon_spent"]),
            answers=decode_answer(entry["answers"]),
            logical_answers=decode_answer(entry["logical_answers"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed result payload: {exc!r}") from exc
