"""The versioned, length-prefixed binary wire protocol.

The network front door (`NetworkServer` ⇄ `IncShrinkClient`) speaks a
small frame-oriented protocol over any reliable byte stream:

* every frame is a fixed 10-byte header — magic ``INCW``, one protocol
  version byte, one frame-type byte, a big-endian ``uint32`` body
  length — followed by the body (stdlib ``struct`` + ``json``, no
  external dependencies);
* two body encodings share the header's version byte: **version 1** is
  a UTF-8 JSON object (the PR 5 wire format, unchanged byte-for-byte),
  and **version 2** is the *binary bulk codec* — a JSON head plus an
  out-of-band blob table carrying payload arrays as raw little-endian
  bytes (no base64, no JSON escaping).  Peers negotiate the codec in
  ``hello``/``welcome``; a v1-only client never sees a v2 frame;
* under the JSON codec, payload arrays (upload batches) ride the
  **same** base64 array codec the snapshot format uses
  (:func:`repro.server.persistence.encode_array`), so the wire never
  invents a second serialization surface for data: what crosses the
  network is what the snapshot file already exposes, plus the public
  frame lengths (see ``docs/NETWORK.md`` for the full leakage
  argument — the binary codec carries the same arrays, minus only the
  base64 expansion, so the observable surface is unchanged);
* the query frame carries the complete :class:`~repro.query.ast.
  LogicalQuery` AST — every aggregate, the GROUP BY domain, structural
  predicate clauses, and the optional per-query ``epsilon`` — so a
  remote analyst has exactly the in-process query surface;
* failures travel as structured ``error`` frames with a machine-readable
  ``code`` (and a ``retry_after`` hint when the server sheds load) —
  the connection survives invalid requests, only malformed *framing*
  tears it down.

Every codec below is pure and total over its documented inputs:
``decode_x(encode_x(v)) == v``, and malformed inputs raise
:class:`WireError` / :class:`~repro.common.errors.SchemaError` rather
than crashing the peer.  :class:`FrameDecoder` provides the same
guarantee incrementally, over arbitrarily chunked byte arrivals, for
the event-driven server.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Mapping

import numpy as np

from ..common.errors import ProtocolError, ReproError, SchemaError
from ..common.types import RecordBatch, Schema
from ..mpc.cost_model import CostModel
from ..query.ast import (
    AggregateSpec,
    And,
    ColumnEquals,
    ColumnRange,
    GroupBySpec,
    LogicalJoinQuery,
    LogicalQuery,
    QueryAnswer,
    as_logical,
)
from ..server.persistence import decode_array, encode_array

#: Frame magic — identifies an IncShrink wire frame.
PROTOCOL_MAGIC = b"INCW"
#: The baseline frame version: UTF-8 JSON bodies (the PR 5 format).
PROTOCOL_VERSION = 1
#: Frame version 2: binary bulk codec — JSON head + raw array blobs.
BINARY_VERSION = 2
#: Frame versions this build reads.  Writers pick one per frame: the
#: version byte is what makes every frame self-describing, so the two
#: codecs interleave freely on one connection.
SUPPORTED_VERSIONS = (PROTOCOL_VERSION, BINARY_VERSION)
#: Hard ceiling on one frame's body — anything larger is a framing
#: error, not a request (keeps a broken peer from forcing an unbounded
#: allocation).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Body codec names, as negotiated in ``hello``/``welcome``.
CODEC_JSON = "json"
CODEC_BINARY = "binary"
#: Preference order: a server picks the first offered codec it supports.
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)


def negotiate_codec(offered: object) -> str:
    """Server-side codec choice for one connection.

    ``offered`` is the (untrusted) ``codecs`` field of a ``hello``
    payload: the client's codec names in preference order.  Anything
    malformed or unrecognized falls back to JSON — a PR 5 client, whose
    ``hello`` has no ``codecs`` field at all, negotiates down to the v1
    wire format it already speaks.

    >>> negotiate_codec(["binary", "json"])
    'binary'
    >>> negotiate_codec(["json"])
    'json'
    >>> negotiate_codec(None)
    'json'
    >>> negotiate_codec(["zstd", 42])
    'json'
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if isinstance(name, str) and name in SUPPORTED_CODECS:
                return name
    return CODEC_JSON

#: magic(4) + version(1) + frame type(1) + body length(4), big-endian.
_HEADER = struct.Struct(">4sBBI")

#: Frame type registry (name → wire code).  Requests and responses share
#: one namespace; the ``*_ok`` / ``result`` types only ever travel
#: server → client.
FRAME_CODES = {
    "hello": 1,
    "welcome": 2,
    "upload": 3,
    "upload_ok": 4,
    "query": 5,
    "result": 6,
    "stats": 7,
    "stats_result": 8,
    "snapshot": 9,
    "snapshot_ok": 10,
    "reshard": 11,
    "reshard_ok": 12,
    "error": 13,
    "bye": 14,
    # -- distributed scan fabric (coordinator <-> shard worker) -----------
    # These frames only ever travel between a scan coordinator
    # (repro.dist.coordinator) and a shard-worker daemon
    # (repro.dist.worker).  They share the hello/welcome handshake and
    # both body codecs with the analyst protocol; a pre-dist peer simply
    # never receives one, so existing clients and servers are untouched.
    "shard_assign": 15,
    "shard_append": 16,
    "shard_ok": 17,
    "scan": 18,
    "scan_partial": 19,
    "heartbeat": 20,
    "heartbeat_ok": 21,
}
FRAME_NAMES = {code: name for name, code in FRAME_CODES.items()}

#: The frame types of the distributed scan fabric (docs + fuzz suite).
DIST_FRAMES = (
    "shard_assign",
    "shard_append",
    "shard_ok",
    "scan",
    "scan_partial",
    "heartbeat",
    "heartbeat_ok",
)

# -- structured error codes ---------------------------------------------------
ERR_BAD_FRAME = "bad-frame"
ERR_VERSION_MISMATCH = "version-mismatch"
ERR_UNSUPPORTED = "unsupported-frame"
ERR_INVALID_REQUEST = "invalid-request"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_SERVER = "server-error"
# Multi-tenant serving (PR 10).  ``auth-failed`` closes the connection
# after the error flushes (wrong/missing credentials on a registry-backed
# deployment); ``forbidden`` and ``budget-exhausted`` leave it open —
# the session is authentic, only this request is refused.  Neither is
# retryable: backing off cannot make a token valid or a ledger solvent.
ERR_AUTH_FAILED = "auth-failed"
ERR_FORBIDDEN = "forbidden"
ERR_BUDGET_EXHAUSTED = "budget-exhausted"


class WireError(ProtocolError):
    """The byte stream does not parse as protocol frames."""


class VersionMismatch(WireError):
    """The peer speaks a different protocol version."""


class ConnectionClosed(WireError):
    """The peer closed the stream at a frame boundary (EOF)."""


class RemoteError(ReproError):
    """A structured ``error`` frame received from the server.

    ``code`` is one of the ``ERR_*`` constants; ``retry_after`` (seconds)
    is set when the server shed load and invites a retry.
    """

    def __init__(
        self, code: str, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.remote_message = message
        self.retry_after = retry_after


def error_payload(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    """The body of a structured ``error`` frame."""
    payload: dict = {"code": code, "message": message}
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    return payload


# -- binary body codec ---------------------------------------------------------
#: Sentinel key marking an out-of-band array reference in a v2 head.
_ND_KEY = "__nd__"
#: dtype kinds a blob may carry (bool/int/uint/float — never objects).
_BLOB_KINDS = frozenset("biuf")
_BLOB_MAX_NDIM = 4


def _extract_arrays(value, blobs: list) -> object:
    """Deep-copy ``value`` replacing every ndarray with a blob reference."""
    if isinstance(value, np.ndarray):
        blobs.append(value)
        return {_ND_KEY: len(blobs) - 1}
    if isinstance(value, dict):
        return {k: _extract_arrays(v, blobs) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_extract_arrays(v, blobs) for v in value]
    return value


def _restore_arrays(value, blobs: list) -> object:
    if isinstance(value, dict):
        if set(value) == {_ND_KEY}:
            index = value[_ND_KEY]
            if not isinstance(index, int) or not 0 <= index < len(blobs):
                raise WireError(f"blob reference {index!r} out of range")
            return blobs[index]
        return {k: _restore_arrays(v, blobs) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore_arrays(v, blobs) for v in value]
    return value


def _pack_blob(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr)
    if arr.dtype.kind not in _BLOB_KINDS:
        raise WireError(f"cannot encode array of dtype {arr.dtype} on the wire")
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    if arr.ndim > _BLOB_MAX_NDIM:
        raise WireError(f"cannot encode a {arr.ndim}-dimensional array")
    dtype_str = arr.dtype.str.encode("ascii")  # explicit byte order, e.g. '<u4'
    head = struct.pack(">BB", len(dtype_str), arr.ndim) + dtype_str
    dims = struct.pack(f">{arr.ndim}I", *arr.shape)
    raw = arr.tobytes()
    return head + dims + struct.pack(">Q", len(raw)) + raw


def _unpack_blob(view: memoryview, offset: int) -> tuple[np.ndarray, int]:
    try:
        dtype_len, ndim = struct.unpack_from(">BB", view, offset)
        offset += 2
        dtype_str = bytes(view[offset : offset + dtype_len]).decode("ascii")
        offset += dtype_len
        if ndim > _BLOB_MAX_NDIM:
            raise WireError(f"blob dimensionality {ndim} exceeds {_BLOB_MAX_NDIM}")
        dims = struct.unpack_from(f">{ndim}I", view, offset)
        offset += 4 * ndim
        (nbytes,) = struct.unpack_from(">Q", view, offset)
        offset += 8
        dtype = np.dtype(dtype_str)
        if dtype.kind not in _BLOB_KINDS:
            raise WireError(f"blob dtype {dtype_str!r} is not a plain scalar type")
        expected = dtype.itemsize * int(np.prod(dims, dtype=np.int64))
        if nbytes != expected or offset + nbytes > len(view):
            raise WireError(
                f"blob of {nbytes} bytes does not match dims {dims} "
                f"x dtype {dtype_str!r}"
            )
        arr = np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
        return arr.reshape(dims).copy(), offset + nbytes
    except (struct.error, TypeError, ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed array blob: {exc}") from exc


def _encode_body(payload: dict, version: int) -> bytes:
    if version == PROTOCOL_VERSION:
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf8"
        )
    blobs: list[np.ndarray] = []
    head = json.dumps(
        _extract_arrays(payload, blobs), sort_keys=True, separators=(",", ":")
    ).encode("utf8")
    parts = [struct.pack(">I", len(head)), head, struct.pack(">H", len(blobs))]
    parts.extend(_pack_blob(arr) for arr in blobs)
    return b"".join(parts)


def _decode_body(body: bytes | memoryview, version: int, frame_type: str) -> dict:
    if version == PROTOCOL_VERSION:
        try:
            payload = json.loads(bytes(body).decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"{frame_type} frame body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise WireError(
                f"{frame_type} frame body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return payload
    view = memoryview(body)
    try:
        (head_len,) = struct.unpack_from(">I", view, 0)
        head_bytes = bytes(view[4 : 4 + head_len])
        if len(head_bytes) != head_len:
            raise WireError(f"{frame_type} frame head truncated")
        (n_blobs,) = struct.unpack_from(">H", view, 4 + head_len)
    except (struct.error, ValueError) as exc:
        raise WireError(f"malformed {frame_type} binary envelope: {exc}") from exc
    try:
        head = json.loads(head_bytes.decode("utf8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"{frame_type} frame head is not valid JSON: {exc}")
    if not isinstance(head, dict):
        raise WireError(f"{frame_type} frame head must be a JSON object")
    blobs: list[np.ndarray] = []
    offset = 6 + head_len
    for _ in range(n_blobs):
        arr, offset = _unpack_blob(view, offset)
        blobs.append(arr)
    if offset != len(view):
        raise WireError(
            f"{frame_type} frame body carries {len(view) - offset} trailing bytes"
        )
    return _restore_arrays(head, blobs)


# -- framing ------------------------------------------------------------------
def encode_frame(
    frame_type: str, payload: dict | None = None, codec: str = CODEC_JSON
) -> bytes:
    """One complete frame (header + body) as bytes.

    With ``codec="binary"`` the body is the version-2 binary envelope
    and the payload may carry :class:`numpy.ndarray` values anywhere in
    its tree; with ``codec="json"`` (the default) the body is the
    version-1 JSON object and ndarray values are a caller error.
    """
    code = FRAME_CODES.get(frame_type)
    if code is None:
        raise WireError(f"unknown frame type {frame_type!r}")
    if codec not in SUPPORTED_CODECS:
        raise WireError(f"unknown codec {codec!r}")
    version = BINARY_VERSION if codec == CODEC_BINARY else PROTOCOL_VERSION
    try:
        body = _encode_body(payload or {}, version)
    except TypeError as exc:  # ndarray (or similar) under the JSON codec
        raise WireError(
            f"{frame_type} payload is not JSON-serializable under the "
            f"{codec} codec: {exc}"
        ) from exc
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"{frame_type} frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _HEADER.pack(PROTOCOL_MAGIC, version, code, len(body)) + body


def write_frame(
    stream: BinaryIO,
    frame_type: str,
    payload: dict | None = None,
    codec: str = CODEC_JSON,
) -> None:
    """Serialize one frame onto ``stream`` (JSON codec by default).

    >>> import io
    >>> buf = io.BytesIO()
    >>> write_frame(buf, "stats", {})
    >>> read_frame(io.BytesIO(buf.getvalue()))
    ('stats', {})
    """
    stream.write(encode_frame(frame_type, payload, codec=codec))
    stream.flush()


def _read_exactly(stream: BinaryIO, n: int, at_boundary: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise WireError(
                f"stream ended mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
        at_boundary = False
    return b"".join(chunks)


def _check_header(magic: bytes, version: int, code: int, body_len: int) -> str:
    """Validate one parsed header; returns the frame-type name."""
    if magic != PROTOCOL_MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise VersionMismatch(
            f"peer speaks protocol version {version}, this build speaks "
            f"{sorted(SUPPORTED_VERSIONS)}"
        )
    if body_len > MAX_FRAME_BYTES:
        raise WireError(
            f"frame body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    frame_type = FRAME_NAMES.get(code)
    if frame_type is None:
        raise WireError(f"unknown frame type code {code}")
    return frame_type


def read_frame(stream: BinaryIO) -> tuple[str, dict]:
    """Read one frame; returns ``(frame_type, payload)``.

    Accepts both body encodings (the version byte disambiguates).
    Raises :class:`ConnectionClosed` on a clean EOF at a frame boundary,
    :class:`VersionMismatch` when the peer speaks an unknown version,
    and :class:`WireError` for anything that does not parse as a frame.
    """
    header = _read_exactly(stream, _HEADER.size, at_boundary=True)
    magic, version, code, body_len = _HEADER.unpack(header)
    frame_type = _check_header(magic, version, code, body_len)
    body = _read_exactly(stream, body_len, at_boundary=False)
    return frame_type, _decode_body(body, version, frame_type)


class FrameDecoder:
    """Incremental frame parser over arbitrarily chunked byte arrivals.

    The event-driven server owns one per connection: :meth:`feed` takes
    whatever ``recv`` produced and returns every frame that completed,
    buffering the (bounded) remainder.  Malformed input — bad magic,
    unknown version, a body-length prefix past the frame ceiling, an
    unknown frame type, or a body that does not decode — raises the
    same :class:`WireError` hierarchy the blocking reader uses.  The
    decoder validates the header as soon as its 10 bytes are buffered,
    so a hostile length prefix is rejected *before* any body bytes are
    accumulated: buffered memory never exceeds the declared size of one
    well-formed frame.

    >>> decoder = FrameDecoder()
    >>> blob = encode_frame("stats", {"a": 1})
    >>> decoder.feed(blob[:7])
    []
    >>> decoder.feed(blob[7:] + blob)
    [('stats', {'a': 1}), ('stats', {'a': 1})]
    >>> decoder.buffered_bytes
    0
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: parsed-and-validated header of the frame in progress
        self._head: tuple[str, int, int] | None = None  # (type, version, body_len)
        self._error: WireError | None = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held for the incomplete frame in progress."""
        return len(self._buffer)

    @property
    def mid_frame(self) -> bool:
        """True when a partially received frame is buffered."""
        return len(self._buffer) > 0

    @property
    def error(self) -> WireError | None:
        """The parse error that broke the stream, if any.

        Frames completed *before* the malformed bytes are still
        delivered by the :meth:`feed` call that hit the error — the
        server must answer them before failing the connection — so the
        error surfaces here (and re-raises on any further feed).
        """
        return self._error

    def feed(self, data: bytes) -> list[tuple[str, dict]]:
        """Consume ``data``; return the frames it completed, in order.

        On malformed input the error raises immediately when no frame
        completed in this call; otherwise the completed frames are
        returned and the error is held (:attr:`error`), raising on the
        next feed — a byte stream is unrecoverable past its first bad
        frame either way.
        """
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        frames: list[tuple[str, dict]] = []
        try:
            while True:
                if self._head is None:
                    if len(self._buffer) < _HEADER.size:
                        break
                    magic, version, code, body_len = _HEADER.unpack_from(
                        self._buffer
                    )
                    frame_type = _check_header(magic, version, code, body_len)
                    self._head = (frame_type, version, body_len)
                frame_type, version, body_len = self._head
                if len(self._buffer) < _HEADER.size + body_len:
                    break
                body = bytes(self._buffer[_HEADER.size : _HEADER.size + body_len])
                del self._buffer[: _HEADER.size + body_len]
                self._head = None
                frames.append((frame_type, _decode_body(body, version, frame_type)))
        except WireError as exc:
            self._error = exc
            if not frames:
                raise
        return frames


# -- query codec --------------------------------------------------------------
#: The eight join-spec fields every logical query carries.
JOIN_FIELDS = (
    "probe_table",
    "driver_table",
    "probe_key",
    "driver_key",
    "probe_ts",
    "driver_ts",
    "window_lo",
    "window_hi",
)


def _encode_clause(clause: ColumnEquals | ColumnRange) -> dict:
    if isinstance(clause, ColumnEquals):
        return {
            "op": "eq",
            "table": clause.table,
            "column": clause.column,
            "value": clause.value,
        }
    if isinstance(clause, ColumnRange):
        return {
            "op": "range",
            "table": clause.table,
            "column": clause.column,
            "lo": clause.lo,
            "hi": clause.hi,
        }
    raise SchemaError(f"cannot encode predicate clause {clause!r}")


def _decode_clause(entry: dict) -> ColumnEquals | ColumnRange:
    op = entry.get("op")
    if op == "eq":
        return ColumnEquals(entry["table"], entry["column"], int(entry["value"]))
    if op == "range":
        return ColumnRange(
            entry["table"], entry["column"], int(entry["lo"]), int(entry["hi"])
        )
    raise WireError(f"unknown predicate op {op!r}")


def encode_predicate(
    predicate: ColumnEquals | ColumnRange | And | None,
) -> dict | None:
    if predicate is None:
        return None
    if isinstance(predicate, And):
        return {
            "op": "and",
            "clauses": [_encode_clause(c) for c in predicate.clauses],
        }
    return _encode_clause(predicate)


def decode_predicate(entry: dict | None) -> ColumnEquals | ColumnRange | And | None:
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise WireError(f"malformed predicate entry: {entry!r}")
    if entry.get("op") == "and":
        return And(tuple(_decode_clause(c) for c in entry["clauses"]))
    return _decode_clause(entry)


def encode_query(query: LogicalQuery | LogicalJoinQuery) -> dict:
    """Encode any query form (shims normalize through ``as_logical``).

    >>> from repro.query.ast import AggregateSpec, GroupBySpec, LogicalJoinQuery
    >>> join = LogicalJoinQuery("sales", "returns", "pid", "pid",
    ...                         "sale_ts", "return_ts", 0, 10)
    >>> q = LogicalQuery(join=join,
    ...                  aggregates=(AggregateSpec.count(),
    ...                              AggregateSpec.sum_of("returns", "return_ts")),
    ...                  group_by=GroupBySpec("sales", "pid", (1, 2, 3)))
    >>> decode_query(encode_query(q)) == q
    True
    """
    lq = as_logical(query)
    return {
        "join": {f: getattr(lq.join, f) for f in JOIN_FIELDS},
        "aggregates": [
            {
                "kind": a.kind,
                "table": a.table,
                "column": a.column,
                "alias": a.alias,
                "sensitivity": a.sensitivity,
            }
            for a in lq.aggregates
        ],
        "group_by": (
            None
            if lq.group_by is None
            else {
                "table": lq.group_by.table,
                "column": lq.group_by.column,
                "domain": list(lq.group_by.domain),
            }
        ),
        "predicate": encode_predicate(lq.predicate),
    }


def decode_query(entry: dict) -> LogicalQuery:
    """Rebuild the full :class:`LogicalQuery` AST from its wire form.

    All AST validation (ring bounds, aggregate shapes, GROUP BY domain
    limits) re-runs in the dataclass constructors, so a hostile payload
    fails with :class:`~repro.common.errors.SchemaError` — it cannot
    smuggle an invalid query past the in-process checks.
    """
    try:
        join_entry = entry["join"]
        join = LogicalJoinQuery(
            **{f: join_entry[f] for f in JOIN_FIELDS}
        )
        aggregates = tuple(
            AggregateSpec(
                kind=a["kind"],
                table=a.get("table"),
                column=a.get("column"),
                alias=a.get("alias"),
                sensitivity=float(a.get("sensitivity", 1.0)),
            )
            for a in entry["aggregates"]
        )
        group_entry = entry.get("group_by")
        group_by = (
            None
            if group_entry is None
            else GroupBySpec(
                group_entry["table"],
                group_entry["column"],
                tuple(group_entry["domain"]),
            )
        )
        predicate = decode_predicate(entry.get("predicate"))
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireError(f"malformed query payload: {exc!r}") from exc
    return LogicalQuery(
        join=join, aggregates=aggregates, group_by=group_by, predicate=predicate
    )


# -- upload codec -------------------------------------------------------------
def encode_batch(batch: RecordBatch, binary: bool = False) -> dict:
    """One owner-side padded batch.

    Under the JSON codec the arrays ride the snapshot format's base64
    codec; under the binary codec they stay as ndarrays for the frame
    writer to carry out-of-band as raw bytes.  Either form decodes with
    :func:`decode_batch`.
    """
    if binary:
        return {
            "fields": list(batch.schema.fields),
            "rows": np.ascontiguousarray(batch.rows),
            "is_real": np.ascontiguousarray(batch.is_real),
        }
    return {
        "fields": list(batch.schema.fields),
        "rows": encode_array(np.asarray(batch.rows)),
        "is_real": encode_array(np.asarray(batch.is_real)),
    }


def _entry_array(entry: object) -> np.ndarray:
    """An array field in either wire form (raw ndarray or base64 dict)."""
    if isinstance(entry, np.ndarray):
        return entry
    if isinstance(entry, dict):
        return decode_array(entry)
    raise WireError(f"malformed array entry of type {type(entry).__name__}")


def decode_batch(entry: dict) -> RecordBatch:
    try:
        schema = Schema(tuple(entry["fields"]))
        rows = _entry_array(entry["rows"])
        is_real = _entry_array(entry["is_real"]).astype(bool)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed batch payload: {exc!r}") from exc
    return RecordBatch(schema, rows, is_real)


def encode_upload(
    time: int,
    batches: Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]],
    wait: bool = False,
    binary: bool = False,
) -> dict:
    """One step's uploads: ``(time, [(table, batch), ...])`` in order."""
    items = batches.items() if isinstance(batches, Mapping) else batches
    return {
        "time": int(time),
        "batches": [
            [name, encode_batch(batch, binary=binary)] for name, batch in items
        ],
        "wait": bool(wait),
    }


def decode_upload(entry: dict) -> tuple[int, list[tuple[str, RecordBatch]]]:
    try:
        time = int(entry["time"])
        items = [
            (str(name), decode_batch(batch)) for name, batch in entry["batches"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed upload payload: {exc!r}") from exc
    return time, items


# -- answer/result codec ------------------------------------------------------
def _plain_cell(value: object) -> int | float:
    """JSON-safe scalar that preserves the exact/float distinction."""
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise SchemaError(f"cannot encode answer cell {value!r}")


def encode_answer(answer: QueryAnswer, binary: bool = False) -> dict:
    """The padded result table; exact COUNT/SUM cells stay integers.

    Under the binary codec each column travels as one raw array when its
    cells share a scalar kind (``i``: all exact integers, ``f``: all
    floats); a mixed column falls back to a JSON cell list (kind ``m``).
    The int/float distinction survives either way, so "byte-identical to
    in-process" holds across both codecs.
    """
    base: dict = {
        "columns": list(answer.columns),
        "groups": (
            None if answer.group_keys is None else [int(k) for k in answer.group_keys]
        ),
    }
    if not binary:
        base["rows"] = [[_plain_cell(v) for v in row] for row in answer.rows]
        return base
    kinds: list[str] = []
    cols: list[object] = []
    for ci in range(len(answer.columns)):
        cells = [_plain_cell(row[ci]) for row in answer.rows]
        if all(isinstance(c, int) for c in cells):
            kinds.append("i")
            cols.append(np.asarray(cells, dtype="<i8"))
        elif all(isinstance(c, float) for c in cells):
            kinds.append("f")
            cols.append(np.asarray(cells, dtype="<f8"))
        else:
            kinds.append("m")
            cols.append(cells)
    base["kinds"] = kinds
    base["cols"] = cols
    return base


def decode_answer(entry: dict) -> QueryAnswer:
    try:
        groups = entry["groups"]
        group_keys = None if groups is None else tuple(int(k) for k in groups)
        columns = tuple(entry["columns"])
        if "cols" in entry:
            decoded_cols = []
            for kind, col in zip(entry["kinds"], entry["cols"], strict=True):
                cells = col.tolist() if isinstance(col, np.ndarray) else list(col)
                if kind == "i":
                    decoded_cols.append([int(c) for c in cells])
                elif kind == "f":
                    decoded_cols.append([float(c) for c in cells])
                elif kind == "m":
                    decoded_cols.append(cells)
                else:
                    raise WireError(f"unknown answer column kind {kind!r}")
            n_rows = len(decoded_cols[0]) if decoded_cols else 0
            if any(len(c) != n_rows for c in decoded_cols):
                raise WireError("ragged answer columns")
            rows = tuple(
                tuple(col[ri] for col in decoded_cols) for ri in range(n_rows)
            )
        else:
            rows = tuple(tuple(row) for row in entry["rows"])
        return QueryAnswer(columns=columns, group_keys=group_keys, rows=rows)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed answer payload: {exc!r}") from exc


@dataclass(frozen=True)
class RemoteQueryResult:
    """Client-side mirror of :class:`~repro.server.database.DatabaseQueryResult`.

    Carries the full released answer table, the ground-truth mirror the
    server scored against, the plan the server chose, and the simulated
    query-execution time — everything the in-process result exposes,
    minus live object references.
    """

    plan_kind: str
    view_name: str | None
    estimated_gates: int
    estimated_seconds: float
    n_shards: int
    qet_seconds: float
    view_answer: float
    logical_answer: float
    epsilon_spent: float
    answers: QueryAnswer
    logical_answers: QueryAnswer
    #: How the view scan actually executed (``{"mode": "warm"|"cold",
    #: "delta_rows": ..., "total_rows": ..., ...}``); ``None`` for NM
    #: plans and for servers predating incremental execution.  Public
    #: row counts only — nothing the transcript does not already leak.
    scan_report: dict | None = None

    @property
    def answer(self) -> float:
        """The historical scalar surface: the first released cell."""
        return self.view_answer


def encode_result(result, binary: bool = False) -> dict:
    """Wire form of one ``DatabaseQueryResult`` (duck-typed)."""
    plan = result.plan
    obs = result.observation
    return {
        "plan": {
            "kind": plan.kind,
            "view_name": plan.view_name,
            "estimated_gates": int(plan.estimated_gates),
            "estimated_seconds": float(plan.estimated_seconds),
            "n_shards": int(plan.n_shards),
        },
        "qet_seconds": float(obs.qet_seconds),
        "view_answer": float(obs.view_answer),
        "logical_answer": float(obs.logical_answer),
        "epsilon_spent": float(result.epsilon_spent),
        "answers": encode_answer(result.answers, binary=binary),
        "logical_answers": encode_answer(result.logical_answers, binary=binary),
        "scan_report": (
            None
            if getattr(result, "scan_report", None) is None
            else {
                "mode": result.scan_report.mode,
                "total_rows": int(result.scan_report.total_rows),
                "delta_rows": int(result.scan_report.delta_rows),
                "cached_rows": int(result.scan_report.cached_rows),
                "gates": int(result.scan_report.gates),
                "saved_gates": int(result.scan_report.saved_gates),
            }
        ),
    }


# -- distributed scan codec ---------------------------------------------------
#: The five scalar fields of a CostModel, in wire order.  Workers must
#: charge gates with the coordinator's *exact* model or the replayed
#: gate totals (and therefore the merged ProtocolRun) would drift.
_COST_FIELDS = (
    "gates_per_second",
    "compare_gates_per_bit",
    "mux_gates_per_bit",
    "laplace_gates",
    "max_parallel_workers",
)


def encode_cost_model(model: CostModel) -> dict:
    """The coordinator's cost model as wire scalars.

    >>> decode_cost_model(encode_cost_model(CostModel())) == CostModel()
    True
    """
    return {f: getattr(model, f) for f in _COST_FIELDS}


def decode_cost_model(entry: dict) -> CostModel:
    try:
        return CostModel(
            gates_per_second=float(entry["gates_per_second"]),
            compare_gates_per_bit=int(entry["compare_gates_per_bit"]),
            mux_gates_per_bit=int(entry["mux_gates_per_bit"]),
            laplace_gates=int(entry["laplace_gates"]),
            max_parallel_workers=int(entry["max_parallel_workers"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed cost-model payload: {exc!r}") from exc


def encode_shard_content(
    rows0: np.ndarray,
    rows1: np.ndarray,
    flags0: np.ndarray,
    flags1: np.ndarray,
    binary: bool = False,
) -> dict:
    """One shard's share halves for ``shard_assign``/``shard_append``.

    The four arrays are exactly what the v2 snapshot format persists per
    shard (each server's XOR half of rows and isView flags) — under the
    JSON codec they ride the snapshot's own base64 array codec
    (:func:`repro.server.persistence.encode_array`), so worker bootstrap
    is the snapshot encoding over a socket; under the binary codec they
    stay ndarrays for the frame writer's out-of-band blob table.
    """
    arrays = {
        "rows0": np.ascontiguousarray(rows0),
        "rows1": np.ascontiguousarray(rows1),
        "flags0": np.ascontiguousarray(flags0),
        "flags1": np.ascontiguousarray(flags1),
    }
    if binary:
        return arrays
    return {name: encode_array(arr) for name, arr in arrays.items()}


def decode_shard_content(
    entry: dict,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    try:
        rows0 = _entry_array(entry["rows0"])
        rows1 = _entry_array(entry["rows1"])
        flags0 = _entry_array(entry["flags0"])
        flags1 = _entry_array(entry["flags1"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed shard content payload: {exc!r}") from exc
    if rows0.ndim != 2 or rows0.shape != rows1.shape:
        raise WireError(
            f"shard row shares must be matching 2-D arrays, got "
            f"{rows0.shape} vs {rows1.shape}"
        )
    if flags0.shape != (len(rows0),) or flags1.shape != (len(rows1),):
        raise WireError(
            f"shard flag shares must be 1-D of length {len(rows0)}, got "
            f"{flags0.shape} vs {flags1.shape}"
        )
    as_u32 = lambda a: np.ascontiguousarray(a, dtype=np.uint32)  # noqa: E731
    return as_u32(rows0), as_u32(rows1), as_u32(flags0), as_u32(flags1)


def encode_scan_spec(
    sum_indices: list[int] | tuple[int, ...],
    need_count: bool,
    group_column: int | None,
    group_domain: tuple[int, ...] | None,
    clause_specs: list[tuple[int, int, int]] | tuple,
    payload_words: int,
    predicate_words: int,
) -> dict:
    """The plan scalars of one distributed scan (clauses pre-lowered to
    ``(column_index, lo, hi)``, mirroring
    :class:`repro.query.shard_workers.ShardScanTask`)."""
    return {
        "sum_indices": [int(i) for i in sum_indices],
        "need_count": bool(need_count),
        "group_column": None if group_column is None else int(group_column),
        "group_domain": (
            None if group_domain is None else [int(g) for g in group_domain]
        ),
        "clause_specs": [
            [int(c), int(lo), int(hi)] for c, lo, hi in clause_specs
        ],
        "payload_words": int(payload_words),
        "predicate_words": int(predicate_words),
    }


def decode_scan_spec(entry: dict) -> dict:
    """Validated keyword arguments for the shard-scan kernel."""
    try:
        domain = entry["group_domain"]
        group_column = entry["group_column"]
        return {
            "sum_indices": tuple(int(i) for i in entry["sum_indices"]),
            "need_count": bool(entry["need_count"]),
            "group_column": None if group_column is None else int(group_column),
            "group_domain": (
                None if domain is None else tuple(int(g) for g in domain)
            ),
            "clause_specs": tuple(
                (int(c), int(lo), int(hi))
                for c, lo, hi in entry["clause_specs"]
            ),
            "payload_words": int(entry["payload_words"]),
            "predicate_words": int(entry["predicate_words"]),
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed scan spec payload: {exc!r}") from exc


def encode_scan_partial(
    shard: int, counts: np.ndarray, sums: np.ndarray, gates: int, binary: bool = False
) -> dict:
    """One shard's suffix accumulators (``counts`` int64, ``sums``
    uint64 mod 2^64 — the exact ring the merge adds in)."""
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    sums = np.ascontiguousarray(sums, dtype=np.uint64)
    return {
        "shard": int(shard),
        "counts": counts if binary else encode_array(counts),
        "sums": sums if binary else encode_array(sums),
        "gates": int(gates),
    }


def decode_scan_partial(entry: dict) -> tuple[int, np.ndarray, np.ndarray, int]:
    try:
        shard = int(entry["shard"])
        counts = _entry_array(entry["counts"]).astype(np.int64, copy=False)
        sums = _entry_array(entry["sums"]).astype(np.uint64, copy=False)
        gates = int(entry["gates"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed scan partial payload: {exc!r}") from exc
    if counts.ndim != 1 or sums.ndim != 2 or len(sums) != len(counts):
        raise WireError(
            f"scan partial shapes do not agree: counts {counts.shape}, "
            f"sums {sums.shape}"
        )
    if gates < 0:
        raise WireError(f"scan partial gate total must be >= 0, got {gates}")
    return shard, counts, sums, gates


def decode_result(entry: dict) -> RemoteQueryResult:
    try:
        plan = entry["plan"]
        return RemoteQueryResult(
            plan_kind=plan["kind"],
            view_name=plan["view_name"],
            estimated_gates=int(plan["estimated_gates"]),
            estimated_seconds=float(plan["estimated_seconds"]),
            n_shards=int(plan["n_shards"]),
            qet_seconds=float(entry["qet_seconds"]),
            view_answer=float(entry["view_answer"]),
            logical_answer=float(entry["logical_answer"]),
            epsilon_spent=float(entry["epsilon_spent"]),
            answers=decode_answer(entry["answers"]),
            logical_answers=decode_answer(entry["logical_answers"]),
            # Absent on pre-incremental servers; public counts only.
            scan_report=entry.get("scan_report"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed result payload: {exc!r}") from exc
