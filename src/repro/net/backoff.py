"""Exponential backoff with full jitter, shared by every redial path.

Both retry loops that dial TCP endpoints — the analyst client's
``connect()`` and the distributed coordinator's worker redial
(:mod:`repro.dist.membership`) — use the same schedule: exponential
growth capped at a ceiling, with **full jitter** (the delay is drawn
uniformly from ``[0, min(cap, base * 2**attempt)]``).  Full jitter is
the AWS-architecture-blog result: among capped exponential variants it
minimizes total client work under contention, because retries from a
herd of clients (or a coordinator redialing a fleet of workers) spread
over the whole window instead of thundering in lockstep at the window's
edge — exactly the failure mode the linear ``base * attempt`` schedule
this replaces exhibited when many clients raced one restarting server.

Determinism note: the jitter draws from a caller-supplied RNG (or the
module's private one), never from the simulation's seeded streams —
redial timing is host-side operational noise and must not perturb the
deterministic share/noise randomness (the same discipline as thread
scheduling).
"""

from __future__ import annotations

import random as _random
from typing import Callable

#: First window's upper bound (seconds) — also the historical client
#: default ``retry_backoff=0.05``.
DEFAULT_BASE = 0.05
#: Ceiling on one delay (seconds): growth stops here, jitter remains.
DEFAULT_CAP = 2.0

#: Module-private RNG for jitter; independent of the simulation streams.
_JITTER_RNG = _random.Random()


def backoff_delay(
    attempt: int,
    base: float = DEFAULT_BASE,
    cap: float = DEFAULT_CAP,
    rng: Callable[[], float] | None = None,
) -> float:
    """The delay before retry number ``attempt`` (0-based).

    Attempt 0 (the first *retry*) draws from ``[0, base]``, attempt 1
    from ``[0, 2*base]``, and so on, with the window capped at ``cap``.
    ``rng`` is a 0-arg callable returning a float in ``[0, 1)``
    (defaults to a module-private :class:`random.Random`).

    >>> backoff_delay(3, base=0.05, cap=2.0, rng=lambda: 1.0)
    0.4
    >>> backoff_delay(50, base=0.05, cap=2.0, rng=lambda: 1.0)  # capped
    2.0
    >>> backoff_delay(2, rng=lambda: 0.0)  # full jitter reaches zero
    0.0
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if base < 0 or cap < 0:
        raise ValueError(f"base and cap must be >= 0, got {base}, {cap}")
    # min() first: 2**attempt overflows no float for attempt <= 1023,
    # but there is no reason to compute huge powers at all.
    window = min(cap, base * (2.0 ** min(attempt, 62)))
    draw = _JITTER_RNG.random() if rng is None else rng()
    return window * draw


#: Floor on a server-supplied ``retry_after`` hint (seconds).  A hint of
#: 0 (an empty-but-refilling token bucket reports exactly that) taken
#: literally turns the client's polite retry loop into a busy-wait
#: hammering the very server that asked it to back off.
RETRY_AFTER_FLOOR = 0.01
#: Ceiling on a hint: a server (or a corrupted frame) must not be able
#: to park a client for minutes.
RETRY_AFTER_CAP = 30.0


def clamp_retry_after(
    hint: object,
    floor: float = RETRY_AFTER_FLOOR,
    cap: float = RETRY_AFTER_CAP,
) -> float:
    """A safe sleep from an untrusted ``retry_after`` hint.

    The hint came off the wire: it may be absent, zero, negative,
    non-finite, or not a number at all.  Every degenerate form maps to
    the floor — the retry loop's budget (``busy_retries``) bounds total
    waiting, this bounds the *rate*.

    >>> clamp_retry_after(0.5)
    0.5
    >>> clamp_retry_after(0)        # zero would busy-spin
    0.01
    >>> clamp_retry_after(None)     # absent hint
    0.01
    >>> clamp_retry_after(-3)       # negative is nonsense
    0.01
    >>> clamp_retry_after(float("inf"))  # unbounded park
    30.0
    >>> clamp_retry_after("soon")   # not a number
    0.01
    """
    try:
        value = float(hint)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return floor
    if value != value:  # NaN
        return floor
    return min(max(value, floor), cap)
