"""The analyst/owner SDK: a typed client for the network front door.

:class:`IncShrinkClient` mirrors the in-process serving surface over one
TCP connection:

* ``connect()`` retries with linear backoff (servers often come up a
  beat after their clients in scripted deployments) and performs the
  ``hello``/``welcome`` handshake, capturing the server's public
  deployment metadata (:attr:`server_info` — view names and join specs,
  shard count, stream watermark);
* ``upload``/``query``/``stats``/``snapshot``/``reshard`` map one-to-one
  onto protocol frames; ``query`` accepts any AST form the in-process
  :meth:`~repro.server.runtime.DatabaseServer.query` accepts and returns
  a typed :class:`~repro.net.protocol.RemoteQueryResult`;
* structured ``overloaded`` rejections are retried automatically after
  the server's ``retry_after`` hint (bounded by ``busy_retries``); every
  other ``error`` frame raises :class:`~repro.net.protocol.RemoteError`
  with its machine-readable code;
* the client is a context manager (``with IncShrinkClient(...) as c:``)
  and is safe to share across threads — one request/response exchange at
  a time, serialized on an internal lock.
"""

from __future__ import annotations

import socket
import threading
import time as _time
from typing import Iterable, Mapping

from ..common.types import RecordBatch
from ..query.ast import LogicalJoinQuery, LogicalQuery
from . import protocol as wire
from .protocol import RemoteError, RemoteQueryResult, WireError


class IncShrinkClient:
    """One connection to a :class:`~repro.net.server.NetworkServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str | None = None,
        timeout: float = 30.0,
        connect_retries: int = 20,
        retry_backoff: float = 0.05,
        busy_retries: int = 16,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or "incshrink-client"
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff
        self.busy_retries = busy_retries
        #: the server's ``welcome`` payload (views, shard count, watermark)
        self.server_info: dict = {}
        self._sock: socket.socket | None = None
        self._stream = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._stream is not None

    def connect(self) -> "IncShrinkClient":
        """Dial the server (with retry) and perform the handshake.

        Both failure modes retry with backoff up to ``connect_retries``
        times: an unreachable endpoint (redial), and a server at its
        connection cap — which answers the handshake with a structured
        ``overloaded`` error *and closes the socket*, so honouring its
        ``retry_after`` hint requires a fresh dial, not a resend.  When
        the retries run out the most recent error is raised
        (:class:`~repro.net.protocol.RemoteError` for a persistently
        full server, :class:`ConnectionError` otherwise).
        """
        if self.connected:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.connect_retries)):
            if attempt:
                _time.sleep(self.retry_backoff * attempt)
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._stream = sock.makefile("rwb")
            try:
                # No same-socket busy retry here: a connection-cap
                # rejection closes the socket, so overload is handled
                # below by redialing.
                self.server_info = self._request(
                    "hello", {"client": self.name}, expect="welcome",
                    retry_busy=False,
                )
                return self
            except RemoteError as exc:
                # A failed handshake must not leave a half-connected
                # client behind: a later connect() would short-circuit
                # on `connected` and hand back a dead stream.
                self._teardown()
                if exc.code == wire.ERR_OVERLOADED:
                    last_error = exc
                    if exc.retry_after is not None:
                        _time.sleep(exc.retry_after)
                    continue
                raise
            except ConnectionError as exc:
                self._teardown()
                last_error = exc
                continue
            except BaseException:
                self._teardown()
                raise
        if isinstance(last_error, RemoteError):
            raise last_error
        raise ConnectionError(
            f"cannot reach {self.host}:{self.port} after "
            f"{self.connect_retries} attempts: {last_error}"
        )

    def _teardown(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Say goodbye (best effort) and release the socket."""
        with self._lock:
            if self._stream is not None:
                try:
                    wire.write_frame(self._stream, "bye", {})
                    wire.read_frame(self._stream)
                except (OSError, ValueError, WireError):
                    pass
            self._teardown()

    def __enter__(self) -> "IncShrinkClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ---------------------------------------------------------
    def _request(
        self, frame_type: str, payload: dict, expect: str, retry_busy: bool = True
    ) -> dict:
        """One exchange; retries structured ``overloaded`` rejections.

        A transport failure mid-exchange (timeout, reset, EOF) tears the
        connection down before raising: the stream is desynchronized —
        the server's late response would otherwise be read as the answer
        to the *next* request — so the only safe continuation is a fresh
        :meth:`connect`.
        """
        busy_budget = self.busy_retries if retry_busy else 0
        for attempt in range(busy_budget + 1):
            with self._lock:
                # Checked under the lock: a concurrent close() tears the
                # stream down inside the same critical section, so this
                # request either completes or sees "not connected".
                stream = self._stream
                if stream is None:
                    raise ConnectionError(
                        "client is not connected; call connect() first"
                    )
                try:
                    wire.write_frame(stream, frame_type, payload)
                    response_type, response = wire.read_frame(stream)
                except (OSError, ValueError, wire.ConnectionClosed) as exc:
                    self._teardown()
                    raise ConnectionError(
                        f"connection to {self.host}:{self.port} lost: {exc}"
                    ) from exc
            if response_type == "error":
                code = response.get("code", wire.ERR_SERVER)
                retry_after = response.get("retry_after")
                if (
                    code == wire.ERR_OVERLOADED
                    and retry_after is not None
                    and attempt < busy_budget
                ):
                    _time.sleep(float(retry_after))
                    continue
                raise RemoteError(
                    code, response.get("message", "unspecified"), retry_after
                )
            if response_type != expect:
                raise WireError(
                    f"expected a {expect!r} frame in response to "
                    f"{frame_type!r}, got {response_type!r}"
                )
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the serving surface ------------------------------------------------------
    def upload(
        self,
        time: int,
        batches: Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]],
        wait: bool = False,
        wait_timeout: float = 30.0,
    ) -> dict:
        """Submit one step's padded batches to the server's ingest queue.

        With ``wait=True`` the call returns only after the server's
        ingestion loop has applied everything queued (read-your-writes
        for the subsequent query).  Returns the ``upload_ok`` payload:
        applied watermark, current queue depth, and ``drained`` —
        ``False`` means the upload was *accepted* but the bounded wait
        expired before it applied (do **not** resend; the step is
        queued and a resend would be stale).
        """
        payload = wire.encode_upload(time, batches, wait=wait)
        if wait:
            payload["wait_timeout"] = float(wait_timeout)
        return self._request("upload", payload, expect="upload_ok")

    def query(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        time: int | None = None,
        predicate_words: int = 1,
        epsilon: float | None = None,
    ) -> RemoteQueryResult:
        """Plan and execute one logical query on the server.

        Mirrors :meth:`repro.server.runtime.DatabaseServer.query`:
        ``time=None`` resolves to the ingestion watermark under the
        server's read lock, and ``epsilon`` releases the answers with
        per-aggregate Laplace noise spent in the server's accountant.
        """
        payload = {
            "query": wire.encode_query(query),
            "time": None if time is None else int(time),
            "predicate_words": int(predicate_words),
            "epsilon": None if epsilon is None else float(epsilon),
        }
        return wire.decode_result(self._request("query", payload, expect="result"))

    def stats(self) -> dict:
        """The server's observability surface (``ServingStats.to_dict()``
        plus watermark, shard count, and realized ε)."""
        return self._request("stats", {}, expect="stats_result")

    def snapshot(self, path: str | None = None) -> dict:
        """Ask the server to checkpoint; returns the snapshot receipt."""
        payload = {} if path is None else {"path": path}
        return self._request("snapshot", payload, expect="snapshot_ok")

    def reshard(self, n_shards: int) -> dict:
        """Re-partition every view server-side (answers and ε unchanged)."""
        return self._request(
            "reshard", {"n_shards": int(n_shards)}, expect="reshard_ok"
        )

    def views(self) -> list[dict]:
        """Registered views (name + join spec) from the handshake."""
        return list(self.server_info.get("views", []))
