"""The analyst/owner SDK: a typed client for the network front door.

:class:`IncShrinkClient` mirrors the in-process serving surface over one
TCP connection:

* ``connect()`` retries with capped exponential backoff and full jitter
  (servers often come up a beat after their clients in scripted
  deployments, and jitter de-synchronizes reconnect herds) and performs the
  ``hello``/``welcome`` handshake, capturing the server's public
  deployment metadata (:attr:`server_info` — view names and join specs,
  shard count, stream watermark);
* ``upload``/``query``/``stats``/``snapshot``/``reshard`` map one-to-one
  onto protocol frames; ``query`` accepts any AST form the in-process
  :meth:`~repro.server.runtime.DatabaseServer.query` accepts and returns
  a typed :class:`~repro.net.protocol.RemoteQueryResult`;
* structured ``overloaded`` rejections are retried automatically after
  the server's ``retry_after`` hint (bounded by ``busy_retries``); every
  other ``error`` frame raises :class:`~repro.net.protocol.RemoteError`
  with its machine-readable code;
* the handshake **negotiates a codec**: the client offers its
  preference list in ``hello`` (binary first by default) and adopts
  whatever the ``welcome`` picks, so the same client code speaks raw
  little-endian share payloads to a PR 7 reactor and plain JSON to a
  PR 5-era server;
* ``upload_many`` pipelines a run of steps in one write burst and one
  read pass — the reactor coalesces the burst into a single batched
  queue submission — and :attr:`bytes_sent`/:attr:`bytes_received`
  meter the wire for codec comparisons;
* the client is a context manager (``with IncShrinkClient(...) as c:``)
  and is safe to share across threads — one request/response exchange at
  a time, serialized on an internal lock.
"""

from __future__ import annotations

import socket
import threading
import time as _time
from typing import Iterable, Mapping

from ..common.types import RecordBatch
from ..query.ast import LogicalJoinQuery, LogicalQuery
from . import protocol as wire
from .backoff import backoff_delay, clamp_retry_after
from .protocol import RemoteError, RemoteQueryResult, WireError


class _MeteredStream:
    """File-like wrapper metering every byte that crosses the socket.

    The codec-comparison benchmark needs honest bytes-on-wire numbers,
    and the frame reader/writer only see a file object — so the count
    happens here, transparently, for requests and responses alike.
    """

    __slots__ = ("_stream", "_owner")

    def __init__(self, stream, owner: "IncShrinkClient") -> None:
        self._stream = stream
        self._owner = owner

    def read(self, n: int = -1) -> bytes:
        data = self._stream.read(n)
        self._owner._bytes_received += len(data)
        return data

    def write(self, data) -> int:
        self._owner._bytes_sent += len(data)
        return self._stream.write(data)

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        self._stream.close()


class IncShrinkClient:
    """One connection to a :class:`~repro.net.server.NetworkServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str | None = None,
        timeout: float = 30.0,
        connect_retries: int = 20,
        retry_backoff: float = 0.05,
        busy_retries: int = 16,
        codec: str = wire.CODEC_BINARY,
        tenant: str | None = None,
        token: str | None = None,
    ) -> None:
        if codec not in wire.SUPPORTED_CODECS:
            raise WireError(
                f"unknown codec preference {codec!r}; "
                f"supported: {wire.SUPPORTED_CODECS}"
            )
        self.host = host
        self.port = port
        self.name = name or "incshrink-client"
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff
        self.busy_retries = busy_retries
        #: preferred codec, offered first in the ``hello`` frame; the
        #: server's ``welcome`` has the final word (:attr:`codec`)
        self.preferred_codec = codec
        #: multi-tenant credentials, sent in the ``hello`` frame when
        #: set.  A registry-backed server answers a wrong or missing
        #: pair with a structured ``auth-failed`` error and closes; a
        #: registry-less server ignores the fields entirely.
        self.tenant = tenant
        self.token = token
        #: the server's ``welcome`` payload (views, shard count, watermark)
        self.server_info: dict = {}
        self._sock: socket.socket | None = None
        self._stream = None
        self._lock = threading.Lock()
        self._codec = wire.CODEC_JSON
        self._bytes_sent = 0
        self._bytes_received = 0

    # -- lifecycle ---------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._stream is not None

    @property
    def codec(self) -> str:
        """The codec the ``welcome`` frame settled on (``json`` until
        a handshake negotiates ``binary``)."""
        return self._codec

    @property
    def bytes_sent(self) -> int:
        """Request bytes written to the wire (frames + headers),
        accumulated across reconnects."""
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        """Response bytes read off the wire, accumulated across
        reconnects."""
        return self._bytes_received

    def connect(self) -> "IncShrinkClient":
        """Dial the server (with retry) and perform the handshake.

        Both failure modes retry with backoff up to ``connect_retries``
        times: an unreachable endpoint (redial), and a server at its
        connection cap — which answers the handshake with a structured
        ``overloaded`` error *and closes the socket*, so honouring its
        ``retry_after`` hint requires a fresh dial, not a resend.  When
        the retries run out the most recent error is raised
        (:class:`~repro.net.protocol.RemoteError` for a persistently
        full server, :class:`ConnectionError` otherwise).
        """
        if self.connected:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.connect_retries)):
            if attempt:
                # Exponential backoff with full jitter, capped — the
                # same schedule the scan coordinator redials dead shard
                # workers on (:mod:`repro.net.backoff`).  Jitter keeps a
                # thundering herd of reconnecting clients from landing
                # on the same instant after a server restart.
                _time.sleep(backoff_delay(attempt - 1, base=self.retry_backoff))
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._stream = _MeteredStream(sock.makefile("rwb"), self)
            self._codec = wire.CODEC_JSON
            if self.preferred_codec == wire.CODEC_BINARY:
                offered = [wire.CODEC_BINARY, wire.CODEC_JSON]
            else:
                offered = [wire.CODEC_JSON]
            try:
                # No same-socket busy retry here: a connection-cap
                # rejection closes the socket, so overload is handled
                # below by redialing.  The hello itself always rides a
                # version-1 JSON frame — it must parse on any server.
                hello: dict = {"client": self.name, "codecs": offered}
                if self.tenant is not None:
                    hello["tenant"] = self.tenant
                if self.token is not None:
                    hello["token"] = self.token
                self.server_info = self._request(
                    "hello",
                    hello,
                    expect="welcome",
                    retry_busy=False,
                )
                picked = self.server_info.get("codec", wire.CODEC_JSON)
                if picked not in offered:
                    # A PR 5-era server omits the field entirely (JSON);
                    # anything else we didn't offer is a protocol bug.
                    raise WireError(
                        f"server picked unoffered codec {picked!r}"
                    )
                self._codec = picked
                return self
            except RemoteError as exc:
                # A failed handshake must not leave a half-connected
                # client behind: a later connect() would short-circuit
                # on `connected` and hand back a dead stream.
                self._teardown()
                if exc.code == wire.ERR_OVERLOADED:
                    last_error = exc
                    # The hint is untrusted wire data: absent, zero, or
                    # negative values all clamp to a floor so a shedding
                    # server is never redialed in a hot loop.
                    _time.sleep(clamp_retry_after(exc.retry_after))
                    continue
                raise
            except ConnectionError as exc:
                self._teardown()
                last_error = exc
                continue
            except BaseException:
                self._teardown()
                raise
        if isinstance(last_error, RemoteError):
            raise last_error
        raise ConnectionError(
            f"cannot reach {self.host}:{self.port} after "
            f"{self.connect_retries} attempts: {last_error}"
        )

    def _teardown(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._codec = wire.CODEC_JSON

    def close(self) -> None:
        """Say goodbye (best effort) and release the socket."""
        with self._lock:
            if self._stream is not None:
                try:
                    wire.write_frame(self._stream, "bye", {})
                    wire.read_frame(self._stream)
                except (OSError, ValueError, WireError):
                    pass
            self._teardown()

    def __enter__(self) -> "IncShrinkClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ---------------------------------------------------------
    def _request(
        self, frame_type: str, payload: dict, expect: str, retry_busy: bool = True
    ) -> dict:
        """One exchange; retries structured ``overloaded`` rejections.

        A transport failure mid-exchange (timeout, reset, EOF) tears the
        connection down before raising: the stream is desynchronized —
        the server's late response would otherwise be read as the answer
        to the *next* request — so the only safe continuation is a fresh
        :meth:`connect`.
        """
        busy_budget = self.busy_retries if retry_busy else 0
        for attempt in range(busy_budget + 1):
            with self._lock:
                # Checked under the lock: a concurrent close() tears the
                # stream down inside the same critical section, so this
                # request either completes or sees "not connected".
                stream = self._stream
                if stream is None:
                    raise ConnectionError(
                        "client is not connected; call connect() first"
                    )
                try:
                    wire.write_frame(stream, frame_type, payload, codec=self._codec)
                    response_type, response = wire.read_frame(stream)
                except (OSError, ValueError, wire.ConnectionClosed) as exc:
                    self._teardown()
                    raise ConnectionError(
                        f"connection to {self.host}:{self.port} lost: {exc}"
                    ) from exc
            if response_type == "error":
                code = response.get("code", wire.ERR_SERVER)
                retry_after = response.get("retry_after")
                if code == wire.ERR_OVERLOADED and attempt < busy_budget:
                    # Only ``overloaded`` is retryable — ``auth-failed``,
                    # ``forbidden``, and ``budget-exhausted`` raise below:
                    # waiting makes no token valid and no ledger solvent.
                    # A missing/zero hint clamps to a floor (no hot loop).
                    _time.sleep(clamp_retry_after(retry_after))
                    continue
                raise RemoteError(
                    code, response.get("message", "unspecified"), retry_after
                )
            if response_type != expect:
                raise WireError(
                    f"expected a {expect!r} frame in response to "
                    f"{frame_type!r}, got {response_type!r}"
                )
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the serving surface ------------------------------------------------------
    def upload(
        self,
        time: int,
        batches: Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]],
        wait: bool = False,
        wait_timeout: float = 30.0,
    ) -> dict:
        """Submit one step's padded batches to the server's ingest queue.

        With ``wait=True`` the call returns only after the server's
        ingestion loop has applied everything queued (read-your-writes
        for the subsequent query).  Returns the ``upload_ok`` payload:
        applied watermark, current queue depth, and ``drained`` —
        ``False`` means the upload was *accepted* but the bounded wait
        expired before it applied (do **not** resend; the step is
        queued and a resend would be stale).
        """
        payload = wire.encode_upload(
            time, batches, wait=wait, binary=self._codec == wire.CODEC_BINARY
        )
        if wait:
            payload["wait_timeout"] = float(wait_timeout)
        return self._request("upload", payload, expect="upload_ok")

    def upload_many(
        self,
        steps: Iterable[
            tuple[int, Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]]]
        ],
        wait: bool = False,
        wait_timeout: float = 30.0,
    ) -> list[dict]:
        """Pipeline a run of steps: one write burst, one read pass.

        All frames go out back-to-back before any response is read, so
        the reactor parses them as one run and coalesces the admission
        into a single batched queue submission.  ``wait=True`` attaches
        the drain wait to the **last** step only — when it has applied,
        every earlier step has too (read-your-writes for the burst).

        The server admits a burst as a *prefix* (admission stops at the
        first step that finds the ingest queue full), so ``overloaded``
        rejections are always a suffix — which this method retries
        after the server's ``retry_after`` hint, up to ``busy_retries``
        times, without ever re-sending an accepted step.  Returns one
        ``upload_ok`` payload per step, in order.
        """
        remaining = list(steps)
        results: list[dict] = []
        if not remaining:
            return results
        binary = self._codec == wire.CODEC_BINARY
        for attempt in range(self.busy_retries + 1):
            with self._lock:
                stream = self._stream
                if stream is None:
                    raise ConnectionError(
                        "client is not connected; call connect() first"
                    )
                payloads = []
                for idx, (time, batches) in enumerate(remaining):
                    last = idx == len(remaining) - 1
                    payload = wire.encode_upload(
                        time, batches, wait=wait and last, binary=binary
                    )
                    if wait and last:
                        payload["wait_timeout"] = float(wait_timeout)
                    payloads.append(payload)
                try:
                    stream.write(
                        b"".join(
                            wire.encode_frame("upload", p, codec=self._codec)
                            for p in payloads
                        )
                    )
                    stream.flush()
                    responses = [wire.read_frame(stream) for _ in payloads]
                except (OSError, ValueError, wire.ConnectionClosed) as exc:
                    self._teardown()
                    raise ConnectionError(
                        f"connection to {self.host}:{self.port} lost: {exc}"
                    ) from exc
            retry_from: int | None = None
            retry_after: float | None = None
            for i, (response_type, response) in enumerate(responses):
                if response_type == "upload_ok":
                    results.append(response)
                    continue
                if response_type == "error":
                    code = response.get("code", wire.ERR_SERVER)
                    if code == wire.ERR_OVERLOADED:
                        retry_from = i
                        retry_after = response.get("retry_after")
                        break
                    raise RemoteError(
                        code,
                        response.get("message", "unspecified"),
                        response.get("retry_after"),
                    )
                raise WireError(
                    f"expected an 'upload_ok' frame in response to "
                    f"'upload', got {response_type!r}"
                )
            if retry_from is None:
                return results
            remaining = remaining[retry_from:]
            if attempt < self.busy_retries:
                _time.sleep(clamp_retry_after(retry_after))
        raise RemoteError(
            wire.ERR_OVERLOADED,
            f"ingest queue still full after {self.busy_retries} retries "
            f"({len(remaining)} steps unsubmitted)",
            retry_after,
        )

    def query(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        time: int | None = None,
        predicate_words: int = 1,
        epsilon: float | None = None,
    ) -> RemoteQueryResult:
        """Plan and execute one logical query on the server.

        Mirrors :meth:`repro.server.runtime.DatabaseServer.query`:
        ``time=None`` resolves to the ingestion watermark under the
        server's read lock, and ``epsilon`` releases the answers with
        per-aggregate Laplace noise spent in the server's accountant.
        """
        payload = {
            "query": wire.encode_query(query),
            "time": None if time is None else int(time),
            "predicate_words": int(predicate_words),
            "epsilon": None if epsilon is None else float(epsilon),
        }
        return wire.decode_result(self._request("query", payload, expect="result"))

    def stats(self) -> dict:
        """The server's observability surface (``ServingStats.to_dict()``
        plus watermark, shard count, and realized ε)."""
        return self._request("stats", {}, expect="stats_result")

    def snapshot(self, path: str | None = None) -> dict:
        """Ask the server to checkpoint; returns the snapshot receipt."""
        payload = {} if path is None else {"path": path}
        return self._request("snapshot", payload, expect="snapshot_ok")

    def reshard(self, n_shards: int) -> dict:
        """Re-partition every view server-side (answers and ε unchanged)."""
        return self._request(
            "reshard", {"n_shards": int(n_shards)}, expect="reshard_ok"
        )

    def views(self) -> list[dict]:
        """Registered views (name + join spec) from the handshake."""
        return list(self.server_info.get("views", []))
