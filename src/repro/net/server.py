"""The threaded socket front door around one :class:`DatabaseServer`.

:class:`NetworkServer` gives the in-process serving runtime an actual
service boundary — the deployment shape of the paper's Figure 1, where
owners and analysts talk to the two untrusted servers over a network
rather than through Python object references:

* one **accept thread** plus one handler thread per connection; each
  connection is a read session (frames on one connection execute in
  order, connections execute concurrently under the runtime's existing
  read/write, per-view, and MPC locks);
* **bounded admission** — at most ``max_connections`` concurrent
  connections and ``max_inflight`` concurrently executing requests.
  Anything beyond is *rejected* with a structured ``overloaded`` error
  carrying a ``retry_after`` hint, never buffered without bound; the
  ingest queue applies the same policy through
  :meth:`~repro.server.runtime.DatabaseServer.try_submit`;
* **graceful drain** — :meth:`close` stops accepting, lets every
  in-flight request finish and flush its response, answers anything
  newly arrived with ``shutting-down``, then severs the idle
  connections.

The server binds ``127.0.0.1`` by default; pass ``port=0`` to let the
OS pick a free port (the bound address is :attr:`address`).
"""

from __future__ import annotations

import socket
import threading
import time as _time

from ..common.errors import ConfigurationError, ReproError
from ..server.runtime import DatabaseServer, DrainTimeout
from . import protocol as wire

#: Request frames that consume an in-flight permit (everything that
#: executes against the database; hello/stats are cheap reads).
_GUARDED_FRAMES = ("upload", "query", "snapshot", "reshard")


class NetworkServer:
    """Serve one :class:`DatabaseServer` over TCP."""

    def __init__(
        self,
        server: DatabaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 32,
        max_inflight: int = 8,
        retry_after: float = 0.05,
        max_wait_timeout: float = 60.0,
        idle_timeout: float | None = 300.0,
    ) -> None:
        if max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after}"
            )
        if max_wait_timeout <= 0:
            raise ConfigurationError(
                f"max_wait_timeout must be positive, got {max_wait_timeout}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ConfigurationError(
                f"idle_timeout must be positive (or None), got {idle_timeout}"
            )
        self.server = server
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        #: ceiling on the client-supplied `wait_timeout` of an upload
        #: frame — an in-flight permit is held for the wait, so an
        #: unbounded client value could pin the request capacity
        self.max_wait_timeout = max_wait_timeout
        #: per-connection read timeout — a silent or dead peer (no FIN
        #: ever arrives) must not hold one of max_connections slots
        #: forever; None disables (trusted single-tenant setups only)
        self.idle_timeout = idle_timeout
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: dict[socket.socket, threading.Thread] = {}
        self._lock = threading.Lock()
        self._inflight = threading.Semaphore(max_inflight)
        # Admission gate for uploads: a stale (non-advancing) step must
        # be rejected *synchronously* — once enqueued it would fail in
        # the background loop and poison ingestion for every client.
        self._upload_gate = threading.Lock()
        self._highest_admitted = 0
        self._closing = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemera)."""
        if self._listener is None:
            raise ConfigurationError("server not started; call start() first")
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def start(self) -> "NetworkServer":
        """Bind, listen, and launch the accept loop.

        Starts the wrapped :class:`DatabaseServer` too if the caller has
        not already — the network door implies a running ingest loop.
        """
        if self._listener is not None:
            raise ConfigurationError("network server already started")
        if not self.server.running:
            self.server.start()
        # Seed the admission floor from everything ever *submitted*
        # (not just applied): a step queued before the listener opened
        # must not be undercut by a remote upload that would then fail
        # in the background loop.
        self._highest_admitted = self.server.highest_submitted
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(min(128, self.max_connections * 2))
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="incshrink-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self, drain_timeout: float = 10.0, stop_server: bool = False) -> None:
        """Graceful drain: finish in-flight requests, then disconnect.

        New *guarded* requests (upload/query/snapshot/reshard) arriving
        during the drain are answered with a structured
        ``shutting-down`` error; the cheap observability frames
        (hello/stats) keep being served so monitors can watch the drain
        itself.  With ``stop_server`` the wrapped
        :class:`DatabaseServer` is stopped afterwards as well (draining
        its ingest queue under the same timeout).
        """
        if self._listener is None or self._closed:
            return
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        # Wait for every in-flight request to finish and flush: when all
        # max_inflight permits are re-acquirable, nothing is executing.
        deadline = _time.monotonic() + drain_timeout
        acquired = 0
        for _ in range(self.max_inflight):
            remaining = deadline - _time.monotonic()
            if remaining <= 0 or not self._inflight.acquire(timeout=remaining):
                break
            acquired += 1
        for _ in range(acquired):
            self._inflight.release()
        # Sever the (now idle) connections; handlers unblock and exit.
        with self._lock:
            connections = list(self._handlers)
        for conn in connections:
            _close_socket(conn)
        with self._lock:
            threads = list(self._handlers.values())
        for thread in threads:
            thread.join(timeout=max(0.1, deadline - _time.monotonic()))
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        self._closed = True
        if stop_server:
            self.server.stop(drain_timeout=drain_timeout)

    def __enter__(self) -> "NetworkServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accept / per-connection loops -------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed by close()
                return
            with self._lock:
                admit = not self._closing and len(self._handlers) < self.max_connections
                if admit:
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(conn,),
                        name="incshrink-conn",
                        daemon=True,
                    )
                    self._handlers[conn] = thread
            if not admit:
                self._reject_connection(conn)
                continue
            thread.start()

    def _reject_connection(self, conn: socket.socket) -> None:
        """Best-effort structured rejection of a connection over the cap."""
        try:
            stream = conn.makefile("wb")
            wire.write_frame(
                stream,
                "error",
                wire.error_payload(
                    wire.ERR_OVERLOADED,
                    f"server at max_connections={self.max_connections}",
                    retry_after=self.retry_after,
                ),
            )
            stream.close()
        except OSError:
            pass
        finally:
            _close_socket(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        if self.idle_timeout is not None:
            conn.settimeout(self.idle_timeout)
        stream = conn.makefile("rwb")
        try:
            while True:
                try:
                    frame_type, payload = wire.read_frame(stream)
                except wire.ConnectionClosed:
                    return
                except wire.VersionMismatch as exc:
                    self._try_write(
                        stream,
                        "error",
                        wire.error_payload(wire.ERR_VERSION_MISMATCH, str(exc)),
                    )
                    return
                except wire.WireError as exc:
                    self._try_write(
                        stream,
                        "error",
                        wire.error_payload(wire.ERR_BAD_FRAME, str(exc)),
                    )
                    return
                if frame_type == "bye":
                    self._try_write(stream, "bye", {})
                    return
                if frame_type in _GUARDED_FRAMES:
                    rejection = self._admit()
                    if rejection is not None:
                        if not self._try_write(stream, *rejection):
                            return
                        continue
                    # The permit stays held until the response is
                    # flushed: close()'s drain must not sever this
                    # connection between execution and write (the
                    # request's effects — an ε spend, an applied
                    # upload — would be real but the answer lost).
                    try:
                        response = self._execute(frame_type, payload)
                        alive = self._try_write(stream, *response)
                    finally:
                        self._inflight.release()
                    if not alive:
                        return
                    continue
                response_type, response = self._dispatch(frame_type, payload)
                if not self._try_write(stream, response_type, response):
                    return
        except OSError:
            # Reset, idle timeout, or the socket torn down mid-drain —
            # nothing to answer on; just release the connection slot.
            return
        finally:
            try:
                stream.close()
            except OSError:
                pass
            _close_socket(conn)
            with self._lock:
                self._handlers.pop(conn, None)

    @staticmethod
    def _try_write(stream, frame_type: str, payload: dict) -> bool:
        try:
            wire.write_frame(stream, frame_type, payload)
            return True
        except (OSError, ValueError):  # peer gone / socket torn down mid-drain
            return False

    # -- request dispatch ---------------------------------------------------------
    def _admit(self) -> tuple[str, dict] | None:
        """Admission control for guarded frames.

        Returns a rejection response, or ``None`` when admitted — in
        which case one in-flight permit is held and the **caller** must
        release it (after flushing the response, so a graceful drain
        counts the unflushed answer as still in flight).
        """
        if self._closing:
            return "error", wire.error_payload(
                wire.ERR_SHUTTING_DOWN, "server is draining; no new requests"
            )
        if not self._inflight.acquire(blocking=False):
            return "error", wire.error_payload(
                wire.ERR_OVERLOADED,
                f"server at max_inflight={self.max_inflight} concurrent requests",
                retry_after=self.retry_after,
            )
        return None

    def _execute(self, frame_type: str, payload: dict) -> tuple[str, dict]:
        """Run one admitted guarded request; never raises."""
        # A poisoned ingest loop is the *server's* condition, not this
        # request's fault: report it as a server error (with the original
        # failure) instead of letting try_submit/query re-raise it as an
        # invalid-request that blames the innocent caller's payload.
        deferred = self.server.ingest_error
        if deferred is not None and frame_type in ("upload", "query"):
            return "error", wire.error_payload(
                wire.ERR_SERVER,
                "ingestion halted by an earlier failure: "
                f"{type(deferred).__name__}: {deferred}",
            )
        try:
            if frame_type == "upload":
                return self._handle_upload(payload)
            if frame_type == "query":
                return self._handle_query(payload)
            if frame_type == "snapshot":
                return self._handle_snapshot(payload)
            return self._handle_reshard(payload)
        except ReproError as exc:
            return "error", wire.error_payload(
                wire.ERR_INVALID_REQUEST, f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # never let one request kill the connection
            return "error", wire.error_payload(
                wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
            )

    def _dispatch(self, frame_type: str, payload: dict) -> tuple[str, dict]:
        """Single-shot dispatch of any request frame.

        The connection loop inlines the guarded path to hold the permit
        across the response write; this wrapper (admit → execute →
        release) serves the unguarded frames and direct callers (tests).
        """
        if frame_type == "hello":
            return "welcome", self._welcome()
        if frame_type == "stats":
            return "stats_result", self.server.observability()
        if frame_type not in _GUARDED_FRAMES:
            return "error", wire.error_payload(
                wire.ERR_UNSUPPORTED, f"cannot serve {frame_type!r} frames"
            )
        rejection = self._admit()
        if rejection is not None:
            return rejection
        try:
            return self._execute(frame_type, payload)
        finally:
            self._inflight.release()

    def _welcome(self) -> dict:
        """Public deployment metadata a client needs to form queries."""
        db = self.server.database
        return {
            "server": "incshrink",
            "protocol": wire.PROTOCOL_VERSION,
            "views": [
                {
                    "name": name,
                    **{f: getattr(vr.view_def, f) for f in wire.JOIN_FIELDS},
                }
                for name, vr in db.views.items()
            ],
            "n_shards": db.n_shards,
            "last_time": self.server.last_time,
        }

    def _handle_upload(self, payload: dict) -> tuple[str, dict]:
        time_step, items = wire.decode_upload(payload)
        with self._upload_gate:
            # Reject a non-advancing step *before* it reaches the queue:
            # deferred, it would kill the background loop for everyone
            # while its sender saw upload_ok.  The floor covers local
            # submits too (highest_submitted), not just applied steps.
            floor = max(self.server.highest_submitted, self._highest_admitted)
            if time_step <= floor:
                return "error", wire.error_payload(
                    wire.ERR_INVALID_REQUEST,
                    f"upload at step {time_step} does not advance the "
                    f"stream (highest admitted step is {floor})",
                )
            if not self.server.try_submit(time_step, items):
                return "error", wire.error_payload(
                    wire.ERR_OVERLOADED,
                    f"ingest queue at capacity "
                    f"({self.server.max_pending} steps)",
                    retry_after=self.retry_after,
                )
            self._highest_admitted = time_step
        drained = True
        if payload.get("wait"):
            # Clamp the client-supplied wait: an in-flight permit is
            # held for its duration, so an unbounded value would let
            # one client pin the server's request capacity.
            wait_timeout = min(
                float(payload.get("wait_timeout", 30.0)), self.max_wait_timeout
            )
            try:
                self.server.drain(timeout=wait_timeout)
            except DrainTimeout:
                # The upload *was* accepted and will be applied; a slow
                # drain must not read as "rejected, resend" (a resend
                # would be a stale step).
                drained = False
        return "upload_ok", {
            "time": time_step,
            "applied_through": self.server.last_time,
            "queue_depth": self.server.pending_uploads,
            "drained": drained,
        }

    def _handle_query(self, payload: dict) -> tuple[str, dict]:
        try:
            query = wire.decode_query(payload["query"])
            time = payload.get("time")
            time = None if time is None else int(time)
            epsilon = payload.get("epsilon")
            epsilon = None if epsilon is None else float(epsilon)
            predicate_words = int(payload.get("predicate_words", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(f"malformed query frame: {exc!r}") from exc
        result = self.server.query(
            query,
            time=time,
            predicate_words=predicate_words,
            epsilon=epsilon,
        )
        return "result", wire.encode_result(result)

    def _handle_snapshot(self, payload: dict) -> tuple[str, dict]:
        info = self.server.snapshot(payload.get("path"))
        return "snapshot_ok", {
            "path": info.path,
            "bytes_written": info.bytes_written,
            "sha256": info.sha256,
            "created_at": info.created_at,
        }

    def _handle_reshard(self, payload: dict) -> tuple[str, dict]:
        n_shards = int(payload["n_shards"])
        self.server.reshard(n_shards)
        return "reshard_ok", {"n_shards": self.server.database.n_shards}


def _close_socket(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass
