"""The event-driven socket front door around one :class:`DatabaseServer`.

:class:`NetworkServer` gives the in-process serving runtime an actual
service boundary — the deployment shape of the paper's Figure 1, where
owners and analysts talk to the two untrusted servers over a network
rather than through Python object references.  Since PR 7 the front
door is a **reactor**, not thread-per-connection:

* a small fixed pool of **event-loop threads** (``loop_threads``), each
  multiplexing its share of non-blocking sockets through one
  :mod:`selectors` selector; connections are assigned round-robin at
  accept, so a thousand mostly-idle connections cost a thousand socket
  objects, not a thousand stacks;
* a per-connection **frame-reassembly state machine**
  (:class:`~repro.net.protocol.FrameDecoder`) that tolerates arbitrary
  byte fragmentation, validates headers before buffering bodies, and
  keeps reassembly memory bounded by one declared frame;
* request execution happens on a separate **worker pool** — the event
  loops never run a query or an upload apply, so one slow MPC circuit
  cannot stall the I/O of 999 other connections;
* **bounded admission** everywhere, re-expressed as event-loop state
  instead of blocked threads: at most ``max_connections`` concurrent
  connections and ``max_inflight`` concurrently executing requests
  (anything beyond is *rejected* with a structured ``overloaded`` error
  carrying a ``retry_after`` hint, never buffered without bound); the
  ingest queue applies the same policy through
  :meth:`~repro.server.runtime.DatabaseServer.try_submit`;
* **event-loop timers** reclaim connection slots: a peer that completes
  no frame for ``idle_timeout`` seconds (idle, dead, or slow-loris
  dribbling bytes without ever finishing a frame) is closed, as is a
  stalled reader whose kernel buffers stay full past the same deadline;
  a write buffer past ``max_write_buffer`` bytes closes immediately;
* **codec negotiation** — ``hello`` offers codecs, ``welcome`` picks
  one; a PR 5-era JSON client negotiates down transparently while a
  binary client's share payloads ride raw little-endian bytes;
* back-to-back ``upload`` frames parsed from one connection are
  **coalesced** into a single admission-gate pass and a single batched
  queue submission (:meth:`~repro.server.runtime.DatabaseServer.
  try_submit_many`), with one ``upload_ok`` answered per frame;
* **graceful drain** — :meth:`close` stops accepting, lets every
  in-flight request finish and flush its response, answers anything
  newly arrived with ``shutting-down``, then severs the idle
  connections.

The server binds ``127.0.0.1`` by default; pass ``port=0`` to let the
OS pick a free port (the bound address is :attr:`address`).
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time as _time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from ..common.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    ReproError,
    SecurityError,
)
from ..server.runtime import DatabaseServer, DrainTimeout
from ..tenancy.ledger import TenantLedger
from ..tenancy.quota import TenantGates
from ..tenancy.registry import Tenant, TenantRegistry
from . import protocol as wire

#: Request frames that consume an in-flight permit (everything that
#: executes against the database; hello is answered on the event loop,
#: stats runs on the worker pool but never competes with real work).
_GUARDED_FRAMES = ("upload", "query", "snapshot", "reshard")

#: recv() chunk size for the event loops.
_RECV_CHUNK = 65536


class _Connection:
    """Per-connection reactor state: reassembly, dispatch, write-back."""

    __slots__ = (
        "sock",
        "decoder",
        "pending",
        "outbuf",
        "codec",
        "executing",
        "permits",
        "counted",
        "eof",
        "wire_fail",
        "close_after_flush",
        "closed",
        "last_progress",
        "last_write_progress",
        "registered",
        "events",
        "tenant",
        "gate",
        "tenant_permits",
    )

    def __init__(self, sock: socket.socket, counted: bool = True) -> None:
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        #: complete frames parsed but not yet dispatched (bounded)
        self.pending: deque = deque()
        #: encoded response bytes awaiting the socket
        self.outbuf = bytearray()
        self.codec = wire.CODEC_JSON
        #: a request batch is on the worker pool right now
        self.executing = False
        #: in-flight permits held until the response bytes are flushed
        self.permits = 0
        #: whether this connection occupies a max_connections slot
        self.counted = counted
        self.eof = False
        #: deferred framing failure ``(code, message)`` — answered with
        #: a structured error once the frames before it are served
        self.wire_fail: tuple[str, str] | None = None
        self.close_after_flush = False
        self.closed = False
        now = _time.monotonic()
        #: monotonic time of the last *completed* frame (not last byte:
        #: a slow-loris dribble never resets the idle clock)
        self.last_progress = now
        #: monotonic time of the last successful socket write
        self.last_write_progress = now
        self.registered = False
        self.events = 0
        #: the authenticated :class:`~repro.tenancy.registry.Tenant`
        #: (None until a credentialed hello on a registry-backed server)
        self.tenant: Tenant | None = None
        #: the tenant's admission gate; holds one connection slot
        self.gate = None
        #: per-tenant in-flight permits held alongside :attr:`permits`
        self.tenant_permits = 0


class _EventLoop(threading.Thread):
    """One selector thread owning a subset of the connections."""

    def __init__(self, net: "NetworkServer", index: int) -> None:
        super().__init__(name=f"incshrink-loop-{index}", daemon=True)
        self.net = net
        self.index = index
        self.selector = selectors.DefaultSelector()
        self.connections: set[_Connection] = set()
        self._tasks: deque = deque()
        self._tasks_lock = threading.Lock()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self.selector.register(self._wake_r, selectors.EVENT_READ, ("wake", None))
        self._listener: socket.socket | None = None
        self._stopping = False
        self._next_reap = 0.0

    # -- cross-thread entry point ------------------------------------------------
    def call_soon(self, fn, *args) -> None:
        """Schedule ``fn(*args)`` on this loop's thread and wake it."""
        with self._tasks_lock:
            self._tasks.append((fn, args))
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # wake buffer full (already awake) or loop gone

    def attach_listener(self, listener: socket.socket) -> None:
        self._listener = listener
        self.selector.register(listener, selectors.EVENT_READ, ("listener", None))

    def attach(self, conn: _Connection) -> None:
        """Adopt one accepted connection (runs on this loop's thread)."""
        if self._stopping:
            self.net._discard(conn)
            _close_socket(conn.sock)
            return
        self.connections.add(conn)
        self.net._update_interest(self, conn)
        # A rejection connection arrives with a preloaded outbuf.
        if conn.outbuf:
            self.net._flush(self, conn)

    def shutdown(self) -> None:
        """Close everything this loop owns and let run() exit."""
        self._stopping = True
        if self._listener is not None:
            try:
                self.selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            _close_socket(self._listener)
            self._listener = None
        for conn in list(self.connections):
            self.net._close_conn(self, conn)

    # -- the loop ----------------------------------------------------------------
    def _poll_timeout(self) -> float:
        idle = self.net.idle_timeout
        if idle is None or not self.connections:
            return 0.5
        return max(0.02, min(0.5, idle / 4.0))

    def run(self) -> None:
        while True:
            try:
                events = self.selector.select(self._poll_timeout())
                self._run_tasks()
                for key, mask in events:
                    kind, conn = key.data
                    if kind == "wake":
                        self._drain_wake()
                    elif kind == "listener":
                        self.net._on_accept(self)
                    else:
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self.net._flush(self, conn)
                        if mask & selectors.EVENT_READ and not conn.closed:
                            self.net._on_readable(self, conn)
                now = _time.monotonic()
                if now >= self._next_reap:
                    self._next_reap = now + self._poll_timeout()
                    self.net._reap_idle(self, now)
                if self._stopping and not self.connections:
                    break
            except Exception as exc:  # never die silently: record and carry on
                self.net._unhandled_errors.append(exc)
                if self._stopping:
                    break
        try:
            self.selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _run_tasks(self) -> None:
        while True:
            with self._tasks_lock:
                if not self._tasks:
                    return
                fn, args = self._tasks.popleft()
            fn(*args)


class NetworkServer:
    """Serve one :class:`DatabaseServer` over TCP, event-driven."""

    def __init__(
        self,
        server: DatabaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 32,
        max_inflight: int = 8,
        retry_after: float = 0.05,
        max_wait_timeout: float = 60.0,
        idle_timeout: float | None = 300.0,
        loop_threads: int = 2,
        max_write_buffer: int = 2 * wire.MAX_FRAME_BYTES,
        max_pending_frames: int = 64,
        socket_sndbuf: int | None = None,
        registry: TenantRegistry | None = None,
        audit_log: str | None = None,
    ) -> None:
        if max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after}"
            )
        if max_wait_timeout <= 0:
            raise ConfigurationError(
                f"max_wait_timeout must be positive, got {max_wait_timeout}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ConfigurationError(
                f"idle_timeout must be positive (or None), got {idle_timeout}"
            )
        if loop_threads < 1:
            raise ConfigurationError(
                f"loop_threads must be >= 1, got {loop_threads}"
            )
        if max_write_buffer < 1:
            raise ConfigurationError(
                f"max_write_buffer must be >= 1, got {max_write_buffer}"
            )
        if max_pending_frames < 1:
            raise ConfigurationError(
                f"max_pending_frames must be >= 1, got {max_pending_frames}"
            )
        self.server = server
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        #: ceiling on the client-supplied `wait_timeout` of an upload
        #: frame — an in-flight permit is held for the wait, so an
        #: unbounded client value could pin the request capacity
        self.max_wait_timeout = max_wait_timeout
        #: per-connection progress deadline — a peer that completes no
        #: frame (idle, dead, or slow-loris) or accepts no response
        #: bytes (stalled reader) for this long is closed by the loop's
        #: timer wheel; None disables (trusted single-tenant setups)
        self.idle_timeout = idle_timeout
        #: number of event-loop threads multiplexing the connections
        self.loop_threads = loop_threads
        #: per-connection write-buffer cap: a reader stalled past this
        #: many un-sent response bytes is disconnected immediately
        self.max_write_buffer = max_write_buffer
        #: per-connection cap on parsed-but-undispatched frames; past
        #: it the loop stops reading that socket (TCP backpressure)
        self.max_pending_frames = max_pending_frames
        #: when set, pins SO_SNDBUF on accepted sockets — disables
        #: kernel autotuning so per-connection kernel memory is bounded
        #: and a stalled reader hits :attr:`max_write_buffer` promptly
        self.socket_sndbuf = socket_sndbuf
        self._listener: socket.socket | None = None
        self._loops: list[_EventLoop] = []
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._inflight = threading.Semaphore(max_inflight)
        # Admission gate for uploads: a stale (non-advancing) step must
        # be rejected *synchronously* — once enqueued it would fail in
        # the background loop and poison ingestion for every client.
        self._upload_gate = threading.Lock()
        self._highest_admitted = 0
        self._open_connections = 0
        self._next_loop = 0
        self._closing = False
        self._closed = False
        #: exceptions the event loops could not attribute to a request
        #: (should stay empty; the fuzz suite asserts it does)
        self._unhandled_errors: list[BaseException] = []
        #: high-water mark of any connection's reassembly buffer, for
        #: bounded-memory assertions in tests
        self._reassembly_hwm = 0
        #: multi-tenant identity/quota config.  ``None`` = open
        #: back-compat mode: hello's tenant/token fields are ignored and
        #: every request is served exactly as before PR 10.
        self.registry = registry
        self._gates = None if registry is None else TenantGates(registry)
        #: structured JSON audit trail (auth failures, budget refusals,
        #: quota rejections) — a bounded in-memory ring plus an optional
        #: append-only JSON-lines file at ``audit_log``
        self.audit_log = audit_log
        self.audit_events: deque = deque(maxlen=1024)
        self._audit_lock = threading.Lock()
        if registry is not None:
            budgets = registry.budgets()
            if budgets:
                server.database.set_tenant_budgets(budgets)

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemera)."""
        if self._listener is None:
            raise ConfigurationError("server not started; call start() first")
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    @property
    def open_connections(self) -> int:
        """Connections currently holding a ``max_connections`` slot."""
        with self._lock:
            return self._open_connections

    def start(self) -> "NetworkServer":
        """Bind, listen, and launch the event loops.

        Starts the wrapped :class:`DatabaseServer` too if the caller has
        not already — the network door implies a running ingest loop.
        """
        if self._listener is not None:
            raise ConfigurationError("network server already started")
        if not self.server.running:
            self.server.start()
        # Seed the admission floor from everything ever *submitted*
        # (not just applied): a step queued before the listener opened
        # must not be undercut by a remote upload that would then fail
        # in the background loop.
        self._highest_admitted = self.server.highest_submitted
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(min(1024, max(128, self.max_connections)))
        listener.setblocking(False)
        self._listener = listener
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight + 1,
            thread_name_prefix="incshrink-net-exec",
        )
        self._loops = [_EventLoop(self, i) for i in range(self.loop_threads)]
        self._loops[0].attach_listener(listener)
        for loop in self._loops:
            loop.start()
        return self

    def close(self, drain_timeout: float = 10.0, stop_server: bool = False) -> None:
        """Graceful drain: finish in-flight requests, then disconnect.

        New *guarded* requests (upload/query/snapshot/reshard) arriving
        during the drain are answered with a structured
        ``shutting-down`` error; the cheap observability frames
        (hello/stats) keep being served so monitors can watch the drain
        itself.  With ``stop_server`` the wrapped
        :class:`DatabaseServer` is stopped afterwards as well (draining
        its ingest queue under the same timeout).
        """
        if self._listener is None or self._closed:
            return
        self._closing = True
        deadline = _time.monotonic() + drain_timeout
        # Wait for every in-flight request to finish *and flush*: the
        # permits are released only after the response bytes left the
        # write buffer, so when all max_inflight permits are
        # re-acquirable nothing executed is still unanswered.
        acquired = 0
        for _ in range(self.max_inflight):
            remaining = deadline - _time.monotonic()
            if remaining <= 0 or not self._inflight.acquire(timeout=remaining):
                break
            acquired += 1
        for _ in range(acquired):
            self._inflight.release()
        # Sever the (now idle) connections and stop the loops.
        for loop in self._loops:
            loop.call_soon(loop.shutdown)
        for loop in self._loops:
            loop.join(timeout=max(0.1, deadline - _time.monotonic()))
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._closed = True
        if stop_server:
            self.server.stop(drain_timeout=drain_timeout)

    def __enter__(self) -> "NetworkServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accept path --------------------------------------------------------------
    def _on_accept(self, loop: _EventLoop) -> None:
        """Drain the accept backlog (runs on the listener's loop)."""
        assert self._listener is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # listener closed by close()
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self.socket_sndbuf is not None:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF, self.socket_sndbuf
                    )
            except OSError:
                pass
            if self._closing:
                _close_socket(sock)
                continue
            with self._lock:
                admit = self._open_connections < self.max_connections
                if admit:
                    self._open_connections += 1
                target = self._loops[self._next_loop % len(self._loops)]
                self._next_loop += 1
            conn = _Connection(sock, counted=admit)
            if not admit:
                # Structured rejection: the error frame is queued on the
                # connection's write buffer and the socket closes once
                # it flushes — no thread ever blocks on a slow peer.
                conn.outbuf += wire.encode_frame(
                    "error",
                    wire.error_payload(
                        wire.ERR_OVERLOADED,
                        f"server at max_connections={self.max_connections}",
                        retry_after=self.retry_after,
                    ),
                )
                conn.close_after_flush = True
            if target is loop:
                loop.attach(conn)
            else:
                target.call_soon(target.attach, conn)

    def _discard(self, conn: _Connection) -> None:
        """Release the connection's accounting slot."""
        if conn.counted:
            conn.counted = False
            with self._lock:
                self._open_connections -= 1

    # -- event handlers (loop threads only) ---------------------------------------
    def _close_conn(self, loop: _EventLoop, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._release_permits(conn)
        self._release_gate(conn)
        if conn.registered:
            try:
                loop.selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered = False
        _close_socket(conn.sock)
        loop.connections.discard(conn)
        self._discard(conn)

    def _release_permits(self, conn: _Connection) -> None:
        while conn.permits > 0:
            conn.permits -= 1
            self._inflight.release()
        while conn.tenant_permits > 0:
            conn.tenant_permits -= 1
            if conn.gate is not None:
                conn.gate.release_permit()

    def _release_gate(self, conn: _Connection) -> None:
        """Return the tenant's connection slot (at most once)."""
        gate, conn.gate = conn.gate, None
        if gate is not None:
            gate.release_connection()

    def _update_interest(self, loop: _EventLoop, conn: _Connection) -> None:
        if conn.closed:
            return
        events = 0
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        read_paused = len(conn.pending) >= self.max_pending_frames
        if (
            not conn.close_after_flush
            and not conn.eof
            and conn.wire_fail is None
            and not read_paused
            and len(conn.outbuf) < self.max_write_buffer
        ):
            events |= selectors.EVENT_READ
        if events == conn.events and conn.registered == bool(events):
            return
        try:
            if conn.registered and events:
                loop.selector.modify(conn.sock, events, ("conn", conn))
            elif conn.registered:
                loop.selector.unregister(conn.sock)
            elif events:
                loop.selector.register(conn.sock, events, ("conn", conn))
        except (KeyError, ValueError, OSError):
            self._close_conn(loop, conn)
            return
        conn.registered = bool(events)
        conn.events = events

    def _on_readable(self, loop: _EventLoop, conn: _Connection) -> None:
        while conn.wire_fail is None and len(conn.pending) < self.max_pending_frames:
            try:
                data = conn.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(loop, conn)
                return
            if not data:
                conn.eof = True
                break
            try:
                frames = conn.decoder.feed(data)
                failure = conn.decoder.error
            except wire.WireError as exc:
                frames = []
                failure = exc
            buffered = conn.decoder.buffered_bytes
            if buffered > self._reassembly_hwm:
                self._reassembly_hwm = buffered
            if frames:
                conn.last_progress = _time.monotonic()
                conn.pending.extend(frames)
            if failure is not None:
                # Frames completed before the malformed bytes still get
                # answered (pending drains first); then the structured
                # error goes out and the connection closes.
                code = (
                    wire.ERR_VERSION_MISMATCH
                    if isinstance(failure, wire.VersionMismatch)
                    else wire.ERR_BAD_FRAME
                )
                conn.wire_fail = (code, str(failure))
                break
        self._pump(loop, conn)

    def _fail_conn(
        self, loop: _EventLoop, conn: _Connection, code: str, message: str
    ) -> None:
        """Malformed framing: answer a structured error, then hang up."""
        conn.pending.clear()
        conn.close_after_flush = True
        try:
            conn.outbuf += wire.encode_frame(
                "error", wire.error_payload(code, message), codec=conn.codec
            )
        except wire.WireError:  # pragma: no cover - error payloads encode
            pass
        self._flush(loop, conn)

    def _pump(self, loop: _EventLoop, conn: _Connection) -> None:
        """Dispatch parsed frames in order; one request batch at a time."""
        while (
            not conn.closed
            and not conn.executing
            and not conn.close_after_flush
            and conn.pending
            and len(conn.outbuf) < self.max_write_buffer
        ):
            frame_type, payload = conn.pending[0]
            if frame_type == "bye":
                conn.pending.clear()
                conn.close_after_flush = True
                self._send(loop, conn, [("bye", {})])
                break
            if frame_type == "hello":
                conn.pending.popleft()
                if self.registry is not None:
                    failure = self._authenticate(conn, payload)
                    if failure is not None:
                        # A failed handshake answers one structured
                        # error and closes cleanly once it flushes.
                        conn.pending.clear()
                        conn.close_after_flush = True
                        self._send(loop, conn, [failure])
                        break
                codec = wire.negotiate_codec(
                    payload.get("codecs") if isinstance(payload, dict) else None
                )
                conn.codec = codec
                self._send(
                    loop, conn, [("welcome", self._welcome(codec, conn.tenant))]
                )
                continue
            if frame_type in _GUARDED_FRAMES or frame_type == "stats":
                batch = [conn.pending.popleft()]
                if frame_type == "upload":
                    # Coalesce back-to-back uploads into one admission
                    # pass and one batched queue submission.
                    limit = max(1, self.server.ingest_batch)
                    while (
                        len(batch) < limit
                        and conn.pending
                        and conn.pending[0][0] == "upload"
                    ):
                        batch.append(conn.pending.popleft())
                if self.registry is not None:
                    rejection = self._authorize(conn, frame_type, len(batch))
                    if rejection is not None:
                        if rejection[1].get("code") == wire.ERR_AUTH_FAILED:
                            # Requests before a credentialed hello: one
                            # error, then hang up.
                            conn.pending.clear()
                            conn.close_after_flush = True
                            self._send(loop, conn, [rejection])
                            break
                        self._send(loop, conn, [rejection] * len(batch))
                        continue
                if frame_type in _GUARDED_FRAMES:
                    rejection = self._admit(conn)
                    if rejection is not None:
                        self._send(loop, conn, [rejection] * len(batch))
                        continue
                conn.executing = True
                assert self._executor is not None
                self._executor.submit(self._worker, loop, conn, batch)
                break
            # A response-type or unknown frame is not a request.
            conn.pending.popleft()
            self._send(
                loop,
                conn,
                [
                    (
                        "error",
                        wire.error_payload(
                            wire.ERR_UNSUPPORTED,
                            f"cannot serve {frame_type!r} frames",
                        ),
                    )
                ],
            )
        if (
            conn.wire_fail is not None
            and not conn.closed
            and not conn.pending
            and not conn.executing
            and not conn.close_after_flush
        ):
            code, message = conn.wire_fail
            self._fail_conn(loop, conn, code, message)
            return
        if (
            conn.eof
            and not conn.closed
            and not conn.pending
            and not conn.executing
            and not conn.outbuf
        ):
            self._close_conn(loop, conn)
            return
        self._update_interest(loop, conn)

    def _send(
        self, loop: _EventLoop, conn: _Connection, responses: list[tuple[str, dict]]
    ) -> None:
        conn.outbuf += self._encode_responses(responses, conn.codec)
        conn.last_write_progress = _time.monotonic()
        self._flush(loop, conn)

    def _encode_responses(
        self, responses: list[tuple[str, dict]], codec: str
    ) -> bytes:
        try:
            return b"".join(
                wire.encode_frame(t, p, codec=codec) for t, p in responses
            )
        except Exception as exc:  # a response that cannot encode
            return wire.encode_frame(
                "error",
                wire.error_payload(
                    wire.ERR_SERVER,
                    f"response encoding failed: {type(exc).__name__}: {exc}",
                ),
            )

    def _flush(self, loop: _EventLoop, conn: _Connection) -> None:
        if conn.closed:
            return
        try:
            while conn.outbuf:
                sent = conn.sock.send(conn.outbuf)
                if sent <= 0:
                    break
                del conn.outbuf[:sent]
                conn.last_write_progress = _time.monotonic()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_conn(loop, conn)
            return
        if not conn.outbuf:
            self._release_permits(conn)
            if conn.close_after_flush:
                self._close_conn(loop, conn)
                return
            if conn.eof and not conn.pending and not conn.executing:
                self._close_conn(loop, conn)
                return
        elif len(conn.outbuf) > self.max_write_buffer:
            # A reader stalled past the cap: frames cannot be dropped
            # mid-stream, so the only bounded-memory option is hangup.
            self._close_conn(loop, conn)
            return
        self._update_interest(loop, conn)

    def _reap_idle(self, loop: _EventLoop, now: float) -> None:
        """Event-loop timers: reclaim slots held by unproductive peers."""
        if self.idle_timeout is None:
            return
        for conn in list(loop.connections):
            if conn.closed or conn.executing:
                continue
            stalled_write = (
                conn.outbuf and now - conn.last_write_progress > self.idle_timeout
            )
            idle = not conn.outbuf and (
                now - conn.last_progress > self.idle_timeout
            )
            if stalled_write or idle:
                self._close_conn(loop, conn)

    # -- worker pool (executes off the event loops) --------------------------------
    def _worker(self, loop: _EventLoop, conn: _Connection, batch: list) -> None:
        frame_type = batch[0][0]
        try:
            if frame_type == "upload":
                responses = self._handle_upload_batch([p for _, p in batch])
            elif frame_type == "stats":
                responses = [("stats_result", self.server.observability())]
            else:
                responses = [
                    self._execute(
                        frame_type,
                        batch[0][1],
                        binary=conn.codec == wire.CODEC_BINARY,
                        tenant=(
                            None
                            if conn.tenant is None
                            else conn.tenant.tenant_id
                        ),
                    )
                ]
            blob = self._encode_responses(responses, conn.codec)
        except BaseException as exc:  # _execute never raises; belt and braces
            self._unhandled_errors.append(exc)
            blob = self._encode_responses(
                [
                    (
                        "error",
                        wire.error_payload(
                            wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
                        ),
                    )
                ]
                * len(batch),
                conn.codec,
            )
        loop.call_soon(self._on_worker_done, loop, conn, blob)

    def _on_worker_done(
        self, loop: _EventLoop, conn: _Connection, blob: bytes
    ) -> None:
        conn.executing = False
        conn.last_progress = _time.monotonic()
        if conn.closed:
            self._release_permits(conn)
            return
        conn.outbuf += blob
        conn.last_write_progress = conn.last_progress
        self._flush(loop, conn)
        if not conn.closed:
            self._pump(loop, conn)

    # -- multi-tenant identity and quotas ------------------------------------------
    def _authenticate(
        self, conn: _Connection, payload: object
    ) -> tuple[str, dict] | None:
        """Verify a hello's tenant credentials against the registry.

        Returns the rejection response, or ``None`` with ``conn.tenant``
        and ``conn.gate`` set.  Every failure shape — missing fields,
        wrong types, oversized strings, unknown tenant, wrong token —
        answers the same structured ``auth-failed`` error (constant-time
        token comparison, no token ever echoed or logged).
        """
        assert self.registry is not None and self._gates is not None
        fields = payload if isinstance(payload, dict) else {}
        tenant_id = fields.get("tenant")
        try:
            tenant = self.registry.authenticate(tenant_id, fields.get("token"))
        except SecurityError as exc:
            self._audit(
                "auth-failed",
                tenant=tenant_id if isinstance(tenant_id, str) else None,
                reason=str(exc),
            )
            return "error", wire.error_payload(
                wire.ERR_AUTH_FAILED, str(exc)
            )
        gate = self._gates.gate(tenant.tenant_id)
        if conn.gate is not None and conn.gate is not gate:
            # A re-hello that switches identity frees the old slot.
            self._release_gate(conn)
        if conn.gate is None:
            if not gate.try_connect():
                gate.note_rejection("connections")
                self._audit("quota-rejected", tenant=tenant.tenant_id,
                            quota="connections")
                return "error", wire.error_payload(
                    wire.ERR_OVERLOADED,
                    f"tenant {tenant.tenant_id!r} at "
                    f"max_connections={tenant.max_connections}",
                    retry_after=self.retry_after,
                )
            conn.gate = gate
        conn.tenant = tenant
        return None

    def _authorize(
        self, conn: _Connection, frame_type: str, n: int
    ) -> tuple[str, dict] | None:
        """Role and rate checks for one request batch (``n`` frames).

        Runs before the global admission gate so a throttled tenant
        never consumes a deployment-wide permit.  ``stats`` needs a
        session but no role (every tenant may watch the deployment).
        """
        tenant = conn.tenant
        if tenant is None:
            self._audit("auth-failed", tenant=None,
                        reason=f"{frame_type} before a credentialed hello")
            return "error", wire.error_payload(
                wire.ERR_AUTH_FAILED,
                f"cannot serve {frame_type!r} before a credentialed hello",
            )
        if frame_type == "stats":
            return None
        if not self.registry.allowed(tenant.role, frame_type):
            assert conn.gate is not None
            conn.gate.note_rejection("forbidden")
            self._audit("forbidden", tenant=tenant.tenant_id,
                        role=tenant.role, frame=frame_type)
            return "error", wire.error_payload(
                wire.ERR_FORBIDDEN,
                f"role {tenant.role!r} of tenant {tenant.tenant_id!r} "
                f"may not {frame_type}",
            )
        if frame_type in ("upload", "query"):
            assert conn.gate is not None
            wait = conn.gate.try_rate(frame_type, n)
            if wait is not None:
                conn.gate.note_rejection(f"{frame_type}-rate")
                self._audit("quota-rejected", tenant=tenant.tenant_id,
                            quota=f"{frame_type}-rate")
                return "error", wire.error_payload(
                    wire.ERR_OVERLOADED,
                    f"tenant {tenant.tenant_id!r} over its {frame_type} "
                    "rate limit",
                    retry_after=max(wait, self.retry_after),
                )
        return None

    def _audit(self, event: str, **fields: object) -> None:
        """Record one structured audit event (never a token)."""
        record = {"event": event, "ts": _time.time(), **fields}
        with self._audit_lock:
            self.audit_events.append(record)
            if self.audit_log is not None:
                try:
                    with open(self.audit_log, "a", encoding="utf8") as fh:
                        fh.write(json.dumps(record, default=str) + "\n")
                except OSError:
                    pass  # auditing must never take the data path down

    def tenancy_stats(self) -> dict:
        """Per-tenant gauges for the metrics listener and tests.

        Merges each tenant's live admission gauges (connections,
        in-flight, rejection counters) with its privacy-ledger summary
        (ε spent / budget / remaining).  Empty without a registry.
        """
        if self.registry is None or self._gates is None:
            return {}
        db = self.server.database
        ledger = TenantLedger(db.accountant, db.tenant_budgets)
        summary = ledger.summary()
        out: dict[str, dict] = {}
        for tenant in self.registry:
            tid = tenant.tenant_id
            entry = dict(self._gates.gate(tid).gauges())
            entry["role"] = tenant.role
            entry.update(
                summary.get(
                    tid,
                    {
                        "epsilon_spent": ledger.spent(tid),
                        "epsilon_budget": None,
                        "epsilon_remaining": None,
                    },
                )
            )
            out[tid] = entry
        return out

    # -- request dispatch ---------------------------------------------------------
    def _admit(self, conn: _Connection | None = None) -> tuple[str, dict] | None:
        """Admission control for guarded frames.

        Returns a rejection response, or ``None`` when admitted — in
        which case one in-flight permit (plus the tenant's, when ``conn``
        is an authenticated connection) is held on ``conn`` and released
        after the response bytes flush, so a graceful drain counts the
        unflushed answer as still in flight.  Direct callers passing no
        connection (:meth:`_dispatch`) must release the global permit
        themselves.
        """
        if self._closing:
            return "error", wire.error_payload(
                wire.ERR_SHUTTING_DOWN, "server is draining; no new requests"
            )
        if not self._inflight.acquire(blocking=False):
            return "error", wire.error_payload(
                wire.ERR_OVERLOADED,
                f"server at max_inflight={self.max_inflight} concurrent requests",
                retry_after=self.retry_after,
            )
        if conn is None:
            return None
        if conn.gate is not None and not conn.gate.try_permit():
            self._inflight.release()
            conn.gate.note_rejection("inflight")
            tenant = conn.tenant
            assert tenant is not None
            self._audit("quota-rejected", tenant=tenant.tenant_id,
                        quota="inflight")
            return "error", wire.error_payload(
                wire.ERR_OVERLOADED,
                f"tenant {tenant.tenant_id!r} at "
                f"max_inflight={tenant.max_inflight} concurrent requests",
                retry_after=self.retry_after,
            )
        conn.permits += 1
        if conn.gate is not None:
            conn.tenant_permits += 1
        return None

    def _execute(
        self,
        frame_type: str,
        payload: dict,
        binary: bool = False,
        tenant: str | None = None,
    ) -> tuple[str, dict]:
        """Run one admitted guarded request; never raises.

        ``binary`` selects the response payload shape for query
        results: raw ndarrays (packed as out-of-band blobs by the
        version-2 frame codec) versus the JSON-safe base64 form every
        v1 client understands.
        """
        # A poisoned ingest loop is the *server's* condition, not this
        # request's fault: report it as a server error (with the original
        # failure) instead of letting try_submit/query re-raise it as an
        # invalid-request that blames the innocent caller's payload.
        deferred = self.server.ingest_error
        if deferred is not None and frame_type in ("upload", "query"):
            return "error", wire.error_payload(
                wire.ERR_SERVER,
                "ingestion halted by an earlier failure: "
                f"{type(deferred).__name__}: {deferred}",
            )
        try:
            if frame_type == "upload":
                return self._handle_upload(payload)
            if frame_type == "query":
                return self._handle_query(payload, binary=binary, tenant=tenant)
            if frame_type == "snapshot":
                return self._handle_snapshot(payload)
            return self._handle_reshard(payload)
        except BudgetExhaustedError as exc:
            # Refused *before* any noise was drawn: structured fields so
            # the analyst can see exactly what the ledger has left.  Not
            # retryable — waiting cannot make the ledger solvent.
            self._audit(
                "budget-exhausted",
                tenant=exc.tenant,
                requested_epsilon=exc.requested,
                epsilon_spent=exc.spent,
                epsilon_budget=exc.budget,
            )
            if self._gates is not None and exc.tenant is not None:
                self._gates.gate(exc.tenant).note_rejection("budget-exhausted")
            response = wire.error_payload(wire.ERR_BUDGET_EXHAUSTED, str(exc))
            response["tenant"] = exc.tenant
            response["requested_epsilon"] = exc.requested
            response["epsilon_spent"] = exc.spent
            response["epsilon_budget"] = exc.budget
            return "error", response
        except ReproError as exc:
            return "error", wire.error_payload(
                wire.ERR_INVALID_REQUEST, f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # never let one request kill the connection
            return "error", wire.error_payload(
                wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
            )

    def _dispatch(self, frame_type: str, payload: dict) -> tuple[str, dict]:
        """Single-shot dispatch of any request frame.

        The event loops inline the guarded path to hold the permit
        across the response write; this wrapper (admit → execute →
        release) serves direct callers (tests, diagnostics).
        """
        if frame_type == "hello":
            return "welcome", self._welcome(
                wire.negotiate_codec(
                    payload.get("codecs") if isinstance(payload, dict) else None
                )
            )
        if frame_type == "stats":
            return "stats_result", self.server.observability()
        if frame_type not in _GUARDED_FRAMES:
            return "error", wire.error_payload(
                wire.ERR_UNSUPPORTED, f"cannot serve {frame_type!r} frames"
            )
        rejection = self._admit()
        if rejection is not None:
            return rejection
        try:
            return self._execute(frame_type, payload)
        finally:
            self._inflight.release()

    def _welcome(
        self, codec: str | None = None, tenant: Tenant | None = None
    ) -> dict:
        """Public deployment metadata a client needs to form queries."""
        db = self.server.database
        payload = {
            "server": "incshrink",
            "protocol": wire.PROTOCOL_VERSION,
            "protocol_versions": list(wire.SUPPORTED_VERSIONS),
            "codecs": list(wire.SUPPORTED_CODECS),
            "views": [
                {
                    "name": name,
                    **{f: getattr(vr.view_def, f) for f in wire.JOIN_FIELDS},
                }
                for name, vr in db.views.items()
            ],
            "n_shards": db.n_shards,
            "last_time": self.server.last_time,
        }
        if codec is not None:
            payload["codec"] = codec
        if tenant is not None:
            payload["tenant"] = tenant.tenant_id
            payload["role"] = tenant.role
        return payload

    # -- upload admission + batched submission -------------------------------------
    def _handle_upload(self, payload: dict) -> tuple[str, dict]:
        return self._handle_upload_batch([payload])[0]

    @staticmethod
    def _wait_timeout_of(payload: dict) -> float:
        try:
            return float(payload.get("wait_timeout", 30.0))
        except (TypeError, ValueError):
            return 30.0

    def _handle_upload_batch(
        self, payloads: list[dict]
    ) -> list[tuple[str, dict]]:
        """Admit, submit, and answer a run of coalesced upload frames.

        One gate pass covers the whole run: each step must advance past
        the floor *and* its predecessors in the batch; admitted steps
        enter the ingest queue through one
        :meth:`~repro.server.runtime.DatabaseServer.try_submit_many`
        call.  Every frame gets its own response, in order — admission
        failures and queue overflow reject individual frames without
        severing the rest.
        """
        responses: list[tuple[str, dict] | None] = [None] * len(payloads)
        try:
            self._upload_batch_inner(payloads, responses)
        except ReproError as exc:
            fallback = (
                "error",
                wire.error_payload(
                    wire.ERR_INVALID_REQUEST, f"{type(exc).__name__}: {exc}"
                ),
            )
            responses = [r if r is not None else fallback for r in responses]
        except Exception as exc:
            fallback = (
                "error",
                wire.error_payload(
                    wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
                ),
            )
            responses = [r if r is not None else fallback for r in responses]
        missing = (
            "error",
            wire.error_payload(wire.ERR_SERVER, "upload produced no response"),
        )
        return [r if r is not None else missing for r in responses]

    def _upload_batch_inner(
        self,
        payloads: list[dict],
        responses: list[tuple[str, dict] | None],
    ) -> None:
        deferred = self.server.ingest_error
        if deferred is not None:
            halted = (
                "error",
                wire.error_payload(
                    wire.ERR_SERVER,
                    "ingestion halted by an earlier failure: "
                    f"{type(deferred).__name__}: {deferred}",
                ),
            )
            for i in range(len(payloads)):
                responses[i] = halted
            return
        decoded: list[tuple[int, int, list, dict]] = []
        for i, payload in enumerate(payloads):
            try:
                time_step, items = wire.decode_upload(payload)
                decoded.append((i, time_step, items, payload))
            except ReproError as exc:
                responses[i] = (
                    "error",
                    wire.error_payload(
                        wire.ERR_INVALID_REQUEST, f"{type(exc).__name__}: {exc}"
                    ),
                )
            except Exception as exc:
                responses[i] = (
                    "error",
                    wire.error_payload(
                        wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
                    ),
                )
        admitted: list[tuple[int, int, dict]] = []
        with self._upload_gate:
            # Reject a non-advancing step *before* it reaches the queue:
            # deferred, it would kill the background loop for everyone
            # while its sender saw upload_ok.  The floor covers local
            # submits too (highest_submitted), not just applied steps.
            floor = max(self.server.highest_submitted, self._highest_admitted)
            to_submit: list[tuple[int, int, list, dict]] = []
            for i, time_step, items, payload in decoded:
                if time_step <= floor:
                    responses[i] = (
                        "error",
                        wire.error_payload(
                            wire.ERR_INVALID_REQUEST,
                            f"upload at step {time_step} does not advance the "
                            f"stream (highest admitted step is {floor})",
                        ),
                    )
                else:
                    to_submit.append((i, time_step, items, payload))
                    floor = time_step
            if len(to_submit) == 1:
                i, time_step, items, payload = to_submit[0]
                accepted = 1 if self.server.try_submit(time_step, items) else 0
            elif to_submit:
                accepted = self.server.try_submit_many(
                    [(t, items) for _, t, items, _ in to_submit]
                )
            else:
                accepted = 0
            overloaded = (
                "error",
                wire.error_payload(
                    wire.ERR_OVERLOADED,
                    f"ingest queue at capacity ({self.server.max_pending} steps)",
                    retry_after=self.retry_after,
                ),
            )
            for j, (i, time_step, items, payload) in enumerate(to_submit):
                if j < accepted:
                    self._highest_admitted = max(
                        self._highest_admitted, time_step
                    )
                    admitted.append((i, time_step, payload))
                else:
                    responses[i] = overloaded
        drained = True
        drain_error: tuple[str, dict] | None = None
        waiters = [p for _, _, p in admitted if p.get("wait")]
        if waiters:
            # Clamp the client-supplied wait: an in-flight permit is
            # held for its duration, so an unbounded value would let
            # one client pin the server's request capacity.
            wait_timeout = min(
                max(self._wait_timeout_of(p) for p in waiters),
                self.max_wait_timeout,
            )
            try:
                self.server.drain(timeout=wait_timeout)
            except DrainTimeout:
                # The upload *was* accepted and will be applied; a slow
                # drain must not read as "rejected, resend" (a resend
                # would be a stale step).
                drained = False
            except ReproError as exc:
                drain_error = (
                    "error",
                    wire.error_payload(
                        wire.ERR_INVALID_REQUEST, f"{type(exc).__name__}: {exc}"
                    ),
                )
            except Exception as exc:
                drain_error = (
                    "error",
                    wire.error_payload(
                        wire.ERR_SERVER, f"{type(exc).__name__}: {exc}"
                    ),
                )
        for i, time_step, payload in admitted:
            if payload.get("wait") and drain_error is not None:
                responses[i] = drain_error
                continue
            responses[i] = (
                "upload_ok",
                {
                    "time": time_step,
                    "applied_through": self.server.last_time,
                    "queue_depth": self.server.pending_uploads,
                    "drained": drained if payload.get("wait") else True,
                },
            )

    def _handle_query(
        self, payload: dict, binary: bool = False, tenant: str | None = None
    ) -> tuple[str, dict]:
        try:
            query = wire.decode_query(payload["query"])
            time = payload.get("time")
            time = None if time is None else int(time)
            epsilon = payload.get("epsilon")
            epsilon = None if epsilon is None else float(epsilon)
            predicate_words = int(payload.get("predicate_words", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(f"malformed query frame: {exc!r}") from exc
        result = self.server.query(
            query,
            time=time,
            predicate_words=predicate_words,
            epsilon=epsilon,
            tenant=tenant,
        )
        return "result", wire.encode_result(result, binary=binary)

    def _handle_snapshot(self, payload: dict) -> tuple[str, dict]:
        info = self.server.snapshot(payload.get("path"))
        return "snapshot_ok", {
            "path": info.path,
            "bytes_written": info.bytes_written,
            "sha256": info.sha256,
            "created_at": info.created_at,
        }

    def _handle_reshard(self, payload: dict) -> tuple[str, dict]:
        n_shards = int(payload["n_shards"])
        self.server.reshard(n_shards)
        return "reshard_ok", {"n_shards": self.server.database.n_shards}


def _close_socket(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass
