"""The read-only operations listener: Prometheus metrics over HTTP.

A production deployment watches the serving fabric from *outside* the
wire protocol — a scraper must never compete with analysts for request
permits, speak the frame codec, or hold a tenant credential.  So the
metrics surface is its own tiny HTTP listener (:class:`MetricsServer`,
``--metrics-port``) exposing two GET endpoints:

* ``/metrics`` — the `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (version 0.0.4): the runtime's :class:`~repro.server.runtime.
  ServingStats` gauges, the global and per-tenant privacy-ledger state,
  per-tenant quota gauges and rejection counters, the PR 8 incremental
  accumulator-cache counters, and the PR 9 shard-worker fleet gauges;
* ``/healthz`` — ``ok`` (200) while the ingest loop is healthy, a
  one-line description of the deferred failure (503) once it poisons.

Rendering is split out as :func:`render_metrics` over plain dicts so
tests exercise the exposition format without sockets.  The listener is
**read-only by construction**: it answers GET (anything else is 405),
mutates nothing, and authenticates nobody — bind it to a loopback or
otherwise-trusted interface; per-tenant ε *totals* are operational data
but still name your tenants.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Content-Type of the text exposition format, version 0.0.4.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``ServingStats.to_dict()`` scalars exported 1:1 (name, help).
_STAT_SCALARS = (
    ("uploads", "Upload steps applied by the ingestion loop"),
    ("steps", "Engine steps executed"),
    ("queries", "Queries served"),
    ("ingest_seconds", "Total seconds spent applying uploads"),
    ("query_seconds", "Total seconds spent executing queries"),
    ("snapshots", "Snapshots written"),
    ("last_snapshot_seconds", "Duration of the most recent snapshot"),
    ("last_snapshot_bytes", "Size of the most recent snapshot"),
    ("queue_depth", "Submitted-but-unapplied steps in the ingest queue"),
    ("queue_capacity", "Bound of the ingest queue"),
    ("query_epsilon", "Total epsilon spent by noisy query releases"),
    ("plan_cache_hit_rate", "Fraction of planner calls served from cache"),
)


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _number(value: object) -> str:
    """One sample value in exposition syntax (bools are 0/1)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    try:
        f = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "0"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class _Lines:
    """Accumulates samples, emitting each # HELP/# TYPE header once."""

    def __init__(self) -> None:
        self._out: list[str] = []
        self._declared: set[str] = set()

    def sample(
        self,
        name: str,
        value: object,
        help_text: str,
        labels: dict | None = None,
        kind: str = "gauge",
    ) -> None:
        if name not in self._declared:
            self._declared.add(name)
            self._out.append(f"# HELP {name} {help_text}")
            self._out.append(f"# TYPE {name} {kind}")
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
            )
            self._out.append(f"{name}{{{rendered}}} {_number(value)}")
        else:
            self._out.append(f"{name} {_number(value)}")

    def text(self) -> str:
        return "\n".join(self._out) + "\n"


def render_metrics(observability: dict, tenants: dict | None = None) -> str:
    """Render one scrape from the runtime's observability payload.

    ``observability`` is :meth:`~repro.server.runtime.DatabaseServer.
    observability`'s dict; ``tenants`` is :meth:`~repro.net.server.
    NetworkServer.tenancy_stats`'s (per-tenant gauges merged with the
    ledger summary).  Pure function of its inputs.
    """
    lines = _Lines()
    prefix = "incshrink_"
    for key, help_text in _STAT_SCALARS:
        if key in observability:
            lines.sample(prefix + key, observability[key], help_text)
    for key, help_text in (
        ("last_time", "Applied stream watermark (step number)"),
        ("n_shards", "Shards per materialized view"),
        ("realized_epsilon", "Composed end-to-end epsilon (Theorem 3)"),
    ):
        if key in observability:
            lines.sample(prefix + key, observability[key], help_text)
    lines.sample(
        prefix + "ingest_healthy",
        observability.get("ingest_error") is None,
        "1 while the background ingestion loop is healthy",
    )
    for name, rows in (observability.get("shard_rows") or {}).items():
        for shard, n_rows in enumerate(rows):
            lines.sample(
                prefix + "view_shard_rows",
                n_rows,
                "Rows per view shard",
                labels={"view": name, "shard": shard},
            )
    for key, value in (observability.get("incremental_cache") or {}).items():
        if isinstance(value, (int, float, bool)):
            lines.sample(
                prefix + "accumulator_cache_" + str(key),
                value,
                "Incremental accumulator-cache counter",
            )
    for worker, gauges in (observability.get("workers") or {}).items():
        for key, value in gauges.items():
            if isinstance(value, (int, float, bool)):
                lines.sample(
                    prefix + "worker_" + str(key),
                    value,
                    "Remote shard-worker gauge",
                    labels={"worker": worker},
                )
    for tid, entry in (tenants or {}).items():
        labels = {"tenant": tid}
        role = entry.get("role")
        if role is not None:
            labels["role"] = role
        for key, help_text in (
            ("epsilon_spent", "Epsilon spent from this tenant's ledger"),
            ("epsilon_budget", "This tenant's ledger cap"),
            ("epsilon_remaining", "Headroom left in this tenant's ledger"),
        ):
            value = entry.get(key)
            if value is not None:
                lines.sample(
                    prefix + "tenant_" + key, value, help_text, labels=labels
                )
        for key, help_text in (
            ("connections", "Open connections held by this tenant"),
            ("inflight", "Requests of this tenant executing right now"),
        ):
            if key in entry:
                lines.sample(
                    prefix + "tenant_" + key,
                    entry[key],
                    help_text,
                    labels=labels,
                )
        for reason, count in (entry.get("rejections") or {}).items():
            lines.sample(
                prefix + "tenant_rejections_total",
                count,
                "Structured quota/role rejections answered to this tenant",
                labels={**labels, "reason": reason},
                kind="counter",
            )
    return lines.text()


class MetricsServer:
    """Serve ``/metrics`` and ``/healthz`` for one network front door.

    Wraps a :class:`http.server.ThreadingHTTPServer` on its own daemon
    thread; scrapes read the runtime's observability surface under its
    read lock, so a scrape is as cheap as a ``stats`` frame and never
    holds an in-flight permit.
    """

    def __init__(
        self, net, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.net = net
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            # Scrapers poll; the default stderr access log is noise.
            def log_message(self, fmt: str, *args: object) -> None:
                pass

            def _respond(
                self, status: int, body: str, content_type: str
            ) -> None:
                payload = body.encode("utf8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    if self.path.split("?", 1)[0] == "/metrics":
                        body = render_metrics(
                            outer.net.server.observability(),
                            outer.net.tenancy_stats(),
                        )
                        self._respond(200, body, METRICS_CONTENT_TYPE)
                    elif self.path.split("?", 1)[0] == "/healthz":
                        error = outer.net.server.ingest_error
                        if error is None:
                            self._respond(200, "ok\n", "text/plain")
                        else:
                            self._respond(
                                503, f"ingest halted: {error}\n", "text/plain"
                            )
                    else:
                        self._respond(404, "not found\n", "text/plain")
                except BrokenPipeError:
                    pass  # scraper hung up mid-response
                except Exception as exc:
                    # A scrape must never crash the listener thread.
                    try:
                        self._respond(500, f"{exc}\n", "text/plain")
                    except OSError:
                        pass

            def do_POST(self) -> None:  # noqa: N802
                self._respond(405, "read-only listener\n", "text/plain")

            do_PUT = do_DELETE = do_PATCH = do_POST  # noqa: N815

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemera)."""
        addr = self._httpd.server_address
        return addr[0], addr[1]

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="incshrink-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
