"""Multi-server deployment (paper Section 8, "Expanding to multiple
servers").

The prototype uses two non-colluding servers; the paper sketches the
N ≥ 2 generalisation:

* owners share data with the (N, N) XOR scheme, one share per server;
* all outsourced objects (cache, view, counters, thresholds) are stored
  as N-way shares;
* Transform/Shrink compile to N-party protocols;
* joint noise draws one uniform contribution *per server* and XORs all
  of them — still exactly **one** Laplace instance, so widening the
  server set adds no extra noise — and the design tolerates up to N−1
  corruptions [51, 52].

This module provides the N-party primitives (:class:`ServerGroup`) and a
protocol scope mirroring the two-party runtime.  It exists to validate
the extension's security-relevant properties (share confidentiality up
to N−1 servers, single-noise-instance claim) and to let examples and
benches exercise an N-server IncShrink data path; the full engine keeps
the paper's two-server default.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..common.errors import ProtocolError, SecurityError
from ..common.rng import spawn
from ..common.types import Schema
from ..sharing.xor_sharing import recover_array_k, share_array_k
from .cost_model import DEFAULT_COST_MODEL, CostModel
from .joint_noise import laplace_from_u32
from .transcript import Transcript


@dataclass
class NShare:
    """An N-way shared array: ``shares[i]`` lives on server i."""

    shares: list[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.shares) < 2:
            raise ProtocolError("an N-share needs at least two shares")
        shape = self.shares[0].shape
        if any(s.shape != shape for s in self.shares):
            raise ProtocolError("all shares must have identical shapes")

    @property
    def n_servers(self) -> int:
        return len(self.shares)

    def __len__(self) -> int:
        return len(self.shares[0])


@dataclass
class NSharedTable:
    """An N-way shared relation (rows + reality flags)."""

    schema: Schema
    rows: NShare
    flags: NShare

    def __len__(self) -> int:
        return len(self.rows)


class NPartyContext:
    """Protocol scope for an N-server group (mirrors ProtocolContext)."""

    def __init__(self, group: "ServerGroup", name: str, time: int) -> None:
        self._group = group
        self.name = name
        self.time = time
        self.gates = 0
        self._open = True

    def _require_open(self) -> None:
        if not self._open:
            raise SecurityError(f"protocol scope {self.name!r} already closed")

    def reveal(self, shared: NShare) -> np.ndarray:
        self._require_open()
        if shared.n_servers != self._group.n_servers:
            raise ProtocolError(
                f"share count {shared.n_servers} does not match group size "
                f"{self._group.n_servers}"
            )
        return recover_array_k(shared.shares)

    def reveal_table(self, table: NSharedTable) -> tuple[np.ndarray, np.ndarray]:
        rows = self.reveal(table.rows)
        flags = self.reveal(table.flags).astype(bool)
        return rows, flags

    def share(self, values: np.ndarray) -> NShare:
        """Re-share plaintext with fresh randomness from every server.

        The mask of each non-final share comes from XOR-ing one
        contribution per server (Appendix A.2's k-party construction):
        uniform as long as any single server is honest.
        """
        self._require_open()
        values = np.asarray(values, dtype=np.uint32)
        n = self._group.n_servers
        shares: list[np.ndarray] = []
        acc = values.copy()
        for i in range(n - 1):
            mask = np.zeros(values.shape, dtype=np.uint32)
            for server_gen in self._group.gens:
                mask ^= (
                    server_gen.integers(0, 1 << 32, size=values.size, dtype=np.uint32)
                    .reshape(values.shape)
                )
            shares.append(mask)
            acc ^= mask
        shares.append(acc)
        return NShare(shares)

    def share_table(
        self, schema: Schema, rows: np.ndarray, flags: np.ndarray
    ) -> NSharedTable:
        rows = np.asarray(rows, dtype=np.uint32).reshape(-1, schema.width)
        return NSharedTable(
            schema,
            self.share(rows),
            self.share(np.asarray(flags, dtype=np.uint32)),
        )

    def joint_laplace(self, sensitivity: float, epsilon: float) -> float:
        """One Laplace draw from N contributions (still one instance)."""
        self._require_open()
        if epsilon <= 0 or sensitivity <= 0:
            raise ValueError("sensitivity and epsilon must be positive")
        z = np.uint32(0)
        for gen in self._group.gens:
            z ^= gen.integers(0, 1 << 32, dtype=np.uint32)
        self.charge_gates(self._group.cost_model.laplace_gates)
        return laplace_from_u32(z, sensitivity / epsilon)

    def charge_gates(self, gates: int | float) -> None:
        self._require_open()
        self.gates += int(gates)

    @property
    def seconds(self) -> float:
        return self._group.cost_model.seconds(self.gates)

    def publish(self, kind: str, **payload: object) -> None:
        self._group.transcript.publish(self.time, self.name, kind, **payload)


class ServerGroup:
    """N non-colluding servers plus the shared protocol machinery."""

    def __init__(
        self, n_servers: int, seed: int = 0, cost_model: CostModel | None = None
    ) -> None:
        if n_servers < 2:
            raise ProtocolError(f"need at least 2 servers, got {n_servers}")
        self.n_servers = n_servers
        self.gens = [spawn(seed, "nserver", i) for i in range(n_servers)]
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.transcript = Transcript()
        self.owner_gen = spawn(seed, "nowner")
        self._active: NPartyContext | None = None

    @contextmanager
    def protocol(self, name: str, time: int = 0) -> Iterator[NPartyContext]:
        if self._active is not None:
            raise ProtocolError("N-party protocols do not nest")
        ctx = NPartyContext(self, name, time)
        self._active = ctx
        try:
            yield ctx
        finally:
            ctx._open = False
            self._active = None

    def owner_share_table(
        self, schema: Schema, rows: np.ndarray, flags: np.ndarray
    ) -> NSharedTable:
        """Owner-side (N, N) sharing of an upload batch."""
        rows = np.asarray(rows, dtype=np.uint32).reshape(-1, schema.width)
        return NSharedTable(
            schema,
            NShare(share_array_k(rows, self.n_servers, self.owner_gen)),
            NShare(
                share_array_k(
                    np.asarray(flags, dtype=np.uint32), self.n_servers, self.owner_gen
                )
            ),
        )

    def corruption_view(self, shared: NShare, corrupted: list[int]) -> np.ndarray:
        """XOR of the shares a coalition of ``corrupted`` servers holds.

        For any strict subset this is a uniformly masked array carrying
        no information — the property the N−1 corruption tolerance rests
        on, and what the tests check.
        """
        if len(set(corrupted)) >= shared.n_servers:
            raise SecurityError(
                "corrupting every server defeats any secret-sharing scheme"
            )
        acc = np.zeros(shared.shares[0].shape, dtype=np.uint32)
        for i in corrupted:
            acc ^= shared.shares[i]
        return acc
