"""Simulated two-party secure computation runtime.

This module stands in for the EMP-Toolkit deployment of the paper.  The
simulation is faithful in the three ways that matter for reproducing the
evaluation:

1. **Data flow** — servers only ever hold XOR shares.  Plaintext exists
   exclusively inside a *protocol scope* (the analogue of a garbled
   circuit evaluation): :meth:`ProtocolContext.reveal` recombines shares,
   and calling it outside a scope raises
   :class:`~repro.common.errors.SecurityError`.

2. **Obliviousness** — everything executed inside a scope uses
   data-independent algorithms (sorting networks, exhaustively padded
   scans) whose operation sequence depends only on public sizes, so the
   simulated access pattern equals the real one.

3. **Cost** — every oblivious operation charges its exact gate count to a
   :class:`~repro.mpc.cost_model.CostModel`; protocol runtimes reported by
   experiments are ``gates / throughput`` seconds.

Each :class:`Server` owns an independent RNG used for its randomness
contributions (joint noise, in-MPC resharing), mirroring the paper's
requirement that no single party controls protocol randomness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..common.errors import ProtocolError, SecurityError
from ..common.rng import spawn
from ..common.types import Schema
from ..sharing.shared_value import SharedArray, SharedTable
from ..sharing.xor_sharing import reshare_from_contributions
from .cost_model import DEFAULT_COST_MODEL, CostModel
from .transcript import Transcript


@dataclass
class Server:
    """One of the two non-colluding outsourcing servers.

    Holds only an identifier and a private randomness source.  Shares
    themselves live in :class:`~repro.sharing.shared_value.SharedArray`
    pairs; slot 0 of every pair belongs to server 0 and slot 1 to
    server 1.
    """

    server_id: int
    gen: np.random.Generator

    def contribute_u32(self, n: int = 1) -> np.ndarray:
        """Fresh uniform ring elements for a joint-randomness protocol."""
        return self.gen.integers(0, 1 << 32, size=n, dtype=np.uint32)


@dataclass
class ProtocolRun:
    """Bookkeeping for one completed protocol invocation."""

    name: str
    time: int
    gates: int
    seconds: float


class ProtocolContext:
    """Handle available while a secure protocol is executing.

    Created by :meth:`MPCRuntime.protocol`; all reveal/share/charge
    operations of oblivious operators go through this object.
    """

    def __init__(
        self,
        runtime: "MPCRuntime",
        name: str,
        time: int,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self._runtime = runtime
        self.name = name
        self.time = time
        #: ``(shard_index, n_shards)`` when this context evaluates one
        #: shard of a parallel protocol; None for whole-state protocols.
        self.shard = shard
        self.gates = 0
        self._open = True

    # -- lifecycle --------------------------------------------------------
    def _close(self) -> None:
        self._open = False

    def _describe(self) -> str:
        if self.shard is None:
            return f"protocol scope {self.name!r}"
        index, total = self.shard
        return f"protocol scope {self.name!r} (shard {index + 1}/{total})"

    def _require_open(self, operation: str = "plaintext operation") -> None:
        if not self._open:
            raise SecurityError(
                f"{operation} on {self._describe()} rejected: the scope is "
                "already closed, and plaintext operations are permitted "
                "only while the protocol is executing"
            )

    def _require_unsharded(self, operation: str) -> None:
        """Randomness-consuming operations are whole-state only.

        Shard contexts of a parallel protocol run on worker threads;
        letting them draw from the servers' RNG streams would interleave
        ``contribute_u32`` calls nondeterministically across threads and
        silently break the byte-identical-restore guarantee.  Fail loudly
        instead.
        """
        if self.shard is not None:
            raise ProtocolError(
                f"{operation} on {self._describe()} rejected: shard "
                "contexts are reveal/charge surfaces only — "
                "randomness-consuming operations must run in a "
                "whole-state protocol scope so the servers' RNG streams "
                "stay deterministic"
            )

    # -- plaintext boundary -------------------------------------------------
    def reveal(self, shared: SharedArray) -> np.ndarray:
        """Recombine shares inside the protocol (never leaves the scope)."""
        self._require_open("reveal")
        return shared._recover()

    def reveal_table(self, table: SharedTable) -> tuple[np.ndarray, np.ndarray]:
        """Recombine a shared table into ``(rows, flag_bits)``."""
        self._require_open("reveal_table")
        rows = table.rows._recover()
        flags = table.flags._recover().astype(bool)
        return rows, flags

    def share_array(self, values: np.ndarray) -> SharedArray:
        """Re-share protocol-internal plaintext using joint randomness.

        The mask is derived from fresh contributions of *both* servers
        (Section 5.1), so neither can predict the resulting shares.
        """
        self._require_open("share_array")
        self._require_unsharded("share_array")
        values = np.asarray(values, dtype=np.uint32)
        z0 = self._runtime.server0.contribute_u32(values.size).reshape(values.shape)
        z1 = self._runtime.server1.contribute_u32(values.size).reshape(values.shape)
        s0, s1 = reshare_from_contributions(values, z0, z1)
        return SharedArray(s0, s1)

    def share_table(
        self, schema: Schema, rows: np.ndarray, flags: np.ndarray
    ) -> SharedTable:
        self._require_open("share_table")
        self._require_unsharded("share_table")
        rows = np.asarray(rows, dtype=np.uint32)
        if rows.ndim != 2:
            rows = rows.reshape(-1, schema.width)
        return SharedTable(
            schema,
            self.share_array(rows),
            self.share_array(np.asarray(flags, dtype=np.uint32)),
        )

    def joint_uniform_u32(self, n: int = 1) -> np.ndarray:
        """XOR of one fresh uniform contribution from each server.

        This is the randomness source of the joint noise protocol: uniform
        as long as at least one server samples honestly.
        """
        self._require_open("joint_uniform_u32")
        self._require_unsharded("joint_uniform_u32")
        z0 = self._runtime.server0.contribute_u32(n)
        z1 = self._runtime.server1.contribute_u32(n)
        return z0 ^ z1

    # -- cost accounting --------------------------------------------------
    @property
    def cost_model(self) -> CostModel:
        return self._runtime.cost_model

    def charge_gates(self, gates: int | float) -> None:
        self._require_open("charge_gates")
        self.gates += int(gates)

    def charge_compare_exchanges(self, count: int, payload_words: int) -> None:
        self.charge_gates(count * self.cost_model.compare_exchange_gates(payload_words))

    def charge_scan(self, n_rows: int, payload_words: int, predicate_words: int = 1) -> None:
        self.charge_gates(
            n_rows * self.cost_model.scan_row_gates(payload_words, predicate_words)
        )

    def charge_join_probes(self, count: int, payload_words: int) -> None:
        self.charge_gates(count * self.cost_model.join_probe_gates(payload_words))

    def charge_laplace(self) -> None:
        self.charge_gates(self.cost_model.laplace_gates)

    def charge_counter_update(self) -> None:
        self.charge_gates(self.cost_model.counter_update_gates())

    @property
    def seconds(self) -> float:
        """Simulated seconds consumed by this invocation so far."""
        return self.cost_model.seconds(self.gates)

    # -- public outputs ----------------------------------------------------
    def publish(self, kind: str, **payload: object) -> None:
        """Record an adversary-observable output of this protocol.

        Anything passed here is *leakage*: tests assert it is limited to
        public parameters and DP-protected quantities.
        """
        self._runtime.transcript.publish(self.time, self.name, kind, **payload)


class WorkerShardContext:
    """Charge-only context for shard scans running in worker *processes*.

    Out-of-process shard workers (:mod:`repro.query.shard_workers`) hold
    no reference to the coordinator's :class:`MPCRuntime`: they recover
    shares from shared memory themselves and only need the charge
    surface of a :class:`ProtocolContext` — a local gate counter plus
    the (picklable, frozen) :class:`~repro.mpc.cost_model.CostModel`.
    The worker returns its gate total and the coordinator replays it
    onto the real shard context with :meth:`ProtocolContext.charge_gates`,
    so the merged :class:`ProtocolRun` is byte-identical to the
    in-process backends.  Like shard contexts, this exposes **no**
    randomness or resharing operations: worker scans are pure
    reveal/charge computations.
    """

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.gates = 0

    def charge_gates(self, gates: int | float) -> None:
        self.gates += int(gates)

    def charge_compare_exchanges(self, count: int, payload_words: int) -> None:
        self.charge_gates(count * self.cost_model.compare_exchange_gates(payload_words))

    def charge_scan(self, n_rows: int, payload_words: int, predicate_words: int = 1) -> None:
        self.charge_gates(
            n_rows * self.cost_model.scan_row_gates(payload_words, predicate_words)
        )

    def charge_join_probes(self, count: int, payload_words: int) -> None:
        self.charge_gates(count * self.cost_model.join_probe_gates(payload_words))

    @property
    def seconds(self) -> float:
        return self.cost_model.seconds(self.gates)


class ParallelProtocolGroup:
    """One protocol invocation fanned out over per-shard contexts.

    Created by :meth:`MPCRuntime.parallel_protocol`.  Each shard scan
    runs against its own :class:`ProtocolContext` — an independent gate
    counter, safe to drive from a worker thread — while the group as a
    whole still occupies the runtime's single protocol slot (shard scans
    of *one* query overlap; distinct protocols still never nest).  On
    exit the group logs **one** :class:`ProtocolRun` whose gate total is
    the sum over shards — byte-identical to the unsharded charge — and
    whose seconds are the cost model's parallelism-aware wall-clock
    estimate :meth:`~repro.mpc.cost_model.CostModel.parallel_seconds`.

    Shard contexts are reveal/charge surfaces only: they own no
    randomness, so concurrent shard scans cannot perturb (or race on)
    the servers' deterministic RNG streams.
    """

    def __init__(
        self, runtime: "MPCRuntime", name: str, time: int, n_shards: int
    ) -> None:
        if n_shards < 1:
            raise ProtocolError(f"n_shards must be >= 1, got {n_shards}")
        self.name = name
        self.time = time
        self.contexts = [
            ProtocolContext(runtime, name, time, shard=(i, n_shards))
            for i in range(n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return len(self.contexts)

    @property
    def gates(self) -> int:
        """Total gates charged across every shard context so far."""
        return sum(ctx.gates for ctx in self.contexts)

    def seconds(self, cost_model: CostModel) -> float:
        return cost_model.parallel_seconds(self.gates, self.n_shards)

    def _close(self) -> None:
        for ctx in self.contexts:
            ctx._close()


class MPCRuntime:
    """Owns the two servers, the transcript, and the protocol ledger."""

    def __init__(
        self,
        seed: int = 0,
        cost_model: CostModel | None = None,
    ) -> None:
        self.server0 = Server(0, spawn(seed, "server", 0))
        self.server1 = Server(1, spawn(seed, "server", 1))
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.transcript = Transcript()
        self.runs: list[ProtocolRun] = []
        self._active: ProtocolContext | ParallelProtocolGroup | None = None
        #: generator for owner-side sharing (outside any protocol scope)
        self.owner_gen = spawn(seed, "owner-sharing")

    @contextmanager
    def protocol(self, name: str, time: int = 0) -> Iterator[ProtocolContext]:
        """Open a protocol scope; on exit the invocation is logged.

        Nesting is rejected: the paper's Transform and Shrink are compiled
        as independent circuits and never call into one another.
        """
        if self._active is not None:
            raise ProtocolError(
                f"protocol {self._active.name!r} is already executing; "
                "protocols are independent circuits and do not nest"
            )
        ctx = ProtocolContext(self, name, time)
        self._active = ctx
        try:
            yield ctx
        finally:
            ctx._close()
            self._active = None
            self.runs.append(ProtocolRun(name, time, ctx.gates, ctx.seconds))

    @contextmanager
    def parallel_protocol(
        self, name: str, time: int = 0, n_shards: int = 1
    ) -> Iterator[ParallelProtocolGroup]:
        """Open one protocol as a group of per-shard contexts.

        The group occupies the same single protocol slot as
        :meth:`protocol` — a parallel scan is still *one* circuit
        invocation from the deployment's point of view; only its shard
        lanes overlap — and logs one merged :class:`ProtocolRun` on exit
        (total gates summed over shards, seconds from
        :meth:`~repro.mpc.cost_model.CostModel.parallel_seconds`).
        """
        if self._active is not None:
            raise ProtocolError(
                f"protocol {self._active.name!r} is already executing; "
                "protocols are independent circuits and do not nest"
            )
        group = ParallelProtocolGroup(self, name, time, n_shards)
        self._active = group
        try:
            yield group
        finally:
            group._close()
            self._active = None
            self.runs.append(
                ProtocolRun(name, time, group.gates, group.seconds(self.cost_model))
            )

    # -- convenience for owners (outside protocol scopes) -------------------
    def owner_share_table(
        self, schema: Schema, rows: np.ndarray, flags: np.ndarray
    ) -> SharedTable:
        """Owner-side secret sharing of an upload batch.

        Owners run locally and are trusted with their own data, so this
        does not require a protocol scope.
        """
        return SharedTable.from_plain(schema, rows, flags, self.owner_gen)

    # -- introspection ------------------------------------------------------
    def seconds_of(self, protocol_name: str) -> list[float]:
        return [r.seconds for r in self.runs if r.name == protocol_name]

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.runs)
