"""Joint Laplace noise generation inside MPC (Algorithm 2, lines 4-6).

Neither server may learn or control the DP noise that resizes cache
fetches — otherwise it could subtract the noise from the published size
and recover the true cardinality.  Following the paper (which adapts the
distributed noise generation idea of Dwork et al. [29]):

1. each server contributes a uniform 32-bit value ``z_i``;
2. the protocol computes ``z = z0 ⊕ z1`` internally (uniform if at least
   one contribution is honest);
3. the low 31 bits become a fixed-point ``r ∈ (0, 1)`` and the most
   significant bit the sign, giving ``noise = sign · (Δ/ε) · (-ln r)``,
   i.e. a sample of ``Lap(Δ/ε)``.

The paper's notation ``JointNoise(S0, S1, Δ, ε, x)`` returning
``x + Lap(Δ/ε)`` maps to :func:`joint_noise` here.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.rng import RING_BITS
from .runtime import ProtocolContext

_SIGN_BIT = np.uint32(1 << (RING_BITS - 1))
_MAG_MASK = np.uint32((1 << (RING_BITS - 1)) - 1)
_MAG_DENOM = float(1 << (RING_BITS - 1))


def laplace_from_u32(z: int | np.uint32, scale: float) -> float:
    """Deterministically map one uniform 32-bit word to a Lap(scale) draw.

    Magnitude uses the low 31 bits through the inverse CDF of the
    exponential distribution; the sign uses the most significant bit, as
    in Algorithm 2 line 6 (``sign(msb(z))``).  Exposed separately so tests
    can check the mapping without a runtime.
    """
    z = np.uint32(z)
    r = (float(z & _MAG_MASK) + 0.5) / _MAG_DENOM  # r ∈ (0, 1)
    sign = -1.0 if (z & _SIGN_BIT) else 1.0
    return sign * scale * (-math.log(r))


def joint_laplace(ctx: ProtocolContext, sensitivity: float, epsilon: float) -> float:
    """Sample ``Lap(sensitivity / epsilon)`` from joint server randomness.

    Charges the fixed-point logarithm circuit to the cost model.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    z = int(ctx.joint_uniform_u32(1)[0])
    ctx.charge_laplace()
    return laplace_from_u32(z, sensitivity / epsilon)


def joint_noise(
    ctx: ProtocolContext, sensitivity: float, epsilon: float, value: float
) -> float:
    """The paper's ``JointNoise``: ``value + Lap(sensitivity/epsilon)``."""
    return float(value) + joint_laplace(ctx, sensitivity, epsilon)
