"""Simulated two-party MPC: runtime, cost model, transcript, joint noise."""

from .cost_model import DEFAULT_COST_MODEL, CostModel
from .joint_noise import joint_laplace, joint_noise, laplace_from_u32
from .multiparty import NShare, NSharedTable, ServerGroup
from .runtime import MPCRuntime, ProtocolContext, ProtocolRun, Server
from .transcript import Transcript, TranscriptEvent

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "joint_laplace",
    "joint_noise",
    "laplace_from_u32",
    "NShare",
    "NSharedTable",
    "ServerGroup",
    "MPCRuntime",
    "ProtocolContext",
    "ProtocolRun",
    "Server",
    "Transcript",
    "TranscriptEvent",
]
