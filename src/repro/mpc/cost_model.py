"""Gate-level cost model for the simulated two-party computation.

The paper's prototype compiles Transform/Shrink to garbled circuits with
EMP-Toolkit; execution time there is dominated by the number of non-free
(AND) gates evaluated, which in turn is dominated by oblivious sorting
networks and padded linear scans.  We charge every oblivious operation
its asymptotically exact gate count and convert gates to *simulated
seconds* through a single throughput constant.

The default throughput (5 million AND gates/second) is in the range
reported for semi-honest EMP on commodity LAN setups and was chosen so
that a full paper-scale run (daily TPC-ds batches of ~1.2k rows over five
years) lands near the paper's reported Transform time (~10 s/invocation).
Because every candidate system is priced by the same model, the
*ratios* the evaluation section reports (NM vs EP vs DP) are insensitive
to the constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.rng import RING_BITS


@dataclass(frozen=True)
class CostModel:
    """Converts oblivious-operation counts into gates and seconds.

    Parameters
    ----------
    gates_per_second:
        Simulated AND-gate throughput of the 2PC engine.
    compare_gates_per_bit:
        AND gates to compare two ring words, per bit (a standard
        less-than circuit uses ~1 AND/bit; we budget 2 to cover the
        equality logic fused into compare-exchange).
    mux_gates_per_bit:
        AND gates to conditionally swap one bit (one AND per output bit).
    laplace_gates:
        Fixed circuit size of the joint noise sampler: fixed-point ``ln``
        plus sign handling.  A constant because input size is constant.
    max_parallel_workers:
        Simulated evaluator lanes the deployment can run concurrently —
        the cap on how many shard scans overlap.  A sharded query's
        wall-clock estimate divides the serial time by
        :meth:`effective_workers`; shard counts beyond the cap still
        split the data but no longer shorten the critical path.
    """

    gates_per_second: float = 5.0e6
    compare_gates_per_bit: int = 2
    mux_gates_per_bit: int = 1
    laplace_gates: int = 20_000
    max_parallel_workers: int = 8

    # -- primitive costs -------------------------------------------------
    def compare_exchange_gates(self, payload_words: int, key_words: int = 1) -> int:
        """Gates for one compare-exchange on tuples of ``payload_words``.

        A compare-exchange comprises a key comparison plus a conditional
        swap of both full tuples (2 × payload bits of muxing).
        """
        cmp_g = key_words * RING_BITS * self.compare_gates_per_bit
        mux_g = 2 * payload_words * RING_BITS * self.mux_gates_per_bit
        return cmp_g + mux_g

    def scan_row_gates(self, payload_words: int, predicate_words: int = 1) -> int:
        """Gates to evaluate one row of a padded oblivious scan.

        Covers predicate evaluation over ``predicate_words`` columns, the
        isView conjunction, and a ripple-carry accumulate.
        """
        pred_g = predicate_words * RING_BITS * self.compare_gates_per_bit
        flag_g = RING_BITS * self.mux_gates_per_bit
        acc_g = RING_BITS  # 32-bit adder
        return pred_g + flag_g + acc_g

    def join_probe_gates(self, payload_words: int) -> int:
        """Gates to test one candidate pair in a join scan and emit a row."""
        eq_g = RING_BITS * self.compare_gates_per_bit  # key equality
        filt_g = RING_BITS * self.compare_gates_per_bit  # temporal predicate
        emit_g = payload_words * RING_BITS * self.mux_gates_per_bit
        return eq_g + filt_g + emit_g

    def counter_update_gates(self) -> int:
        """Gates to recover, increment, and re-share the cardinality counter."""
        return 4 * RING_BITS

    def predicate_eval_gates(self, n_clauses: int) -> int:
        """Gates to evaluate ``n_clauses`` residual interval clauses once.

        One ring-word comparison per clause — the same per-word charge
        the padded scan's ``predicate_words`` term and the join probe's
        temporal predicate use, so residual predicates cost the same
        wherever they are evaluated (view scan row or NM join pair).
        """
        return n_clauses * RING_BITS * self.compare_gates_per_bit

    def aggregate_slot_gates(
        self,
        need_count: bool,
        n_sum_columns: int,
        n_groups: int = 1,
        grouped: bool = False,
    ) -> int:
        """Extra per-row gates of a multi-aggregate scan beyond the base touch.

        :meth:`scan_row_gates` already includes one 32-bit accumulator —
        the COUNT slot of the paper's original padded counting scan.  A
        unified scan computing several aggregates over several GROUP BY
        cells in one pass pays, per row, for everything beyond that:

        * one further 32-bit count accumulator per *additional* group
          (the first group's count rides on the base charge);
        * one 64-bit accumulator per distinct summed column per group
          (sums live in Z_{2^64}, exactly the :func:`repro.oblivious.
          filter.oblivious_sum` charge);
        * when grouping, one ring-word equality test per group cell to
          obliviously route the row into its accumulator set (the group
          key is secret, so every row is tested against every public
          domain value).

        COUNT, SUM and AVG aggregates of one query share these slots: AVG
        is SUM/COUNT over the same accumulators, and any number of COUNTs
        costs one slot — that sharing is where the single-scan
        multi-aggregate speedup comes from.
        """
        gates = 0
        if need_count and n_groups > 1:
            gates += (n_groups - 1) * RING_BITS
        gates += 64 * n_sum_columns * n_groups
        if grouped:
            gates += n_groups * RING_BITS * self.compare_gates_per_bit
        return gates

    # -- conversion --------------------------------------------------------
    def seconds(self, gates: int | float) -> float:
        """Simulated wall-clock seconds for ``gates`` AND gates."""
        return float(gates) / self.gates_per_second

    def effective_workers(self, n_shards: int) -> int:
        """Evaluator lanes a scan over ``n_shards`` shards actually uses."""
        return max(1, min(int(n_shards), self.max_parallel_workers))

    def parallel_seconds(self, gates: int | float, n_shards: int = 1) -> float:
        """Wall-clock estimate of ``gates`` spread over ``n_shards`` shards.

        ``gates / (throughput × effective_workers)``: the round-robin
        layout balances shard sizes to within one row, so the critical
        path is the serial time divided by the usable lanes.  One shard
        degenerates to :meth:`seconds` exactly — single-shard deployments
        price (and report) identically to the pre-sharding engine.
        """
        return self.seconds(gates) / self.effective_workers(n_shards)

    def incremental_seconds(
        self, suffix_gates: int | float, n_shards: int = 1
    ) -> float:
        """Wall-clock estimate of a warm (suffix-only) incremental scan.

        An incremental view scan charges gates only for the rows past
        each shard's cached watermark (:mod:`repro.query.incremental`),
        so its estimate is :meth:`parallel_seconds` over the *suffix*
        gates instead of the full view's.  A cold scan degenerates to
        the full estimate exactly (suffix = whole view), which is what
        keeps planner rankings consistent whether or not a cache entry
        exists.
        """
        return self.parallel_seconds(suffix_gates, n_shards)


#: Model used throughout unless an experiment overrides it.
DEFAULT_COST_MODEL = CostModel()
