"""The adversary-observable transcript of protocol executions.

Definition 4 (SIM-CDP) bounds what a semi-honest server learns by the
output of a DP mechanism over the update pattern.  To make that claim
*checkable* in this reproduction, every piece of information a protocol
makes public — array lengths, fetch sizes, invocation times — is recorded
as a :class:`TranscriptEvent`.  Tests then assert, for example, that the
only data-dependent quantity the Shrink protocols ever publish is the
DP-noised cardinality, never the true counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TranscriptEvent:
    """One public observation: when, which protocol, what was revealed."""

    time: int
    protocol: str
    kind: str
    payload: dict[str, Any]


@dataclass
class Transcript:
    """Append-only log of everything the untrusted servers observe."""

    events: list[TranscriptEvent] = field(default_factory=list)

    def publish(self, time: int, protocol: str, kind: str, **payload: Any) -> None:
        self.events.append(TranscriptEvent(time, protocol, kind, dict(payload)))

    def of_kind(self, kind: str) -> list[TranscriptEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_protocol(self, protocol: str) -> list[TranscriptEvent]:
        return [e for e in self.events if e.protocol == protocol]

    def __iter__(self) -> Iterator[TranscriptEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
