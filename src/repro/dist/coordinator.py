"""The scan coordinator: replicated shard sync, scatter, and failover.

:class:`RemoteScanBackend` is the ``backend="remote"`` implementation
behind :class:`~repro.query.parallel.ParallelScanExecutor`.  Per query
it does three things, in order:

1. **Sync.**  Every shard of the scanned view is brought current on
   every replica that hosts it.  The discipline is exactly the per-shard
   watermark machinery of :mod:`repro.query.incremental`, lifted onto
   the wire: within one ``append_epoch`` a shard's row sequence is a
   strict prefix of its later self, so the coordinator streams only the
   suffix past each worker's watermark (``shard_append``); an epoch
   change (reshard, restore) or a worker reconnect voids the watermark
   and re-bootstraps with ``shard_assign`` (share halves in the v2
   snapshot array encoding).  Replicas are synced *before* the scatter,
   so failover always lands on a warm replica.
2. **Scatter.**  Each delta-bearing shard's suffix-scan task goes to the
   first live, synced replica in its placement ring; tasks sharing a
   worker batch into one ``scan`` frame carrying the plan scalars and
   the coordinator's exact :class:`~repro.mpc.cost_model.CostModel`.
   Workers run :func:`repro.query.shard_workers.scan_share_suffix` —
   the same kernel as the in-process backends — so every partial
   accumulator and gate total is byte-identical by construction.
3. **Failover.**  A worker that dies mid-query (connection drop,
   timeout, SIGKILL) fails its whole batch; those tasks re-scatter to
   the next live synced replica and the per-worker re-scatter gauge
   increments.  Only when a shard has no live synced replica left does
   the query error.

Placement is the public ring ``shard i → workers (i + r) mod W`` for
``r < replication`` — a pure function of the public shard count and the
configured fleet, independent of any secret, so distribution leaks
nothing beyond the single-host transcript (``docs/SHARDING.md``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..common.errors import ConfigurationError, ProtocolError
from ..net import protocol as wire
from ..storage.materialized_view import MaterializedView
from .membership import MembershipTracker, WorkerEndpoint, WorkerLink
from .worker import SHARD_CHUNK_ROWS


def view_wire_key(view: MaterializedView) -> str:
    """The stable wire name of a view's shard container."""
    return f"v{view.container_uid}"


class RemoteScanBackend:
    """Scatter/merge client over a fleet of shard-worker daemons."""

    def __init__(
        self,
        endpoints: list[WorkerEndpoint],
        replication: int = 2,
        timeout: float = 30.0,
        heartbeat_interval: float = 1.0,
        token: str | None = None,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("remote backend needs >= 1 worker")
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        self.links = [
            WorkerLink(ep, timeout=timeout, token=token) for ep in endpoints
        ]
        #: effective factor — never more copies than workers
        self.replication = min(int(replication), len(self.links))
        self.total_rescatters = 0
        self._sync_lock = threading.Lock()
        #: per link: ``(view_key, shard) -> (generation, epoch, rows_sent)``
        self._sync: dict[WorkerLink, dict[tuple[str, int], tuple[int, int, int]]] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self.links)),
            thread_name_prefix="dist-scatter",
        )
        self._tracker = MembershipTracker(
            self.links,
            heartbeat_interval=heartbeat_interval,
            on_revive=self._on_revive,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "RemoteScanBackend":
        """Dial the fleet; requires at least one live worker."""
        if self._started:
            return self
        for link in self.links:
            try:
                link.connect()
            except (OSError, ConnectionError, ProtocolError, wire.WireError):
                pass  # the tracker keeps redialing
        if not any(link.alive for link in self.links):
            self.close()
            raise ProtocolError(
                "no shard worker reachable at "
                + ", ".join(l.endpoint.name for l in self.links)
            )
        self._tracker.start()
        self._started = True
        return self

    def close(self) -> None:
        self._tracker.stop()
        for link in self.links:
            if link.alive:
                try:
                    link.exchange("bye", {}, expect="bye")
                except (ConnectionError, wire.RemoteError):
                    pass
            link.disconnect()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "RemoteScanBackend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _on_revive(self, link: WorkerLink) -> None:
        # A reconnected daemon may have restarted and lost its shards;
        # dropping its watermarks forces a fresh v2-snapshot bootstrap.
        with self._sync_lock:
            self._sync.pop(link, None)
        link.assigned_shards = 0

    # -- observability -----------------------------------------------------
    def worker_stats(self) -> dict:
        """Per-worker gauges (the ``ServingStats.workers`` surface)."""
        return {link.endpoint.name: link.gauge_dict() for link in self.links}

    # -- placement ---------------------------------------------------------
    def replica_links(self, shard: int) -> list[WorkerLink]:
        """The placement ring of ``shard``: public, secret-independent."""
        n = len(self.links)
        return [self.links[(shard + r) % n] for r in range(self.replication)]

    # -- sync --------------------------------------------------------------
    def _sync_shard(
        self,
        link: WorkerLink,
        view_key: str,
        epoch: int,
        shard: int,
        table,
    ) -> None:
        """Bring one replica of one shard current (assign or append)."""
        n = len(table)
        key = (view_key, shard)
        with self._sync_lock:
            state = self._sync.get(link, {}).get(key)
        sent: int | None = None
        if (
            state is not None
            and state[0] == link.generation
            and state[1] == epoch
        ):
            sent = state[2]
        binary = link.codec == wire.CODEC_BINARY
        rows0, rows1 = table.rows.share0, table.rows.share1
        flags0, flags1 = table.flags.share0, table.flags.share1

        def chunk(frame: str, lo: int, hi: int) -> None:
            payload = {"view": view_key, "shard": shard, "epoch": epoch}
            if frame == "shard_append":
                payload["start"] = lo
            payload.update(
                wire.encode_shard_content(
                    rows0[lo:hi],
                    rows1[lo:hi],
                    flags0[lo:hi],
                    flags1[lo:hi],
                    binary=binary,
                )
            )
            link.exchange(frame, payload, expect="shard_ok")

        try:
            if sent is None:
                end = min(n, SHARD_CHUNK_ROWS)
                chunk("shard_assign", 0, end)
                sent = end
            while sent < n:
                end = min(n, sent + SHARD_CHUNK_ROWS)
                chunk("shard_append", sent, end)
                sent = end
        except wire.RemoteError:
            # The worker refused (e.g. an append gap after a half-lost
            # sync): void the watermark and re-bootstrap once.
            with self._sync_lock:
                self._sync.get(link, {}).pop(key, None)
            end = min(n, SHARD_CHUNK_ROWS)
            chunk("shard_assign", 0, end)
            sent = end
            while sent < n:
                end = min(n, sent + SHARD_CHUNK_ROWS)
                chunk("shard_append", sent, end)
                sent = end
        with self._sync_lock:
            per_link = self._sync.setdefault(link, {})
            per_link[key] = (link.generation, epoch, n)
            link.assigned_shards = len(per_link)

    def _sync_view(
        self, view: MaterializedView
    ) -> tuple[str, int, dict[WorkerLink, set[int]]]:
        """Sync every replica of every shard; returns who is warm."""
        view_key = view_wire_key(view)
        epoch = view.append_epoch
        shards = view.shards
        plan: dict[WorkerLink, list[int]] = {}
        for i in range(len(shards)):
            for link in self.replica_links(i):
                if link.alive:
                    plan.setdefault(link, []).append(i)

        def sync_worker(link: WorkerLink, shard_ids: list[int]) -> set[int]:
            warm: set[int] = set()
            for s in shard_ids:
                try:
                    self._sync_shard(link, view_key, epoch, s, shards[s])
                except (ConnectionError, wire.RemoteError, wire.WireError):
                    # Dead or refusing worker: the shards it missed
                    # simply are not warm on it this query.
                    break
                warm.add(s)
            return warm

        futures = {
            link: self._pool.submit(sync_worker, link, shard_ids)
            for link, shard_ids in plan.items()
        }
        synced = {link: fut.result() for link, fut in futures.items()}
        if not any(synced.values()) and len(shards):
            raise ProtocolError(
                f"no live worker accepted shards of view {view_key!r}"
            )
        return view_key, epoch, synced

    # -- scatter / gather --------------------------------------------------
    def scan(
        self,
        view: MaterializedView,
        spec: dict,
        cost_model,
        tasks: list[tuple[int, int, int]],
    ) -> dict[int, tuple[np.ndarray, np.ndarray, int]]:
        """Run ``tasks`` (``(shard, rows, start)`` triples) on the fleet.

        Returns ``shard -> (counts, sums, gates)`` — the same partials
        the shared-memory process backend produces, because the workers
        run the same kernel under the same cost model.  Survives any
        worker death that leaves each shard one live synced replica.
        """
        if not self._started:
            self.start()
        view_key, epoch, synced = self._sync_view(view)
        cost_payload = wire.encode_cost_model(cost_model)
        results: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        pending = list(tasks)
        attempted: dict[int, set[WorkerLink]] = {}
        while pending:
            batches: dict[WorkerLink, list[tuple[int, int, int]]] = {}
            for task in pending:
                shard = task[0]
                target = None
                for link in self.replica_links(shard):
                    if (
                        link.alive
                        and shard in synced.get(link, ())
                        and link not in attempted.get(shard, ())
                    ):
                        target = link
                        break
                if target is None:
                    raise ProtocolError(
                        f"shard {shard} of view {view_key!r} has no live "
                        "synced replica left to scan"
                    )
                attempted.setdefault(shard, set()).add(target)
                batches.setdefault(target, []).append(task)

            def dispatch(
                link: WorkerLink, batch: list[tuple[int, int, int]]
            ) -> list[tuple[int, np.ndarray, np.ndarray, int]]:
                payload = {
                    "view": view_key,
                    "epoch": epoch,
                    "spec": spec,
                    "cost_model": cost_payload,
                    "tasks": [
                        {"shard": s, "rows": r, "start": st}
                        for s, r, st in batch
                    ],
                }
                response = link.exchange("scan", payload, expect="scan_partial")
                parts = response.get("parts")
                if not isinstance(parts, list) or len(parts) != len(batch):
                    raise ProtocolError(
                        f"worker {link.endpoint.name} answered "
                        f"{0 if not isinstance(parts, list) else len(parts)} "
                        f"partials for {len(batch)} tasks"
                    )
                return [wire.decode_scan_partial(p) for p in parts]

            futures = [
                (link, batch, self._pool.submit(dispatch, link, batch))
                for link, batch in batches.items()
            ]
            pending = []
            for link, batch, fut in futures:
                try:
                    parts = fut.result()
                except (ConnectionError, wire.RemoteError, wire.WireError):
                    # Mid-query failover: the whole batch re-scatters to
                    # the next replica in each shard's ring.
                    link.mark_dead()
                    link.rescatters += len(batch)
                    self.total_rescatters += len(batch)
                    pending.extend(batch)
                    continue
                # Eager gauge bump; the next heartbeat overwrites it
                # with the worker's own (identical) count.
                link.scans_served += len(batch)
                for shard, counts, sums, gates in parts:
                    results[shard] = (counts, sums, gates)
        return results
