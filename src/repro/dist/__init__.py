"""The distributed scan fabric: shard-worker daemons + scan coordinator.

PR 6's process pool scales view scans to one host's cores; this package
scales them to a fleet.  A :class:`~repro.dist.worker.ShardWorker`
daemon (``python -m repro shard-worker --listen HOST:PORT``) hosts a
subset of every view's round-robin shards — share halves shipped over
the wire in the v2 snapshot array encoding — and answers ``scan``
frames with partial accumulators.  A
:class:`~repro.dist.coordinator.RemoteScanBackend` (the ``"remote"``
backend of :class:`~repro.query.parallel.ParallelScanExecutor`) keeps
persistent binary-codec connections to the fleet, streams appended
deltas using the same per-shard watermark discipline as
:mod:`repro.query.incremental`, scatters per-shard suffix-scan tasks,
and merges the partials by exact ring addition — answers, gate totals,
noise streams, and realized ε byte-identical to the in-process path.

Replication (factor ≥ 2) assigns every shard to several workers;
heartbeat-driven membership (:mod:`repro.dist.membership`) marks dead
workers and the coordinator re-scatters their in-flight scan tasks to
replicas mid-query, so a SIGKILLed worker costs latency, never
correctness.

Leakage: shard placement — which worker holds which rows — is a pure
function of the public append positions and the configured fleet, and
what crosses the wire is each server's XOR share half (ciphertext) plus
public lengths.  Distribution therefore leaks nothing beyond what the
single-host transcript already reveals; see ``docs/SHARDING.md``.
"""

from .coordinator import RemoteScanBackend
from .membership import WorkerEndpoint, parse_worker_endpoints
from .worker import ShardWorker

__all__ = [
    "RemoteScanBackend",
    "ShardWorker",
    "WorkerEndpoint",
    "parse_worker_endpoints",
]
