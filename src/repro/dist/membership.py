"""Heartbeat-driven membership of the shard-worker fleet.

The coordinator owns one :class:`WorkerLink` per configured endpoint: a
persistent framed connection (binary codec preferred), a request lock
(one in-flight exchange per worker), and the liveness/gauge state the
serving runtime surfaces per worker (assigned shard replicas, last
heartbeat age, scans served, re-scatter count).

A :class:`MembershipTracker` thread probes every *idle* live link with a
``heartbeat`` frame each interval — an exchange already in flight
counts as liveness, so heartbeats never queue behind a long scan — and
redials dead links on the shared exponential-backoff-with-full-jitter
schedule (:mod:`repro.net.backoff`, the same curve the analyst client's
``connect()`` uses).  A successful redial bumps the link's
``generation``: a restarted daemon lost its hosted shards, so the
coordinator drops its sync watermarks and re-bootstraps from scratch
(the v2-snapshot-encoded ``shard_assign`` path).  A reconnect to a
daemon that in fact kept its state costs one redundant bootstrap —
correctness never depends on the distinction.

Failure detection is symmetrical: the heartbeat thread marks a link
dead when the probe fails, and the scan path marks it dead the moment
an exchange raises — whichever notices first.  Either way the
coordinator re-scatters the dead worker's in-flight scan tasks to a
replica (:mod:`repro.dist.coordinator`) and this module keeps trying to
bring the worker back.
"""

from __future__ import annotations

import socket
import threading
import time as _time
from dataclasses import dataclass

from ..common.errors import ProtocolError
from ..net import protocol as wire
from ..net.backoff import backoff_delay


@dataclass(frozen=True)
class WorkerEndpoint:
    """One configured fleet member."""

    host: str
    port: int

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"


def parse_worker_endpoints(spec: str) -> list[WorkerEndpoint]:
    """``"host:port,host:port,…"`` → endpoints (the ``--workers`` flag).

    >>> parse_worker_endpoints("127.0.0.1:7001, 127.0.0.1:7002")
    [WorkerEndpoint(host='127.0.0.1', port=7001), WorkerEndpoint(host='127.0.0.1', port=7002)]
    """
    endpoints = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port_text = part.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            raise ProtocolError(
                f"malformed worker endpoint {part!r}; expected HOST:PORT"
            )
        port = int(port_text)
        if not 0 < port <= 65535:
            raise ProtocolError(f"worker port {port} is out of range 1-65535")
        endpoints.append(WorkerEndpoint(host, port))
    if not endpoints:
        raise ProtocolError(f"no worker endpoints in {spec!r}")
    return endpoints


class WorkerLink:
    """One persistent connection to one shard worker, plus its gauges."""

    def __init__(
        self,
        endpoint: WorkerEndpoint,
        timeout: float = 30.0,
        token: str | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.timeout = timeout
        #: pre-shared fleet token offered in every (re)dial's hello
        self.token = token
        #: serializes exchanges on this link (scans, syncs, heartbeats)
        self.lock = threading.Lock()
        self.alive = False
        #: bumped on every successful (re)connect — sync state keyed on
        #: an older generation is void (the daemon may have restarted)
        self.generation = 0
        self.last_seen = 0.0  # monotonic; 0 = never
        self.codec = wire.CODEC_JSON
        #: coordinator-side gauges (the ServingStats per-worker surface)
        self.assigned_shards = 0
        self.scans_served = 0
        self.rescatters = 0
        self._sock: socket.socket | None = None
        self._stream = None
        self._dial_attempts = 0

    # -- connection lifecycle ---------------------------------------------
    def connect(self) -> None:
        """One dial + handshake attempt; raises on failure."""
        self.disconnect()
        sock = socket.create_connection(
            (self.endpoint.host, self.endpoint.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = sock.makefile("rwb")
        hello = {
            "client": "scan-coordinator",
            "codecs": [wire.CODEC_BINARY, wire.CODEC_JSON],
        }
        if self.token is not None:
            hello["token"] = self.token
        try:
            wire.write_frame(stream, "hello", hello)
            frame_type, payload = wire.read_frame(stream)
        except (OSError, ValueError, wire.WireError):
            sock.close()
            raise
        if frame_type == "error":
            sock.close()
            raise ProtocolError(
                f"{self.endpoint.name} refused the handshake: "
                f"[{payload.get('code')}] {payload.get('message')}"
            )
        if frame_type != "welcome" or payload.get("role") != "shard-worker":
            sock.close()
            raise ProtocolError(
                f"{self.endpoint.name} is not a shard worker (got "
                f"{frame_type!r}, role {payload.get('role')!r})"
            )
        self._sock = sock
        self._stream = stream
        self.codec = payload.get("codec", wire.CODEC_JSON)
        self.alive = True
        self.generation += 1
        self.last_seen = _time.monotonic()
        self._dial_attempts = 0

    def disconnect(self) -> None:
        self.alive = False
        if self._stream is not None:
            try:
                self._stream.close()
            except (OSError, ValueError):
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def mark_dead(self) -> None:
        self.disconnect()

    def next_redial_delay(self) -> float:
        """The jittered delay before the next dial attempt."""
        delay = backoff_delay(self._dial_attempts)
        self._dial_attempts += 1
        return delay

    # -- exchanges ---------------------------------------------------------
    def exchange(self, frame_type: str, payload: dict, expect: str) -> dict:
        """One request/response on this link (caller holds no lock).

        Any transport or protocol failure marks the link dead and
        re-raises — the caller (scan scatter, sync, heartbeat) decides
        whether that means failover or just a missed probe.
        """
        with self.lock:
            stream = self._stream
            if stream is None:
                raise ConnectionError(f"{self.endpoint.name} is not connected")
            try:
                wire.write_frame(stream, frame_type, payload, codec=self.codec)
                response_type, response = wire.read_frame(stream)
            except (OSError, ValueError, wire.WireError) as exc:
                self.mark_dead()
                raise ConnectionError(
                    f"worker {self.endpoint.name} lost mid-exchange: {exc}"
                ) from exc
            self.last_seen = _time.monotonic()
            if response_type == "error":
                raise wire.RemoteError(
                    response.get("code", wire.ERR_SERVER),
                    response.get("message", "unspecified"),
                    response.get("retry_after"),
                )
            if response_type != expect:
                self.mark_dead()
                raise ConnectionError(
                    f"worker {self.endpoint.name} answered {frame_type!r} "
                    f"with {response_type!r} (expected {expect!r})"
                )
            return response

    def gauge_dict(self) -> dict:
        """The ServingStats per-worker surface for this link."""
        age = (
            None
            if not self.last_seen
            else max(0.0, _time.monotonic() - self.last_seen)
        )
        return {
            "endpoint": self.endpoint.name,
            "alive": self.alive,
            "assigned_shards": self.assigned_shards,
            "last_heartbeat_age_seconds": age,
            "scans_served": self.scans_served,
            "rescatters": self.rescatters,
        }


class MembershipTracker:
    """Background heartbeats + jittered redial over a set of links."""

    def __init__(
        self,
        links: list[WorkerLink],
        heartbeat_interval: float = 1.0,
        on_revive=None,
    ) -> None:
        self.links = links
        self.heartbeat_interval = heartbeat_interval
        #: called with the revived link after a successful redial (the
        #: coordinator voids that worker's sync watermarks here)
        self.on_revive = on_revive
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: per-link monotonic deadline before the next dial attempt
        self._next_dial: dict[int, float] = {}

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="dist-membership", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def revive(self, link: WorkerLink) -> bool:
        """One synchronous redial attempt (also used by the scan path)."""
        try:
            link.connect()
        except (OSError, ConnectionError, ProtocolError, wire.WireError):
            return False
        if self.on_revive is not None:
            self.on_revive(link)
        return True

    # -- the probe loop ----------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            now = _time.monotonic()
            for i, link in enumerate(self.links):
                if self._stop.is_set():
                    return
                if link.alive:
                    self._probe(link)
                elif now >= self._next_dial.get(i, 0.0):
                    if not self.revive(link):
                        self._next_dial[i] = (
                            _time.monotonic() + link.next_redial_delay()
                        )

    def _probe(self, link: WorkerLink) -> None:
        # A busy link has an exchange in flight — that *is* liveness
        # (its completion refreshes last_seen); probing would only queue
        # behind a long scan and inflate the measured heartbeat age.
        if not link.lock.acquire(blocking=False):
            return
        link.lock.release()
        try:
            gauges = link.exchange("heartbeat", {}, expect="heartbeat_ok")
        except (ConnectionError, wire.RemoteError):
            link.mark_dead()
            return
        served = gauges.get("scans_served")
        if isinstance(served, int):
            link.scans_served = served
