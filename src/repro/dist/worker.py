"""The shard-worker daemon: hosts shard share halves, answers scans.

One :class:`ShardWorker` is one member of the distributed scan fleet.
It speaks the same framed wire protocol as the analyst front door —
``hello``/``welcome`` handshake with codec negotiation, then the
distributed frames (:data:`repro.net.protocol.DIST_FRAMES`):

* ``shard_assign`` — (re)bootstrap one shard of one view: the four
  share arrays (rows/flags × share half) in the v2 snapshot array
  encoding, plus the container's append epoch.  Assign replaces;
  replica bootstrap and post-reshard hand-off both ride this frame.
* ``shard_append`` — the delta rows appended to one shard since the
  coordinator's per-worker watermark.  Appends carry the expected
  current length, so a gap (lost frame, stale worker) is detected and
  rejected rather than silently mis-merged.
* ``scan`` — a batch of per-shard suffix-scan tasks for one view (plan
  scalars + the coordinator's cost model), answered by one
  ``scan_partial`` carrying each shard's ``(counts, sums, gates)``.
  The kernel is :func:`repro.query.shard_workers.scan_share_suffix` —
  the *same function* the shared-memory process backend runs, so
  partial accumulators are byte-identical by construction.
* ``heartbeat`` — liveness probe, answered with the worker's gauges
  (hosted shard replicas, scans served, uptime).

The daemon is deliberately simple: a blocking accept loop plus one
thread per connection (a coordinator holds one persistent connection;
fleets are small).  All hosted state is ciphertext — XOR share halves —
plus public lengths; a worker never holds both halves' *secrets* in the
sense of the simulation either way, exactly like the in-process
backends (see ``docs/SHARDING.md`` on why distribution adds no
leakage).

Test hook: ``REPRO_DIST_SCAN_STALL_MS`` in the daemon's environment
makes every scan sleep before answering — the failover suite uses it to
SIGKILL a worker while its scan is provably in flight.
"""

from __future__ import annotations

import hmac
import os
import socket
import threading
import time as _time

import numpy as np

from ..net import protocol as wire

#: Rows per assign/append frame: bounds one frame's body well under the
#: 64 MiB ceiling for any plausible row width (chunk of 2^18 rows at
#: width 32 is ~2·32·4·2^18 = 64 MiB of shares only at width >= 32;
#: realistic view widths are < 10, i.e. ~17 MiB).
SHARD_CHUNK_ROWS = 262_144


def _token_matches(expected: str, offered: object) -> bool:
    """Constant-time fleet-token check (wrong type/size never matches)."""
    if not isinstance(offered, str) or len(offered.encode("utf8")) > 1024:
        return False
    return hmac.compare_digest(
        expected.encode("utf8"), offered.encode("utf8")
    )


class _HostedShard:
    """One shard replica's share halves plus its append epoch."""

    __slots__ = ("epoch", "rows0", "rows1", "flags0", "flags1")

    def __init__(
        self,
        epoch: int,
        rows0: np.ndarray,
        rows1: np.ndarray,
        flags0: np.ndarray,
        flags1: np.ndarray,
    ) -> None:
        self.epoch = epoch
        self.rows0 = rows0
        self.rows1 = rows1
        self.flags0 = flags0
        self.flags1 = flags1

    def __len__(self) -> int:
        return len(self.rows0)

    def append(
        self,
        rows0: np.ndarray,
        rows1: np.ndarray,
        flags0: np.ndarray,
        flags1: np.ndarray,
    ) -> None:
        self.rows0 = np.concatenate([self.rows0, rows0])
        self.rows1 = np.concatenate([self.rows1, rows1])
        self.flags0 = np.concatenate([self.flags0, flags0])
        self.flags1 = np.concatenate([self.flags1, flags1])


class ShardWorker:
    """One shard-serving daemon: accept loop + per-connection threads."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        token: str | None = None,
    ) -> None:
        self.name = name or f"shard-worker-{os.getpid()}"
        #: pre-shared fleet token; when set, every connection must open
        #: with a hello carrying it (the coordinator reuses the tenant
        #: handshake) before any shard frame is served
        self.token = token
        self._listen_addr = (host, port)
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._closing = False
        #: hosted shard replicas, keyed ``(view_key, shard_index)``
        self._shards: dict[tuple[str, int], _HostedShard] = {}
        self._scans_served = 0
        self._started_at = _time.monotonic()

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("worker is not started")
        return self._sock.getsockname()[:2]

    def start(self) -> "ShardWorker":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(self._listen_addr)
        sock.listen(32)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every live connection (abrupt)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for t in list(self._conn_threads):
            t.join(timeout=5.0)

    def serve_forever(self) -> None:  # pragma: no cover - CLI path
        """Block until interrupted (the daemon entry point)."""
        try:
            while not self._closing:
                _time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ShardWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- gauges ------------------------------------------------------------
    def gauges(self) -> dict:
        with self._lock:
            return {
                "worker": self.name,
                "hosted_shards": len(self._shards),
                "hosted_rows": sum(len(s) for s in self._shards.values()),
                "scans_served": self._scans_served,
                "uptime_seconds": _time.monotonic() - self._started_at,
            }

    # -- the accept / connection loops -------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"{self.name}-conn",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        codec = wire.CODEC_JSON
        authed = self.token is None
        try:
            while True:
                try:
                    frame_type, payload = wire.read_frame(stream)
                except (wire.ConnectionClosed, OSError, ValueError):
                    return
                except wire.WireError:
                    return  # framing is unrecoverable; drop the stream
                try:
                    if not authed and frame_type != "hello":
                        # Token-protected fleet: one structured error,
                        # then hang up (never serve shard state to an
                        # unauthenticated peer).
                        wire.write_frame(
                            stream,
                            "error",
                            wire.error_payload(
                                wire.ERR_AUTH_FAILED,
                                "this worker requires a credentialed hello",
                            ),
                            codec=codec,
                        )
                        return
                    if frame_type == "hello":
                        if self.token is not None and not _token_matches(
                            self.token, payload.get("token")
                        ):
                            wire.write_frame(
                                stream,
                                "error",
                                wire.error_payload(
                                    wire.ERR_AUTH_FAILED,
                                    f"authentication failed for worker "
                                    f"{self.name!r}",
                                ),
                                codec=wire.CODEC_JSON,
                            )
                            return
                        authed = True
                        codec = wire.negotiate_codec(payload.get("codecs"))
                        wire.write_frame(
                            stream,
                            "welcome",
                            {
                                "role": "shard-worker",
                                "worker": self.name,
                                "codec": codec,
                                "protocol": list(wire.SUPPORTED_VERSIONS),
                            },
                            codec=wire.CODEC_JSON,
                        )
                    elif frame_type == "shard_assign":
                        wire.write_frame(
                            stream, "shard_ok", self._assign(payload), codec=codec
                        )
                    elif frame_type == "shard_append":
                        wire.write_frame(
                            stream, "shard_ok", self._append(payload), codec=codec
                        )
                    elif frame_type == "scan":
                        wire.write_frame(
                            stream,
                            "scan_partial",
                            self._scan(payload, codec),
                            codec=codec,
                        )
                    elif frame_type == "heartbeat":
                        wire.write_frame(
                            stream, "heartbeat_ok", self.gauges(), codec=codec
                        )
                    elif frame_type == "bye":
                        wire.write_frame(stream, "bye", {}, codec=codec)
                        return
                    else:
                        wire.write_frame(
                            stream,
                            "error",
                            wire.error_payload(
                                wire.ERR_UNSUPPORTED,
                                f"shard workers do not serve {frame_type!r} "
                                "frames",
                            ),
                            codec=codec,
                        )
                except wire.WireError as exc:
                    # A malformed *payload* is answered, not fatal.
                    try:
                        wire.write_frame(
                            stream,
                            "error",
                            wire.error_payload(
                                wire.ERR_INVALID_REQUEST, str(exc)
                            ),
                            codec=codec,
                        )
                    except (OSError, ValueError):
                        return
                except (OSError, ValueError):
                    # Peer (or our own stop()) closed the socket while a
                    # response was being written — just drop the stream.
                    return
        finally:
            try:
                stream.close()
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)

    # -- frame handlers ----------------------------------------------------
    @staticmethod
    def _shard_key(payload: dict) -> tuple[str, int]:
        try:
            return str(payload["view"]), int(payload["shard"])
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(
                f"malformed shard reference: {exc!r}"
            ) from exc

    def _assign(self, payload: dict) -> dict:
        key = self._shard_key(payload)
        try:
            epoch = int(payload["epoch"])
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(f"malformed assign epoch: {exc!r}") from exc
        rows0, rows1, flags0, flags1 = wire.decode_shard_content(payload)
        with self._lock:
            self._shards[key] = _HostedShard(epoch, rows0, rows1, flags0, flags1)
            rows = len(self._shards[key])
        return {"view": key[0], "shard": key[1], "rows": rows, "epoch": epoch}

    def _append(self, payload: dict) -> dict:
        key = self._shard_key(payload)
        try:
            epoch = int(payload["epoch"])
            expected_start = int(payload["start"])
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(f"malformed append header: {exc!r}") from exc
        rows0, rows1, flags0, flags1 = wire.decode_shard_content(payload)
        with self._lock:
            hosted = self._shards.get(key)
            if hosted is None or hosted.epoch != epoch:
                raise wire.WireError(
                    f"append to unassigned/stale shard {key} (epoch "
                    f"{epoch}, hosted "
                    f"{None if hosted is None else hosted.epoch}); "
                    "re-assign first"
                )
            if len(hosted) != expected_start:
                # A gap would silently corrupt the merge — refuse it.
                raise wire.WireError(
                    f"append gap on shard {key}: worker holds "
                    f"{len(hosted)} rows, append starts at {expected_start}"
                )
            hosted.append(rows0, rows1, flags0, flags1)
            rows = len(hosted)
        return {"view": key[0], "shard": key[1], "rows": rows, "epoch": epoch}

    def _scan(self, payload: dict, codec: str) -> dict:
        from ..query.shard_workers import scan_share_suffix

        try:
            view = str(payload["view"])
            epoch = int(payload["epoch"])
            tasks = payload["tasks"]
            if not isinstance(tasks, list):
                raise TypeError("tasks must be a list")
        except (KeyError, TypeError, ValueError) as exc:
            raise wire.WireError(f"malformed scan header: {exc!r}") from exc
        spec = wire.decode_scan_spec(payload.get("spec", {}))
        cost_model = wire.decode_cost_model(payload.get("cost_model", {}))
        stall_ms = int(os.environ.get("REPRO_DIST_SCAN_STALL_MS", "0"))
        if stall_ms:  # failover-test hook: keep the scan in flight
            _time.sleep(stall_ms / 1000.0)
        parts = []
        for task in tasks:
            try:
                shard = int(task["shard"])
                expected_rows = int(task["rows"])
                start = int(task["start"])
            except (KeyError, TypeError, ValueError) as exc:
                raise wire.WireError(f"malformed scan task: {exc!r}") from exc
            with self._lock:
                hosted = self._shards.get((view, shard))
            if hosted is None or hosted.epoch != epoch:
                raise wire.WireError(
                    f"scan of unassigned/stale shard ({view!r}, {shard}) "
                    f"(epoch {epoch}, hosted "
                    f"{None if hosted is None else hosted.epoch})"
                )
            if len(hosted) != expected_rows or not 0 <= start <= expected_rows:
                raise wire.WireError(
                    f"scan row mismatch on shard ({view!r}, {shard}): worker "
                    f"holds {len(hosted)} rows, coordinator expects "
                    f"{expected_rows} (start {start})"
                )
            counts, sums, gates = scan_share_suffix(
                hosted.rows0[start:],
                hosted.rows1[start:],
                hosted.flags0[start:],
                hosted.flags1[start:],
                spec["sum_indices"],
                spec["need_count"],
                spec["group_column"],
                spec["group_domain"],
                spec["clause_specs"],
                spec["payload_words"],
                spec["predicate_words"],
                cost_model,
            )
            parts.append(
                wire.encode_scan_partial(
                    shard, counts, sums, gates,
                    binary=codec == wire.CODEC_BINARY,
                )
            )
        with self._lock:
            self._scans_served += len(parts)
        return {"view": view, "epoch": epoch, "parts": parts}
