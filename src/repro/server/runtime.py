"""The persistent, concurrent serving runtime around the database.

:class:`~repro.server.database.IncShrinkDatabase` is a passive object:
callers invoke ``upload``/``step``/``query`` one at a time.  A real
deployment (the paper's Figure 1 read end-to-end) is a *server*: owners
stream batches in forever, many analysts hold open read sessions, and
the whole thing survives restarts.  :class:`DatabaseServer` provides
that shape:

* a **background ingestion loop** — submitted uploads queue up and a
  dedicated thread applies them in order, coalescing whatever is
  already queued into one exclusive critical section (batched uploads:
  one writer-lock acquisition covers many upload+step pairs);
* **concurrent read sessions** — queries run under a shared read lock
  (so they never observe a half-applied step) plus a per-view session
  guard; planning and ground-truth scoring parallelise freely, while
  circuit execution serialises on the simulated 2PC backend exactly as
  the paper's two servers evaluate one garbled circuit at a time;
* **snapshot/resume** — :meth:`snapshot` quiesces ingestion at a step
  boundary and persists the full outsourced state through
  :mod:`repro.server.persistence`; :meth:`resume` reconstructs a server
  from disk that continues the identical randomness streams, answers
  queries byte-identically, and cannot double-spend the ε already
  recorded in the snapshotted accountant.

Queries never advance the servers' randomness streams (they only reveal
and charge gates), so read concurrency — however the OS schedules the
sessions — cannot perturb the deterministic state evolution of the
stream.  Only the ingestion order matters, and the queue fixes it.
"""

from __future__ import annotations

import queue
import threading
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..common.errors import ConfigurationError, ProtocolError
from ..common.types import RecordBatch
from ..query.ast import LogicalJoinQuery, LogicalQuery
from ..query.shard_workers import shutdown_process_backend
from ..tenancy.ledger import TenantLedger
from .database import DatabaseQueryResult, IncShrinkDatabase
from .persistence import SnapshotInfo, restore_database, snapshot_database


class ReadWriteLock:
    """A writer-preferring read/write lock.

    Many readers (query sessions) may hold the lock simultaneously; the
    single writer (the ingestion loop, or a snapshot) excludes them all.
    Writer preference keeps a steady query load from starving the
    stream: once a writer is waiting, new readers queue behind it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServingStats:
    """Wall-clock throughput counters and live gauges of one serving run.

    The counters accumulate; the gauges (``queue_depth``,
    ``queue_capacity``, ``shard_rows``, ``query_epsilon``) mirror the
    current server state and are refreshed by
    :meth:`DatabaseServer.current_stats`.  ``to_dict`` is the single
    observability surface: the network ``stats`` frame and
    ``BENCH_serving.json`` both report exactly these fields.
    """

    uploads: int = 0
    steps: int = 0
    queries: int = 0
    ingest_seconds: float = 0.0
    query_seconds: float = 0.0
    snapshots: int = 0
    last_snapshot_seconds: float = 0.0
    last_snapshot_bytes: int = 0
    #: submitted-but-unapplied steps in the ingest queue right now
    queue_depth: int = 0
    #: the queue's bound (``max_pending`` — backpressure beyond this)
    queue_capacity: int = 0
    #: per-view shard sizes after the last applied step
    shard_rows: dict = field(default_factory=dict)
    #: total ε spent by noisy per-query releases so far
    query_epsilon: float = 0.0
    #: fraction of planner calls served from the structural plan cache
    plan_cache_hit_rate: float = 0.0
    #: accumulator-cache gauges (hits/misses/evictions/...); empty when
    #: incremental execution is disabled
    incremental_cache: dict = field(default_factory=dict)
    #: per-worker fleet gauges (assigned shards, heartbeat age, scans
    #: served, re-scatters); empty unless the remote backend is active
    workers: dict = field(default_factory=dict)

    def uploads_per_second(self) -> float:
        return self.uploads / self.ingest_seconds if self.ingest_seconds else 0.0

    def queries_per_second(self) -> float:
        return self.queries / self.query_seconds if self.query_seconds else 0.0

    def to_dict(self) -> dict:
        return {
            "uploads": self.uploads,
            "steps": self.steps,
            "queries": self.queries,
            "ingest_seconds": self.ingest_seconds,
            "query_seconds": self.query_seconds,
            "uploads_per_second": self.uploads_per_second(),
            "queries_per_second": self.queries_per_second(),
            "snapshots": self.snapshots,
            "last_snapshot_seconds": self.last_snapshot_seconds,
            "last_snapshot_bytes": self.last_snapshot_bytes,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "shard_rows": {
                name: list(rows) for name, rows in self.shard_rows.items()
            },
            "query_epsilon": self.query_epsilon,
            "plan_cache_hit_rate": self.plan_cache_hit_rate,
            "incremental_cache": dict(self.incremental_cache),
            "workers": {
                name: dict(gauges) for name, gauges in self.workers.items()
            },
        }


class ReadSession:
    """One analyst's handle onto a running server.

    Sessions are cheap: they add per-session bookkeeping (issued queries
    and their results) on top of the server's thread-safe query path.
    Many sessions may query concurrently from different threads.
    """

    def __init__(self, server: "DatabaseServer", name: str) -> None:
        self.server = server
        self.name = name
        self.results: list[DatabaseQueryResult] = []

    def query(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        time: int | None = None,
        predicate_words: int = 1,
        epsilon: float | None = None,
        tenant: str | None = None,
    ) -> DatabaseQueryResult:
        result = self.server.query(
            query,
            time=time,
            predicate_words=predicate_words,
            epsilon=epsilon,
            tenant=tenant,
        )
        self.results.append(result)
        return result

    @property
    def query_count(self) -> int:
        return len(self.results)

    def answers(self) -> list[float]:
        return [r.answer for r in self.results]


_SHUTDOWN = object()


class DrainTimeout(ProtocolError):
    """A bounded :meth:`DatabaseServer.drain`/:meth:`~DatabaseServer.stop`
    wait expired with submissions still queued.

    Nothing is lost and nothing failed: the ingestion loop keeps
    applying, and calling the method again resumes waiting.  Kept
    distinct from other :class:`~repro.common.errors.ProtocolError`\\ s
    so callers (the network front door) can tell "accepted but still
    applying" apart from a genuinely failed ingest."""


class DatabaseServer:
    """Long-lived serving process state around one database."""

    def __init__(
        self,
        database: IncShrinkDatabase,
        snapshot_path: str | None = None,
        snapshot_every: int | None = None,
        max_pending: int = 1024,
        ingest_batch: int = 32,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if snapshot_every is not None and snapshot_path is None:
            raise ConfigurationError(
                "snapshot_every requires a snapshot_path to write to"
            )
        if ingest_batch < 1:
            raise ConfigurationError(
                f"ingest_batch must be >= 1, got {ingest_batch}"
            )
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.database = database
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every
        self.max_pending = max_pending
        self.ingest_batch = ingest_batch
        self.stats = ServingStats(queue_capacity=max_pending)
        #: metadata merged into every snapshot (callers may add keys,
        #: e.g. the CLI records its workload parameters for ``resume``)
        self.metadata: dict = {}
        #: metadata recovered from the snapshot this server resumed from
        #: (empty for a freshly constructed server)
        self.resume_metadata: dict = {}

        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._rw = ReadWriteLock()
        self._mpc_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._view_locks: dict[str, threading.Lock] = {}
        self._nm_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._started = False
        self._stopping = False
        self._stopped = False
        self._shutdown_sent = False
        self._ingest_error: BaseException | None = None
        self._last_time = 0
        self._highest_submitted = 0
        self._session_counter = 0
        self._steps_since_snapshot = 0

    # -- lifecycle --------------------------------------------------------------
    @property
    def last_time(self) -> int:
        """Highest upload step the ingestion loop has fully applied."""
        return self._last_time

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "DatabaseServer":
        """Finalize the deployment and launch the ingestion loop."""
        if self._started:
            raise ConfigurationError("server already started")
        self.database.finalize()
        self._view_locks = {
            name: threading.Lock() for name in self.database.views
        }
        self._started = True
        self._thread = threading.Thread(
            target=self._ingest_loop, name="incshrink-ingest", daemon=True
        )
        self._thread.start()
        return self

    def submit(
        self,
        time: int,
        batches: Mapping[str, RecordBatch] | list[tuple[str, RecordBatch]],
    ) -> None:
        """Enqueue one step's uploads for the background loop.

        Blocks when the queue is full (backpressure toward the owners),
        exactly like a bounded ingest buffer in front of a real server.
        """
        self._require_running()
        item = dict(batches) if isinstance(batches, Mapping) else list(batches)
        self._queue.put((int(time), item))
        self._note_submitted(int(time))

    def try_submit(
        self,
        time: int,
        batches: Mapping[str, RecordBatch] | list[tuple[str, RecordBatch]],
        timeout: float | None = None,
    ) -> bool:
        """:meth:`submit` without unbounded blocking.

        Returns ``False`` when the ingest queue stays full (past
        ``timeout`` seconds; immediately when ``timeout`` is ``None``).
        The network front door uses this to *reject with retry-after*
        instead of parking one connection thread per blocked producer.
        """
        self._require_running()
        item = dict(batches) if isinstance(batches, Mapping) else list(batches)
        try:
            if timeout is None:
                self._queue.put_nowait((int(time), item))
            else:
                self._queue.put((int(time), item), timeout=timeout)
        except queue.Full:
            return False
        self._note_submitted(int(time))
        return True

    def try_submit_many(
        self,
        steps: list[
            tuple[int, Mapping[str, RecordBatch] | list[tuple[str, RecordBatch]]]
        ],
    ) -> int:
        """Enqueue a run of steps without blocking; returns how many fit.

        The network front door coalesces back-to-back upload frames
        from one connection into a single call here: one queue pass for
        the whole run instead of a lock round-trip per frame.  Steps
        are enqueued **in order** and admission stops at the first one
        that finds the queue full, so the accepted set is always a
        prefix — the caller can answer ``upload_ok`` for the first
        ``n`` frames and ``overloaded`` for the rest without creating
        gaps in the stream.
        """
        self._require_running()
        accepted = 0
        for time, batches in steps:
            item = dict(batches) if isinstance(batches, Mapping) else list(batches)
            try:
                self._queue.put_nowait((int(time), item))
            except queue.Full:
                break
            self._note_submitted(int(time))
            accepted += 1
        return accepted

    def _note_submitted(self, time: int) -> None:
        with self._stats_lock:
            if time > self._highest_submitted:
                self._highest_submitted = time

    @property
    def highest_submitted(self) -> int:
        """Highest step ever accepted into the queue (applied or not).

        The network front door seeds its upload-admission floor from
        this, so steps queued before the listener opened cannot be
        undercut by a remote upload.
        """
        with self._stats_lock:
            return max(self._highest_submitted, self._last_time)

    @property
    def pending_uploads(self) -> int:
        """Submitted-but-unapplied steps in the ingest queue (approximate)."""
        return self._queue.qsize()

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted upload has been applied.

        With a ``timeout`` the wait is bounded: if queued submissions
        remain unapplied after ``timeout`` seconds a
        :class:`~repro.common.errors.ProtocolError` is raised (nothing
        is lost — the loop keeps applying; call again to keep waiting).
        Any deferred background-ingestion failure surfaces here.
        """
        if timeout is None:
            self._queue.join()
        else:
            deadline = _time.monotonic() + timeout
            with self._queue.all_tasks_done:
                while self._queue.unfinished_tasks:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0.0:
                        raise DrainTimeout(
                            f"{self._queue.unfinished_tasks} queued "
                            f"submissions were not applied within "
                            f"{timeout:.3f}s"
                        )
                    self._queue.all_tasks_done.wait(remaining)
        self._raise_ingest_error()

    def stop(
        self, final_snapshot: bool = False, drain_timeout: float | None = None
    ) -> None:
        """Drain the queue, stop the loop, optionally snapshot.

        The shutdown is *graceful by default*: everything already
        submitted is applied before the loop exits.  ``drain_timeout``
        bounds that wait — on expiry a
        :class:`~repro.common.errors.ProtocolError` reports how many
        steps are still pending, the loop keeps draining, and calling
        :meth:`stop` again resumes waiting.  A deferred background
        ingestion failure is (re-)raised here, so a caller that never
        submits again still observes it.
        """
        if not self._started or self._stopped:
            return
        self._stopping = True
        deadline = (
            None if drain_timeout is None
            else _time.monotonic() + drain_timeout
        )

        def _timed_out() -> DrainTimeout:
            return DrainTimeout(
                f"ingestion did not drain within {drain_timeout:.3f}s "
                f"({self._queue.qsize()} submissions still queued); call "
                "stop() again to keep waiting"
            )

        if not self._shutdown_sent:
            # The sentinel rides the bounded queue; with a full queue a
            # blocking put would bust the drain_timeout contract, so the
            # enqueue itself is bounded too.
            try:
                if drain_timeout is None:
                    self._queue.put(_SHUTDOWN)
                else:
                    self._queue.put(_SHUTDOWN, timeout=drain_timeout)
            except queue.Full:
                raise _timed_out()
            self._shutdown_sent = True
        assert self._thread is not None
        self._thread.join(
            None if deadline is None
            else max(0.0, deadline - _time.monotonic())
        )
        if self._thread.is_alive():
            raise _timed_out()
        self._stopped = True
        # The ingest loop is down and no further queries run through this
        # server: release the process scan backend's worker fleet and
        # shared-memory publications (idempotent; a later database in the
        # same interpreter transparently respawns them).
        shutdown_process_backend()
        self.database.close_remote()
        self._raise_ingest_error()
        if final_snapshot:
            self.snapshot()

    # -- ingestion loop -----------------------------------------------------------
    def _ingest_loop(self) -> None:
        shutdown = False
        while not shutdown:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            pending = [item]
            # Coalesce whatever else is already queued into this same
            # exclusive section — batched ingestion.
            while len(pending) < self.ingest_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                pending.append(nxt)
            try:
                self._apply(pending)
            except BaseException as exc:  # surface to the foreground
                self._ingest_error = exc
            finally:
                for _ in pending:
                    self._queue.task_done()
                if shutdown:
                    self._queue.task_done()
            if self._ingest_error is not None:
                self._drain_after_error()
                return

    def _apply(self, pending: list[tuple[int, object]]) -> None:
        t0 = _time.perf_counter()
        with self._rw.write_locked():
            for step_time, batches in pending:
                if step_time <= self._last_time:
                    raise ProtocolError(
                        f"upload at step {step_time} does not advance the "
                        f"stream (last applied step is {self._last_time})"
                    )
                self.database.upload(step_time, batches)
                self.database.step(step_time)
                self._last_time = step_time
                self._steps_since_snapshot += 1
                with self._stats_lock:
                    self.stats.uploads += len(batches)
                    self.stats.steps += 1
            # Counted against steps-since-last-checkpoint, not a modulus
            # of the total: coalesced applies advance many steps at once
            # and must not jump over the configured interval.
            if (
                self.snapshot_every is not None
                and self._steps_since_snapshot >= self.snapshot_every
            ):
                self._snapshot_locked()
            shard_rows = {
                name: vr.view.shard_lengths()
                for name, vr in self.database.views.items()
            }
        with self._stats_lock:
            self.stats.shard_rows = shard_rows
            self.stats.ingest_seconds += _time.perf_counter() - t0

    def _drain_after_error(self) -> None:
        """After a failed step, unblock producers waiting on join()."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            self._queue.task_done()
            if item is _SHUTDOWN:
                return

    def _require_running(self) -> None:
        if not self._started:
            raise ConfigurationError("server not started; call start() first")
        if self._stopping:
            raise ConfigurationError("server is stopping; no new submissions")
        self._raise_ingest_error()

    def _raise_ingest_error(self) -> None:
        if self._ingest_error is not None:
            raise self._ingest_error

    @property
    def ingest_error(self) -> BaseException | None:
        """The deferred background-ingestion failure, if any (no raise).

        :meth:`submit`, :meth:`drain`, and :meth:`stop` *raise* it; this
        property lets monitoring surfaces (the network ``stats`` frame)
        report a poisoned ingest loop without tearing themselves down.
        """
        return self._ingest_error

    # -- analyst side -------------------------------------------------------------
    def session(self, name: str | None = None) -> ReadSession:
        """Open one concurrent read session."""
        self._session_counter += 1
        return ReadSession(self, name or f"session-{self._session_counter}")

    def query(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        time: int | None = None,
        predicate_words: int = 1,
        epsilon: float | None = None,
        tenant: str | None = None,
    ) -> DatabaseQueryResult:
        """Plan and execute one logical query against a consistent state.

        The read lock guarantees no step is mid-application; the per-view
        guard serialises sessions scanning the same view; the MPC lock
        serialises circuit evaluation on the simulated 2PC backend (and
        the noisy-release sampling of an ε-released query, whose noise
        stream is separate from the ingestion streams).  Because the MPC
        lock serialises noisy releases, the database's check-then-spend
        ledger gate for ``tenant`` is atomic with the spend it guards.
        """
        self._raise_ingest_error()
        t0 = _time.perf_counter()
        with self._rw.read_locked():
            at_time = self._last_time if time is None else int(time)
            plan = self.database.planner.plan(
                query, predicate_words=predicate_words
            )
            guard = self._view_locks.get(plan.view_name or "", self._nm_lock)
            with guard, self._mpc_lock:
                result = self.database.query(
                    query,
                    at_time,
                    predicate_words=predicate_words,
                    plan=plan,
                    epsilon=epsilon,
                    tenant=tenant,
                )
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.query_seconds += _time.perf_counter() - t0
            if epsilon is not None:
                self.stats.query_epsilon = self.database.query_epsilon()
        return result

    def reshard(self, n_shards: int) -> None:
        """Re-partition every view/cache under the write lock.

        Quiesces read sessions exactly like a snapshot; answers, gate
        charges, and ε are unchanged (see
        :meth:`~repro.server.database.IncShrinkDatabase.reshard`).
        """
        with self._rw.write_locked():
            self.database.reshard(n_shards)

    # -- observability ------------------------------------------------------------
    def current_stats(self) -> ServingStats:
        """Refresh the live gauges and return the stats record."""
        with self._stats_lock:
            self.stats.queue_depth = self._queue.qsize()
            self.stats.queue_capacity = self.max_pending
            self.stats.query_epsilon = self.database.query_epsilon()
            self.stats.plan_cache_hit_rate = self.database.planner.hit_rate
            self.stats.incremental_cache = (
                self.database.incremental_cache_stats()
            )
            self.stats.workers = self.database.remote_worker_stats()
            return self.stats

    def observability(self) -> dict:
        """The full monitoring surface, as one JSON-shaped dict.

        ``ServingStats.to_dict()`` plus the stream watermark, shard
        count, realized ε, and any deferred ingest failure — exactly
        what the network ``stats`` frame serves and what
        ``BENCH_serving.json`` records.  Taken under the read lock so
        the gauges describe one consistent step boundary.
        """
        with self._rw.read_locked():
            payload = self.current_stats().to_dict()
            payload["last_time"] = self._last_time
            payload["n_shards"] = self.database.n_shards
            payload["realized_epsilon"] = self.database.realized_epsilon()
            error = self._ingest_error
            payload["ingest_error"] = None if error is None else str(error)
            if self.database.tenant_budgets:
                payload["tenants"] = TenantLedger(
                    self.database.accountant, self.database.tenant_budgets
                ).summary()
        return payload

    # -- persistence --------------------------------------------------------------
    def snapshot(self, path: str | None = None) -> SnapshotInfo:
        """Quiesce at a step boundary and persist the full state."""
        target = path or self.snapshot_path
        if target is None:
            raise ConfigurationError(
                "no snapshot path: pass one here or configure snapshot_path"
            )
        with self._rw.write_locked():
            return self._snapshot_locked(target)

    def _snapshot_locked(self, path: str | None = None) -> SnapshotInfo:
        target = path or self.snapshot_path
        assert target is not None
        t0 = _time.perf_counter()
        metadata = dict(self.metadata)
        metadata["last_time"] = self._last_time
        metadata["stats"] = self.stats.to_dict()
        info = snapshot_database(self.database, target, metadata=metadata)
        self._steps_since_snapshot = 0
        with self._stats_lock:
            self.stats.snapshots += 1
            self.stats.last_snapshot_seconds = _time.perf_counter() - t0
            self.stats.last_snapshot_bytes = info.bytes_written
        return info

    @classmethod
    def resume(
        cls,
        path: str,
        snapshot_path: str | None = None,
        snapshot_every: int | None = None,
        **kwargs,
    ) -> "DatabaseServer":
        """Reconstruct a server from a snapshot written by :meth:`snapshot`.

        The resumed server keeps checkpointing to the same file unless a
        different ``snapshot_path`` is given.  The restored metadata is
        exposed as :attr:`resume_metadata` (and the caller-added keys are
        carried forward into future snapshots).
        """
        restored = restore_database(path)
        server = cls(
            restored.database,
            snapshot_path=snapshot_path or path,
            snapshot_every=snapshot_every,
            **kwargs,
        )
        server.resume_metadata = dict(restored.metadata)
        server.metadata = {
            k: v
            for k, v in restored.metadata.items()
            if k not in ("last_time", "stats")
        }
        server._last_time = int(restored.metadata.get("last_time", 0))
        return server
