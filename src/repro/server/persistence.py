"""Snapshot/restore persistence for the multi-view database.

A deployed :class:`~repro.server.database.IncShrinkDatabase` is meant to
run forever — owners upload, Transform feeds caches, Shrink updates
views, the accountant tallies spent ε.  All of that is server-side state
that must survive a process restart (the DP-Sync framing of
synchronization state as durable), and one piece of it is *privacy
critical*: replaying releases against a fresh accountant would silently
double-spend budget, so the realized-ε ledger must round-trip exactly.

This module serializes the full outsourced state to a **versioned,
integrity-checked** single-file format:

* secret shares are persisted as *shares* — each server durably stores
  its own half; nothing is ever recombined on the way to disk;
* share aliasing is preserved: the physical base-table store and every
  transform group's budget scope wrap the *same* uploaded
  :class:`~repro.sharing.shared_value.SharedTable` objects, and the
  snapshot interns each object once so a restore re-creates exactly the
  same sharing structure (uploads are stored once, not per view);
* both MPC servers' RNG states and the owner-side sharing generator are
  captured, so a restored database continues the *identical* randomness
  streams — byte-identical Shrink noise, resharing, and query answers;
* the envelope carries a magic string, a format version, and a SHA-256
  digest over the canonical body; any mismatch raises
  :class:`~repro.common.errors.PersistenceError` and aborts the restore;
* the shard layout round-trips (format v2): ``config.n_shards`` plus
  each view's per-shard tables, so a restored deployment scans with the
  same parallelism it was checkpointed with.  v1 snapshots (pre-sharding)
  still restore — as single-shard deployments, upgradeable in place via
  :meth:`~repro.server.database.IncShrinkDatabase.reshard`.

What is deliberately **not** persisted: the adversary-observable
transcript and the per-protocol run ledger (append-only observation
logs — a fresh process starts fresh observation logs; they do not feed
back into any answer or privacy computation).

Usage::

    info = snapshot_database(db, "deploy.snap", metadata={"last_time": t})
    restored = restore_database("deploy.snap")
    restored.database.query(...)          # identical answers
    restored.metadata["last_time"]        # caller-provided position
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import time as _time
from dataclasses import asdict, dataclass
from typing import Any, Hashable

import numpy as np

from ..common.errors import PersistenceError
from ..common.metrics import MetricLog, QueryObservation
from ..common.types import Schema
from ..core.view_def import JoinViewDefinition
from ..mpc.cost_model import CostModel
from ..sharing.shared_value import SharedArray, SharedTable
from .database import IncShrinkDatabase, ViewRegistration

#: File magic — identifies an IncShrink database snapshot.
SNAPSHOT_MAGIC = "incshrink-snapshot"
#: Bump on any incompatible change to the body layout.
#: v2 adds the shard layout: ``config.n_shards`` plus per-shard view
#: tables (``views[i].view.shards``) in round-robin global order.
#: v3 adds ``tenant_budgets`` (tenant -> ε cap) for multi-tenant
#: deployments; the per-tenant *spends* need no new field — they ride
#: the accountant events' tenant-scoped segment keys, which v2 already
#: round-trips.
SNAPSHOT_VERSION = 3
#: Older format versions :func:`restore_database` still reads.  A v1
#: snapshot predates sharding and restores as a single-shard deployment
#: (``IncShrinkDatabase.reshard`` is the upgrade path afterwards); a v2
#: snapshot predates tenancy and restores with no tenant budget caps.
COMPATIBLE_VERSIONS = (1, 2, SNAPSHOT_VERSION)

#: ``ViewRegistration`` fields that are plain scalars (everything but the
#: view definition itself).
_REGISTRATION_SCALARS = (
    "mode",
    "timer_interval",
    "ant_threshold",
    "flush_interval",
    "flush_size",
    "join_impl",
    "size_hint",
    "updates_hint",
)

_VIEW_DEF_SCALARS = (
    "name",
    "probe_table",
    "probe_key",
    "probe_ts",
    "driver_table",
    "driver_key",
    "driver_ts",
    "window_lo",
    "window_hi",
    "omega",
    "budget",
    "driver_public",
)


@dataclass(frozen=True)
class SnapshotInfo:
    """Receipt of one written snapshot."""

    path: str
    bytes_written: int
    sha256: str
    created_at: float


@dataclass
class RestoredDatabase:
    """A database reconstructed from disk plus the caller's metadata."""

    database: IncShrinkDatabase
    metadata: dict
    info: SnapshotInfo


# -- low-level codecs ---------------------------------------------------------
def _encode_array(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(entry: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(entry["data"].encode("ascii"))
        arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
        return arr.reshape(tuple(int(d) for d in entry["shape"])).copy()
    except (KeyError, ValueError, TypeError) as exc:
        raise PersistenceError(f"malformed array entry: {exc}") from exc


#: Public names for the array codec so other serialization surfaces (the
#: network wire protocol in :mod:`repro.net.protocol`) reuse *exactly*
#: the snapshot format's encoding instead of inventing a second one —
#: anything that crosses the wire is representable in a snapshot file.
encode_array = _encode_array
decode_array = _decode_array


def _encode_shared_array(sa: SharedArray) -> dict:
    return {"s0": _encode_array(sa.share0), "s1": _encode_array(sa.share1)}


def _decode_shared_array(entry: dict) -> SharedArray:
    return SharedArray(_decode_array(entry["s0"]), _decode_array(entry["s1"]))


def _encode_segment(segment: Hashable) -> Any:
    """Encode an accountant segment key (scalars and nested tuples)."""
    if isinstance(segment, tuple):
        return {"tuple": [_encode_segment(s) for s in segment]}
    if segment is None or isinstance(segment, (bool, int, float, str)):
        return {"value": segment}
    raise PersistenceError(
        f"cannot persist accountant segment of type {type(segment).__name__}"
    )


def _decode_segment(entry: Any) -> Hashable:
    if not isinstance(entry, dict):
        raise PersistenceError(f"malformed segment entry: {entry!r}")
    if "tuple" in entry:
        return tuple(_decode_segment(s) for s in entry["tuple"])
    return entry["value"]


def _encode_metric_log(log: MetricLog) -> dict:
    return {
        "queries": [
            [q.time, q.logical_answer, q.view_answer, q.qet_seconds]
            for q in log.queries
        ],
        "transform_seconds": list(log.transform_seconds),
        "shrink_seconds": list(log.shrink_seconds),
        "view_size_rows": list(log.view_size_rows),
        "view_size_bytes": list(log.view_size_bytes),
        "cache_size_rows": list(log.cache_size_rows),
        "deferred_counts": list(log.deferred_counts),
    }


def _decode_metric_log(entry: dict) -> MetricLog:
    log = MetricLog()
    log.queries = [
        QueryObservation(int(t), float(la), float(va), float(qet))
        for t, la, va, qet in entry["queries"]
    ]
    log.transform_seconds = [float(x) for x in entry["transform_seconds"]]
    log.shrink_seconds = [float(x) for x in entry["shrink_seconds"]]
    log.view_size_rows = [int(x) for x in entry["view_size_rows"]]
    log.view_size_bytes = [int(x) for x in entry["view_size_bytes"]]
    log.cache_size_rows = [int(x) for x in entry["cache_size_rows"]]
    log.deferred_counts = [int(x) for x in entry["deferred_counts"]]
    return log


class _TableInterner:
    """Encode each distinct :class:`SharedTable` object exactly once.

    The physical base-table store and every transform group's budget
    scope hold references to the *same* uploaded share objects.  The
    interner maps object identity to an index into one shared pool, so
    the on-disk format stores every upload once and a restore rebuilds
    the exact aliasing graph.
    """

    def __init__(self) -> None:
        self.pool: list[dict] = []
        self._index: dict[int, int] = {}

    def ref(self, table: SharedTable) -> int:
        key = id(table)
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.pool)
            self._index[key] = idx
            self.pool.append(
                {
                    "fields": list(table.schema.fields),
                    "rows": _encode_shared_array(table.rows),
                    "flags": _encode_shared_array(table.flags),
                }
            )
        return idx


def _decode_table_pool(entries: list[dict]) -> list[SharedTable]:
    pool = []
    for e in entries:
        pool.append(
            SharedTable(
                Schema(tuple(e["fields"])),
                _decode_shared_array(e["rows"]),
                _decode_shared_array(e["flags"]),
            )
        )
    return pool


def _encode_registration(spec: ViewRegistration) -> dict:
    vd = spec.view_def
    entry = {f: getattr(spec, f) for f in _REGISTRATION_SCALARS}
    entry["view_def"] = {f: getattr(vd, f) for f in _VIEW_DEF_SCALARS}
    entry["view_def"]["probe_schema"] = list(vd.probe_schema.fields)
    entry["view_def"]["driver_schema"] = list(vd.driver_schema.fields)
    return entry


def _decode_registration(entry: dict) -> ViewRegistration:
    vd_entry = dict(entry["view_def"])
    vd_entry["probe_schema"] = Schema(tuple(vd_entry["probe_schema"]))
    vd_entry["driver_schema"] = Schema(tuple(vd_entry["driver_schema"]))
    view_def = JoinViewDefinition(**vd_entry)
    return ViewRegistration(
        view_def, **{f: entry[f] for f in _REGISTRATION_SCALARS}
    )


# -- body assembly ------------------------------------------------------------
def _snapshot_body(db: IncShrinkDatabase, metadata: dict | None) -> dict:
    db.finalize()
    intern = _TableInterner()

    tables = {}
    for name, store in db.tables.items():
        tables[name] = {
            "schema": list(store.schema.fields),
            "batches": [
                {
                    "time": b["time"],
                    "table": intern.ref(b["table"]),
                    "invocations_used": b["invocations_used"],
                    "emitted": _encode_array(b["emitted"]),
                }
                for b in store.snapshot_state()
            ],
        }

    groups = []
    for group in db.groups.values():
        groups.append(
            {
                "signature": list(group.signature),
                "probe_scope": [
                    {
                        "time": b["time"],
                        "table": intern.ref(b["table"]),
                        "invocations_used": b["invocations_used"],
                        "emitted": _encode_array(b["emitted"]),
                    }
                    for b in group.probe_scope.snapshot_state()
                ],
                "driver_scope": [
                    {
                        "time": b["time"],
                        "table": intern.ref(b["table"]),
                        "invocations_used": b["invocations_used"],
                        "emitted": _encode_array(b["emitted"]),
                    }
                    for b in group.driver_scope.snapshot_state()
                ],
                "ledger": _encode_ledger(group.ledger.snapshot_state()),
            }
        )

    views = []
    for name, vr in db.views.items():
        view_state = vr.view.snapshot_state()
        policy_state = None
        if vr.policy is not None:
            policy_state = dict(vr.policy.snapshot_state())
            shares = policy_state.pop("threshold_shares", None)
            policy_state["threshold_shares"] = (
                None if shares is None else _encode_shared_array(shares)
            )
        views.append(
            {
                "name": name,
                "cache": intern.ref(vr.cache.snapshot_state()),
                "view": {
                    "shards": [intern.ref(t) for t in view_state["shards"]],
                    "update_count": view_state["update_count"],
                },
                "counter": (
                    None
                    if vr.counter is None
                    else _encode_shared_array(vr.counter.snapshot_state())
                ),
                "policy": policy_state,
                "metrics": _encode_metric_log(vr.metrics),
            }
        )

    logical = {
        name: {
            "fields": entry["fields"],
            "times": entry["times"],
            "batches": [_encode_array(b) for b in entry["batches"]],
        }
        for name, entry in db.logical.snapshot_state().items()
    }

    runtime = db.runtime
    return {
        "config": {
            "total_epsilon": db.total_epsilon,
            "nm_fallback": db.nm_fallback,
            "grid_steps": db.grid_steps,
            "multiplicity": db.planner.multiplicity,
            "n_shards": db.n_shards,
            "cost_model": asdict(runtime.cost_model),
        },
        "registrations": [_encode_registration(s) for s in db.registrations],
        "allocation": db.epsilon_allocation(),
        "shared_tables": intern.pool,
        "tables": tables,
        "logical": logical,
        "groups": groups,
        "views": views,
        "accountant": [
            [name, eps, _encode_segment(segment)]
            for name, eps, segment in db.accountant.snapshot_state()
        ],
        "tenant_budgets": dict(db.tenant_budgets),
        "metrics": _encode_metric_log(db.metrics),
        "rng": {
            "server0": runtime.server0.gen.bit_generator.state,
            "server1": runtime.server1.gen.bit_generator.state,
            "owner": runtime.owner_gen.bit_generator.state,
            "query_noise": db.query_noise_gen.bit_generator.state,
        },
        "metadata": dict(metadata or {}),
    }


def _encode_ledger(state: dict) -> dict:
    return {
        "omega": state["omega"],
        "budget": state["budget"],
        "groups": [
            {
                "table": g["table"],
                "time": g["time"],
                "n_rows": g["n_rows"],
                "emitted": _encode_array(g["emitted"]),
                "invocations": g["invocations"],
            }
            for g in state["groups"]
        ],
    }


def _decode_ledger(entry: dict) -> dict:
    return {
        "omega": entry["omega"],
        "budget": entry["budget"],
        "groups": [
            {
                "table": g["table"],
                "time": g["time"],
                "n_rows": g["n_rows"],
                "emitted": _decode_array(g["emitted"]),
                "invocations": g["invocations"],
            }
            for g in entry["groups"]
        ],
    }


def _canonical_bytes(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf8")


# -- public API ---------------------------------------------------------------
def snapshot_database(
    db: IncShrinkDatabase, path: str | os.PathLike, metadata: dict | None = None
) -> SnapshotInfo:
    """Serialize the database's full outsourced state to ``path``.

    ``metadata`` is an arbitrary JSON-serializable dict stored verbatim
    and handed back by :func:`restore_database` — the serving runtime
    uses it for its stream position and throughput counters.  The write
    is atomic (temp file + rename), so a crash mid-snapshot leaves any
    previous snapshot at ``path`` intact.
    """
    body = _snapshot_body(db, metadata)
    digest = hashlib.sha256(_canonical_bytes(body)).hexdigest()
    created = _time.time()
    document = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "sha256": digest,
        "created_at": created,
        "body": body,
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf8") as fh:
            json.dump(document, fh)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return SnapshotInfo(
        path=path,
        bytes_written=os.path.getsize(path),
        sha256=digest,
        created_at=created,
    )


def restore_database(path: str | os.PathLike) -> RestoredDatabase:
    """Reconstruct a database (and the caller's metadata) from ``path``.

    The restored instance answers queries byte-identically to the
    snapshotted one and reports the identical realized ε — the spent
    budget cannot be double-spent by a restart.
    """
    path = os.fspath(path)
    try:
        with open(path, encoding="utf8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise PersistenceError(f"cannot read snapshot {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"snapshot {path!r} is not valid JSON: {exc}") from exc

    if not isinstance(document, dict) or document.get("magic") != SNAPSHOT_MAGIC:
        raise PersistenceError(f"{path!r} is not an IncShrink snapshot")
    version = document.get("version")
    if version not in COMPATIBLE_VERSIONS:
        raise PersistenceError(
            f"snapshot {path!r} has format version {version!r}; this build "
            f"reads versions {COMPATIBLE_VERSIONS}"
        )
    body = document.get("body")
    if not isinstance(body, dict):
        raise PersistenceError(f"snapshot {path!r} has no body")
    digest = hashlib.sha256(_canonical_bytes(body)).hexdigest()
    if digest != document.get("sha256"):
        raise PersistenceError(
            f"snapshot {path!r} failed its integrity check (stored digest "
            f"{document.get('sha256')!r}, computed {digest!r}); refusing to "
            "restore — resuming from corrupt state could double-spend budget"
        )

    try:
        db = _rebuild(body)
    except PersistenceError:
        raise
    except Exception as exc:  # malformed-but-authentic bodies
        raise PersistenceError(
            f"snapshot {path!r} decoded but could not be applied: {exc}"
        ) from exc

    info = SnapshotInfo(
        path=path,
        bytes_written=os.path.getsize(path),
        sha256=digest,
        created_at=float(document.get("created_at", 0.0)),
    )
    return RestoredDatabase(
        database=db, metadata=dict(body.get("metadata", {})), info=info
    )


def _rebuild(body: dict) -> IncShrinkDatabase:
    pool = _decode_table_pool(body["shared_tables"])
    cfg = body["config"]

    db = IncShrinkDatabase(
        total_epsilon=float(cfg["total_epsilon"]),
        cost_model=CostModel(**cfg["cost_model"]),
        nm_fallback=bool(cfg["nm_fallback"]),
        grid_steps=int(cfg["grid_steps"]),
        multiplicity_hint=float(cfg["multiplicity"]),
        # v1 snapshots predate sharding: restore as one shard.
        n_shards=int(cfg.get("n_shards", 1)),
    )
    for entry in body["registrations"]:
        db.register_view(_decode_registration(entry))
    db.finalize_with_allocation(body["allocation"])

    # Physical base tables (shares from the interned pool).
    if set(body["tables"]) != set(db.tables):
        raise PersistenceError(
            f"snapshot tables {sorted(body['tables'])} do not match the "
            f"registered tables {sorted(db.tables)}"
        )
    for name, entry in body["tables"].items():
        db.tables[name].restore_state(_decode_batches(entry["batches"], pool))

    # Owners' logical mirror.
    db.logical.restore_state(
        {
            name: {
                "fields": entry["fields"],
                "times": entry["times"],
                "batches": [_decode_array(b) for b in entry["batches"]],
            }
            for name, entry in body["logical"].items()
        }
    )

    # Transform groups: scopes alias the pool (same objects as the
    # physical store), ledgers restore their budget history.
    live_groups = list(db.groups.values())
    if len(live_groups) != len(body["groups"]):
        raise PersistenceError(
            f"snapshot has {len(body['groups'])} transform groups, the "
            f"re-registered database wired {len(live_groups)}"
        )
    for group, entry in zip(live_groups, body["groups"]):
        if list(group.signature) != entry["signature"]:
            raise PersistenceError(
                f"transform-group signature mismatch: snapshot "
                f"{entry['signature']!r} vs wired {list(group.signature)!r}"
            )
        group.probe_scope.restore_state(_decode_batches(entry["probe_scope"], pool))
        group.driver_scope.restore_state(
            _decode_batches(entry["driver_scope"], pool)
        )
        group.ledger.restore_state(_decode_ledger(entry["ledger"]))

    # Per-view runtime state.
    live_views = list(db.views.items())
    if [name for name, _ in live_views] != [v["name"] for v in body["views"]]:
        raise PersistenceError("snapshot views do not match the wired views")
    for (name, vr), entry in zip(live_views, body["views"]):
        vr.cache.restore_state(pool[entry["cache"]])
        view_entry = entry["view"]
        if "shards" in view_entry:  # v2: per-shard tables, global order
            view_state = {
                "shards": [pool[int(i)] for i in view_entry["shards"]],
                "update_count": view_entry["update_count"],
            }
        else:  # v1: the whole view as one flat table → one shard
            view_state = {
                "table": pool[view_entry["table"]],
                "update_count": view_entry["update_count"],
            }
        vr.view.restore_state(view_state)
        counter_entry = entry["counter"]
        if (vr.counter is None) != (counter_entry is None):
            raise PersistenceError(
                f"snapshot counter presence for view {name!r} does not match "
                "its registered mode"
            )
        if vr.counter is not None:
            vr.counter.restore_state(_decode_shared_array(counter_entry))
        policy_entry = entry["policy"]
        if (vr.policy is None) != (policy_entry is None):
            raise PersistenceError(
                f"snapshot policy presence for view {name!r} does not match "
                "its registered mode"
            )
        if vr.policy is not None:
            state = dict(policy_entry)
            shares = state.get("threshold_shares")
            if shares is not None:
                state["threshold_shares"] = _decode_shared_array(shares)
            vr.policy.restore_state(state)
        vr.metrics = _decode_metric_log(entry["metrics"])

    # Privacy ledger and database-level query log.
    db.accountant.restore_state(
        [
            (name, eps, _decode_segment(segment))
            for name, eps, segment in body["accountant"]
        ]
    )
    db.metrics = _decode_metric_log(body["metrics"])
    # Tenant ε caps (v3+; absent = pre-tenancy snapshot, no caps).  The
    # per-tenant *spends* were just restored with the accountant events
    # above — deriving ledgers from events is what makes a restore
    # incapable of double-spending a tenant's budget.
    budgets = body.get("tenant_budgets") or {}
    if budgets:
        db.set_tenant_budgets(budgets)

    # Both servers' and the owners' RNG streams continue exactly where
    # the snapshotted process stopped, as does the query-release noise
    # stream (absent in pre-compiler snapshots, which never released a
    # noisy query — the fresh seed-0 stream is then exactly right).
    rng = body["rng"]
    db.runtime.server0.gen.bit_generator.state = rng["server0"]
    db.runtime.server1.gen.bit_generator.state = rng["server1"]
    db.runtime.owner_gen.bit_generator.state = rng["owner"]
    if "query_noise" in rng:
        db.query_noise_gen.bit_generator.state = rng["query_noise"]
    # Continue query-release segments past the restored spends; the plan
    # cache is deliberately not persisted (state_version starts fresh and
    # the first planned query repopulates it from the restored sizes).
    db._query_seq = max(
        (
            int(e.segment[1])
            for e in db.accountant.events
            if isinstance(e.segment, tuple) and e.segment[:1] == ("query",)
        ),
        default=0,
    )
    return db


def _decode_batches(entries: list[dict], pool: list[SharedTable]) -> list[dict]:
    decoded = []
    for e in entries:
        idx = int(e["table"])
        if not 0 <= idx < len(pool):
            raise PersistenceError(f"batch references unknown share blob {idx}")
        decoded.append(
            {
                "time": e["time"],
                "table": pool[idx],
                "invocations_used": e["invocations_used"],
                "emitted": _decode_array(e["emitted"]),
            }
        )
    return decoded
