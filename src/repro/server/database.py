"""The multi-view IncShrink database server.

The paper deploys one IncShrink instance per pre-specified query class.
An :class:`IncShrinkDatabase` hosts **many** materialized join views over
**shared** outsourced base tables, the multi-query setting Shrinkwrap
and DP-Sync motivate for private data federations:

* owners upload each base-table batch **once**; every view family scopes
  the same secret shares through its own contribution-budget wrappers,
  so no view multiplies the upload or storage cost;
* a per-step :class:`~repro.server.scheduler.StepScheduler` executes the
  Transform circuit once per shared table pair (transform signature) and
  fans the padded delta out to every consuming view's cache, then drives
  each view's own Shrink policy and flusher;
* incoming logical queries — the unified
  :class:`~repro.query.ast.LogicalQuery` AST with any mix of
  COUNT/SUM/AVG aggregates, a residual predicate, and an optional
  GROUP BY, or the deprecated per-class shims — are routed by a
  cost-based (structure-cached)
  :class:`~repro.server.planner.DatabasePlanner` to the cheapest
  matching view scan, or to the NM join fallback when that is cheaper
  (or nothing matches and the fallback is enabled); either path answers
  **all aggregates and all groups in one oblivious pass**;
* views and caches are partitioned by a data-independent round-robin
  :class:`~repro.server.sharding.ShardLayout` (``n_shards``, default 1);
  view-scan plans execute one shard per worker thread through the
  :class:`~repro.query.parallel.ParallelScanExecutor`, byte-identically
  to the serial scan but at ``1/effective_workers`` of the wall clock;
* privacy composes through a single shared
  :class:`~repro.dp.accountant.PrivacyAccountant`: the database's total ε
  is split across DP views by the operator-level allocation of
  :mod:`repro.dp.allocation` (Eq. 15), and :meth:`realized_epsilon`
  reports the sequential-within / parallel-across composition over
  groups of views that observe the same base tables.

:class:`~repro.core.engine.IncShrinkEngine` is a thin single-view façade
over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..common.errors import ConfigurationError, SchemaError
from ..common.metrics import MetricLog, QueryObservation
from ..common.rng import spawn
from ..common.types import RecordBatch, Schema
from ..core.baselines import ExhaustivePaddingSync, OneTimeMaterialization
from ..core.counter import SharedCounter
from ..core.engine import MODES, validate_policy_knobs
from ..core.flush import CacheFlusher
from ..core.shrink_ant import SDPANT
from ..core.shrink_timer import SDPTimer
from ..core.view_def import JoinViewDefinition
from ..dp.accountant import (
    PrivacyAccountant,
    tenant_scoped_segment,
    theorem3_epsilon,
)
from ..dp.allocation import allocate_budget, split_query_epsilon, view_operator_spec
from ..dp.laplace import laplace_noise
from ..mpc.cost_model import CostModel
from ..mpc.runtime import MPCRuntime
from ..query.ast import (
    LogicalJoinCountQuery,
    LogicalJoinQuery,
    LogicalJoinSumQuery,
    LogicalQuery,
    QueryAnswer,
    ViewCountQuery,
    ViewSumQuery,
    as_logical,
)
from ..query.executor import (
    aggregate_plain,
    execute_nm_count,
    execute_nm_query,
    execute_nm_sum,
    execute_view_count,
    execute_view_sum,
)
from ..query.incremental import (
    DEFAULT_MAX_CACHED_QUERIES,
    AccumulatorCache,
    ScanReport,
)
from ..query.parallel import ParallelScanExecutor
from ..query.planner import VIEW_SCAN, QueryPlan
from ..query.rewrite import lower_to_view_scan
from ..storage.growing_db import GrowingDatabase
from ..storage.materialized_view import MaterializedView
from ..storage.outsourced_table import OutsourcedTable
from ..storage.secure_cache import SecureCache
from ..tenancy.ledger import check_tenant_budget, validate_budgets
from .planner import DatabasePlanner
from .sharding import ShardLayout
from .scheduler import (
    TRANSFORM_MODES,
    DatabaseStepReport,
    StepScheduler,
    TransformGroup,
    transform_signature,
)

#: View-update policies a registered view may run (= the engine's modes).
VIEW_MODES = MODES
#: Modes that consume privacy budget.
DP_MODES = ("dp-timer", "dp-ant")


@dataclass(frozen=True)
class ViewRegistration:
    """Declarative spec of one view: definition plus policy knobs."""

    view_def: JoinViewDefinition
    mode: str = "dp-timer"
    timer_interval: int = 10
    ant_threshold: float = 30.0
    flush_interval: int = 2000
    flush_size: int = 15
    join_impl: str = "sort-merge"
    #: Expected real input rows over the deployment horizon, used only to
    #: weight the ε allocation across DP views (public planning hint).
    size_hint: int = 1000
    #: Expected Shrink updates over the horizon (ε-allocation hint).
    updates_hint: int = 16

    def __post_init__(self) -> None:
        validate_policy_knobs(
            self.mode,
            self.join_impl,
            self.timer_interval,
            self.ant_threshold,
            self.flush_interval,
            self.flush_size,
        )
        if self.size_hint < 1:
            raise ConfigurationError(
                f"size_hint must be >= 1, got {self.size_hint}"
            )
        if self.updates_hint < 1:
            raise ConfigurationError(
                f"updates_hint must be >= 1, got {self.updates_hint}"
            )


@dataclass
class ViewRuntime:
    """Wired state of one registered view inside the database."""

    name: str
    view_def: JoinViewDefinition
    mode: str
    epsilon: float
    group: TransformGroup
    cache: SecureCache
    view: MaterializedView
    counter: SharedCounter | None
    policy: object | None
    flusher: CacheFlusher | None
    metrics: MetricLog = field(default_factory=MetricLog)


@dataclass
class DatabaseQueryResult:
    """One planned-and-executed logical query.

    ``answers`` is the full released result table (all aggregates × all
    groups, noisy when the query was released with an ε);
    ``logical_answers`` is the plaintext-mirror ground truth in the same
    shape.  ``answer`` keeps the historical scalar surface: the first
    cell, which for the deprecated single-aggregate shims *is* the whole
    answer.
    """

    plan: QueryPlan
    observation: QueryObservation
    answers: QueryAnswer | None = None
    logical_answers: QueryAnswer | None = None
    epsilon_spent: float = 0.0
    #: How the view scan actually executed (warm/cold/off + delta rows);
    #: ``None`` for NM plans, which have no incremental path.
    scan_report: ScanReport | None = None

    @property
    def answer(self) -> float:
        return self.observation.view_answer


class IncShrinkDatabase:
    """A multi-view outsourced database over shared base tables."""

    def __init__(
        self,
        total_epsilon: float = 1.5,
        seed: int = 0,
        cost_model: CostModel | None = None,
        runtime: MPCRuntime | None = None,
        nm_fallback: bool = True,
        grid_steps: int = 20,
        multiplicity_hint: float = 1.0,
        n_shards: int = 1,
        scan_workers: int | None = None,
        scan_backend: str = "auto",
        incremental: bool = True,
        max_cached_queries: int = DEFAULT_MAX_CACHED_QUERIES,
    ) -> None:
        if total_epsilon <= 0:
            raise ConfigurationError(
                f"total_epsilon must be positive, got {total_epsilon}"
            )
        self.total_epsilon = total_epsilon
        self.nm_fallback = nm_fallback
        self.grid_steps = grid_steps
        #: Per-shard prefix accumulators of repeat queries — repeat view
        #: scans pay gates only for rows appended since the last run,
        #: byte-identically to a cold scan (``None`` disables the path;
        #: every query then rescans in full, the pre-incremental
        #: behaviour).  Never persisted: a restored database starts cold.
        self.accumulator_cache: AccumulatorCache | None = (
            AccumulatorCache(max_cached_queries) if incremental else None
        )
        #: Round-robin placement of every view's (and cache's) rows — a
        #: pure function of public lengths, so the layout adds no leakage
        #: beyond the already-public total sizes.
        self.shard_layout = ShardLayout(n_shards)
        #: Parallel scan engine answering view-scan plans one shard per
        #: worker (thread or process backend, ``scan_backend``-selected);
        #: byte-identical to the serial executor in every backend.
        self.scan_executor = ParallelScanExecutor(
            max_workers=scan_workers, backend=scan_backend
        )
        self.runtime = runtime or MPCRuntime(seed=seed, cost_model=cost_model)
        # One ledger for every view's releases; segments are namespaced
        # per view.  Its parallel/sequential compositions are per-release
        # bounds over the *transformed* streams — the record-level number
        # across views is :meth:`realized_epsilon` (Theorem 3), since a
        # record over shared tables feeds several views' segments.
        self.accountant = PrivacyAccountant()
        #: owners' plaintext mirror (ground truth scoring only)
        self.logical = GrowingDatabase()
        #: physical secret-shared base tables — one per relation, shared
        #: by every view registered over it
        self.tables: dict[str, OutsourcedTable] = {}
        self.views: dict[str, ViewRuntime] = {}
        self.groups: dict[tuple, TransformGroup] = {}
        self.scheduler = StepScheduler(self.groups, self.views)
        self.planner = DatabasePlanner(self, multiplicity=multiplicity_hint)
        #: database-level query log (every planner-routed query)
        self.metrics = MetricLog()
        #: server-side randomness for noisy query releases.  Kept apart
        #: from the protocol servers' streams so read-side traffic never
        #: perturbs the deterministic ingestion-state evolution; captured
        #: by :mod:`repro.server.persistence` so a restored database
        #: continues the identical noise stream.
        self.query_noise_gen = spawn(seed, "query-noise")
        self._registrations: list[ViewRegistration] = []
        self._allocation: dict[str, float] = {}
        self._finalized = False
        self._state_version = 0
        self._query_seq = 0
        #: tenant -> ε cap for per-tenant ledgers.  Empty = single-tenant
        #: deployment; nothing here changes realized ε or noise draws —
        #: tenant attribution only extends the *segment key* of a spend.
        self.tenant_budgets: dict[str, float] = {}

    # -- registration -----------------------------------------------------------
    def register_table(self, name: str, schema: Schema) -> None:
        """Declare one shared base relation (idempotent when consistent)."""
        existing = self.tables.get(name)
        if existing is not None:
            if existing.schema != schema:
                raise SchemaError(
                    f"table {name!r} already registered with schema "
                    f"{existing.schema.fields}, got {schema.fields}"
                )
            return
        self.tables[name] = OutsourcedTable(schema, name)
        self.logical.create_table(name, schema)

    def register_view(self, registration: ViewRegistration) -> str:
        """Register one materialized view; returns its name.

        All views must be registered before the first upload — the ε
        allocation across DP views is computed once, when the deployment
        goes live, exactly like the paper's per-instance ε is fixed at
        setup.
        """
        if self._finalized:
            raise ConfigurationError(
                "views must be registered before the first upload/step/query"
            )
        vd = registration.view_def
        if vd.name in {r.view_def.name for r in self._registrations}:
            raise ConfigurationError(f"view {vd.name!r} already registered")
        self.register_table(vd.probe_table, vd.probe_schema)
        self.register_table(vd.driver_table, vd.driver_schema)
        self._registrations.append(registration)
        return vd.name

    # -- finalization -----------------------------------------------------------
    def finalize(self) -> None:
        if self._finalized:
            return
        if not self._registrations:
            raise ConfigurationError("register at least one view before use")
        self._finalized = True
        self._allocation = self._allocate_epsilon()
        for spec in self._registrations:
            self._wire(spec)

    def finalize_with_allocation(self, allocation: Mapping[str, float]) -> None:
        """Wire registered views against a previously computed ε split.

        The restore path of :mod:`repro.server.persistence` uses this to
        finalize a freshly constructed database with the *exact* split
        the snapshotted deployment went live with, instead of re-running
        the grid search (which is deterministic, but replaying it would
        couple restore correctness to solver internals).
        """
        if self._finalized:
            raise ConfigurationError(
                "finalize_with_allocation must run before any upload/step/query"
            )
        if not self._registrations:
            raise ConfigurationError("register at least one view before use")
        dp_names = {
            s.view_def.name for s in self._registrations if s.mode in DP_MODES
        }
        if set(allocation) != dp_names:
            raise ConfigurationError(
                f"allocation names {sorted(allocation)} do not match the "
                f"registered DP views {sorted(dp_names)}"
            )
        self._finalized = True
        self._allocation = {name: float(eps) for name, eps in allocation.items()}
        for spec in self._registrations:
            self._wire(spec)

    def _allocate_epsilon(self) -> dict[str, float]:
        """Split the total ε across DP views via Eq. 15's grid search."""
        dp_specs = [s for s in self._registrations if s.mode in DP_MODES]
        if not dp_specs:
            return {}
        operators = [
            view_operator_spec(
                s.view_def.name,
                s.view_def.budget,
                s.updates_hint,
                s.size_hint,
            )
            for s in dp_specs
        ]
        allocation, _efficiency = allocate_budget(
            operators, self.total_epsilon, grid_steps=self.grid_steps
        )
        return {
            spec.view_def.name: eps for spec, eps in zip(dp_specs, allocation)
        }

    def _wire(self, spec: ViewRegistration) -> None:
        vd = spec.view_def
        signature = transform_signature(vd, spec.join_impl)
        group = self.groups.get(signature)
        if group is None:
            group = TransformGroup(signature, vd)
            self.groups[signature] = group
        cache = SecureCache(vd.view_schema, layout=self.shard_layout)
        view = MaterializedView(vd.view_schema, layout=self.shard_layout)
        epsilon = self._allocation.get(vd.name, 0.0)

        counter: SharedCounter | None = None
        policy = None
        flusher: CacheFlusher | None = None
        if spec.mode in TRANSFORM_MODES:
            group.ensure_transform(self.runtime, spec.join_impl)
            counter = group.claim_counter()
            group.sinks.append(cache)
        if spec.mode == "dp-timer":
            policy = SDPTimer(
                self.runtime,
                counter,
                epsilon,
                vd.budget,
                spec.timer_interval,
                self.accountant,
                label=vd.name,
            )
            flusher = CacheFlusher(
                self.runtime, spec.flush_interval, spec.flush_size
            )
        elif spec.mode == "dp-ant":
            policy = SDPANT(
                self.runtime,
                counter,
                epsilon,
                vd.budget,
                spec.ant_threshold,
                self.accountant,
                label=vd.name,
            )
            flusher = CacheFlusher(
                self.runtime, spec.flush_interval, spec.flush_size
            )
        elif spec.mode == "ep":
            policy = ExhaustivePaddingSync(self.runtime, counter)
        elif spec.mode == "otm":
            policy = OneTimeMaterialization()

        vr = ViewRuntime(
            name=vd.name,
            view_def=vd,
            mode=spec.mode,
            epsilon=epsilon,
            group=group,
            cache=cache,
            view=view,
            counter=counter,
            policy=policy,
            flusher=flusher,
        )
        group.member_names.append(vd.name)
        self.views[vd.name] = vr

    # -- owner side -------------------------------------------------------------
    def upload(
        self,
        time: int,
        batches: Mapping[str, RecordBatch] | Iterable[tuple[str, RecordBatch]],
    ) -> None:
        """Owners secret-share this step's padded batches, **once each**.

        ``batches`` maps relation name → padded batch (or an ordered
        sequence of pairs).  Each batch is shared and appended to the
        physical store exactly once; every transform group over the
        relation then scopes the same shares through its own budget
        wrapper — no per-view re-upload, no share duplication.
        """
        self.finalize()
        items = batches.items() if isinstance(batches, Mapping) else batches
        for name, batch in items:
            store = self.tables.get(name)
            if store is None:
                raise SchemaError(
                    f"no registered base table {name!r}; known tables: "
                    f"{sorted(self.tables)}"
                )
            shared = self.runtime.owner_share_table(
                batch.schema, batch.rows, batch.is_real.astype("uint32")
            )
            store.append_batch(shared, time)
            real = batch.real_rows()
            if len(real):
                self.logical.insert(time, name, real)
            for group in self.groups.values():
                group.register_upload(name, shared, time, len(batch))
        self._state_version += 1

    # -- server step ------------------------------------------------------------
    def step(self, time: int) -> DatabaseStepReport:
        """Run one scheduled step: shared Transforms, per-view policies."""
        self.finalize()
        report = self.scheduler.run_step(time)
        self._state_version += 1
        return report

    @property
    def state_version(self) -> int:
        """Monotone counter bumped whenever public sizes may change.

        Uploads grow the outsourced stores, steps grow the views — both
        invalidate every cached cost comparison, so the planner keys its
        plan cache on this counter.
        """
        return self._state_version

    # -- sharding ---------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Public shard count every view and cache is partitioned into."""
        return self.shard_layout.n_shards

    def reshard(self, n_shards: int) -> None:
        """Re-partition every view and cache under a new shard count.

        Entirely share-local (gather then round-robin scatter with
        public indices): no protocol runs, no randomness is consumed,
        and no answer, gate charge, or ε changes — only the parallelism
        available to subsequent scans.  Restoring a v1 (single-shard)
        snapshot and calling ``reshard(8)`` is the upgrade path to a
        sharded deployment.
        """
        self.finalize()
        layout = ShardLayout(n_shards)
        for vr in self.views.values():
            vr.view.reshard(layout)
            vr.cache.reshard(layout)
        self.shard_layout = layout
        # Resharding re-scatters every row: cached per-shard prefixes no
        # longer describe any shard's content.  The containers' epoch
        # bump already fails their validity checks; dropping them here
        # keeps the gauges honest and frees the memory immediately.
        if self.accumulator_cache is not None:
            self.accumulator_cache.invalidate()
        # Shard counts feed the planner's wall-clock estimates.
        self._state_version += 1

    @property
    def scan_backend(self) -> str:
        """Requested executor backend (``auto`` resolves per view)."""
        return self.scan_executor.backend

    def set_scan_backend(
        self, backend: str, scan_workers: int | None = None
    ) -> None:
        """Switch the view-scan execution backend at runtime.

        Purely operational: answers, gate totals, and realized ε are
        backend-invariant (the equivalence suite pins this), so flipping
        a restored or live deployment between ``thread`` and ``process``
        changes nothing but host wall clock.  Invalidates cached plans —
        they record the resolved backend.  Switching away from
        ``"remote"`` disconnects the worker fleet.
        """
        old_remote = self.scan_executor.remote
        self.scan_executor = ParallelScanExecutor(
            max_workers=scan_workers, backend=backend
        )
        if old_remote is not None:
            old_remote.close()
        self._state_version += 1

    def set_remote_workers(
        self,
        endpoints,
        replication: int = 2,
        scan_workers: int | None = None,
        heartbeat_interval: float = 1.0,
        token: str | None = None,
    ) -> None:
        """Scatter view scans to a fleet of shard-worker daemons.

        ``endpoints`` is a list of
        :class:`~repro.dist.WorkerEndpoint` (or a ``"host:port,…"``
        string).  Connects the coordinator (requiring at least one live
        worker), then swaps the executor to ``backend="remote"``.  Like
        every backend switch this is purely operational — the fleet runs
        the identical scan kernel under the identical cost model, so
        answers, gate totals, and realized ε do not move.
        """
        from ..dist import RemoteScanBackend, parse_worker_endpoints

        if isinstance(endpoints, str):
            endpoints = parse_worker_endpoints(endpoints)
        remote = RemoteScanBackend(
            endpoints,
            replication=replication,
            heartbeat_interval=heartbeat_interval,
            token=token,
        ).start()
        old_remote = self.scan_executor.remote
        self.scan_executor = ParallelScanExecutor(
            max_workers=scan_workers, backend="remote", remote=remote
        )
        if old_remote is not None:
            old_remote.close()
        self._state_version += 1

    def remote_worker_stats(self) -> dict:
        """Per-worker fleet gauges (``{}`` when not running remote)."""
        remote = self.scan_executor.remote
        if remote is None:
            return {}
        return remote.worker_stats()

    def close_remote(self) -> None:
        """Disconnect the worker fleet, if any (idempotent)."""
        remote = self.scan_executor.remote
        if remote is not None:
            remote.close()

    # -- incremental execution --------------------------------------------------
    @property
    def incremental(self) -> bool:
        """Whether repeat view scans reuse cached prefix accumulators."""
        return self.accumulator_cache is not None

    def set_incremental(
        self, enabled: bool, max_cached_queries: int = DEFAULT_MAX_CACHED_QUERIES
    ) -> None:
        """Toggle incremental execution at runtime (e.g. after a resume).

        Purely operational, like :meth:`set_scan_backend`: answers,
        realized ε, and per-row gate formulas are identical either way —
        only whether repeat queries recharge already-scanned prefixes
        changes.  Disabling drops every cached accumulator.
        """
        if enabled and self.accumulator_cache is None:
            self.accumulator_cache = AccumulatorCache(max_cached_queries)
        elif not enabled:
            self.accumulator_cache = None

    def incremental_cache_stats(self) -> dict:
        """Hit/miss/evict gauges of the accumulator cache (``{}`` when off)."""
        if self.accumulator_cache is None:
            return {}
        return self.accumulator_cache.stats()

    # -- analyst side -----------------------------------------------------------
    def query(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        time: int,
        predicate_words: int = 1,
        plan: QueryPlan | None = None,
        epsilon: float | None = None,
        tenant: str | None = None,
    ) -> DatabaseQueryResult:
        """Plan, execute, and score one logical query (any AST form).

        Every query form — the unified :class:`~repro.query.ast.
        LogicalQuery` or a deprecated single-aggregate shim — normalizes
        through :func:`~repro.query.ast.as_logical` and runs the same
        compiled pipeline: plan (cached by structure), then **one**
        oblivious pass computing every aggregate of every group, either
        over the cheapest matching view or via the NM join fallback.

        ``plan`` lets a caller that already planned the query (e.g. the
        serving runtime, which plans before taking the target view's
        session guard) skip re-planning.  ``epsilon`` releases the
        answers with per-aggregate Laplace noise: the budget splits
        across the query's aggregates by sensitivity
        (:func:`repro.dp.allocation.split_query_epsilon`), each spend is
        composed in the shared accountant, and the observation scores the
        *released* (noisy) values.  ``tenant`` attributes the spends to
        that tenant's ledger and enforces its ε cap (if one is set)
        **before** the scan runs or any noise is drawn, so a refused
        query leaves the noise stream and every ledger untouched.
        """
        self.finalize()
        if epsilon is not None and tenant is not None:
            check_tenant_budget(self.accountant, self.tenant_budgets, tenant, epsilon)
        lq = as_logical(query)
        if plan is None:
            plan = self.planner.plan(lq, predicate_words=predicate_words)
        logical = self._logical_answer_query(lq, time)
        scan_report = None
        if plan.kind == VIEW_SCAN:
            vr = self.views[plan.view_name]
            answers, qet, scan_report = self.scan_executor.execute_detailed(
                self.runtime,
                time,
                vr.view,
                plan.view_query,
                self.accumulator_cache,
            )
        else:
            spec = self._join_spec(lq)
            answers, qet = execute_nm_query(
                self.runtime,
                time,
                self.tables[lq.probe_table],
                self.tables[lq.driver_table],
                spec,
                lq,
            )
        epsilon_spent = 0.0
        if epsilon is not None:
            answers = self._noise_answers(lq, answers, epsilon, tenant=tenant)
            epsilon_spent = epsilon
        obs = QueryObservation(
            time=time,
            logical_answer=float(logical.rows[0][0]),
            view_answer=float(answers.rows[0][0]),
            qet_seconds=qet,
        )
        self.metrics.record_query(obs)
        if plan.view_name is not None:
            self.views[plan.view_name].metrics.record_query(obs)
        return DatabaseQueryResult(
            plan=plan,
            observation=obs,
            answers=answers,
            logical_answers=logical,
            epsilon_spent=epsilon_spent,
            scan_report=scan_report,
        )

    def query_count(
        self, query: LogicalJoinCountQuery, time: int
    ) -> DatabaseQueryResult:
        return self.query(query, time)

    def query_sum(
        self, query: LogicalJoinSumQuery, time: int
    ) -> DatabaseQueryResult:
        return self.query(query, time)

    def _noise_answers(
        self,
        lq: LogicalQuery,
        answers: QueryAnswer,
        epsilon: float,
        tenant: str | None = None,
    ) -> QueryAnswer:
        """Laplace-release one query's answer table under ``epsilon``.

        One mechanism per *released* aggregate over the same scanned
        data, so the per-aggregate slices compose sequentially
        (Σ ε_i = ε, split by sensitivity).  Within one aggregate, the
        GROUP BY cells also compose sequentially — a record may feed
        pairs into several cells through different join partners, so the
        parallel-composition shortcut would under-count — giving each
        cell ε_i / n_groups.  An AVG whose SUM column and a COUNT are
        both part of the same query is **derived** from their noisy
        cells (free post-processing) instead of spending a slice of its
        own; a standalone AVG is noised directly at its declared
        sensitivity.
        """
        aggregates = lq.aggregates
        count_idx = next(
            (i for i, a in enumerate(aggregates) if a.kind == "count"), None
        )
        derived: dict[int, tuple[int, int]] = {}
        if count_idx is not None:
            for i, agg in enumerate(aggregates):
                if agg.kind != "avg":
                    continue
                sum_idx = next(
                    (
                        j
                        for j, b in enumerate(aggregates)
                        if b.kind == "sum"
                        and (b.table, b.column) == (agg.table, agg.column)
                    ),
                    None,
                )
                if sum_idx is not None:
                    derived[i] = (sum_idx, count_idx)
        released = [i for i in range(len(aggregates)) if i not in derived]
        split = split_query_epsilon(
            [aggregates[i].sensitivity for i in released], epsilon
        )
        self._query_seq += 1
        segment: tuple = ("query", self._query_seq)
        if tenant is not None:
            # Extending the key (never the ε values) keeps every global
            # composition and the drawn noise byte-identical to the
            # single-tenant path while attributing the spend to a ledger.
            segment = tenant_scoped_segment(segment, tenant)
        n_groups = len(answers.rows)
        noisy_rows = [list(row) for row in answers.rows]
        for a, eps_i in zip(released, split):
            agg = aggregates[a]
            scale = agg.sensitivity * n_groups / eps_i
            for g in range(n_groups):
                noisy_rows[g][a] = float(noisy_rows[g][a]) + laplace_noise(
                    self.query_noise_gen, scale
                )
            self.accountant.spend(f"query:{agg.output_name}", eps_i, segment)
        for a, (sum_idx, cnt_idx) in derived.items():
            for g in range(n_groups):
                noisy_count = noisy_rows[g][cnt_idx]
                noisy_rows[g][a] = (
                    noisy_rows[g][sum_idx] / noisy_count
                    if noisy_count > 0
                    else 0.0
                )
        return QueryAnswer(
            columns=answers.columns,
            group_keys=answers.group_keys,
            rows=tuple(tuple(row) for row in noisy_rows),
        )

    # -- registered-view execution (the engine façade's direct path) -----------
    def answer_registered_count(
        self, view_name: str, time: int, query: ViewCountQuery | None = None
    ) -> QueryObservation:
        """Answer the registered COUNT of one view, bypassing the planner.

        NM-mode views recompute the join over the group's store scopes;
        everything else scans the materialized view.  This is exactly the
        single-view engine's query path.
        """
        self.finalize()
        vr = self.views[view_name]
        vd = vr.view_def
        probe_rows = self.logical.instance_at(vd.probe_table, time)
        driver_rows = self.logical.instance_at(vd.driver_table, time)
        logical_answer = vd.logical_join_count(probe_rows, driver_rows)
        if vr.mode == "nm":
            answer, qet = execute_nm_count(
                self.runtime,
                time,
                vr.group.probe_scope,
                vr.group.driver_scope,
                vd,
            )
        else:
            answer, qet = execute_view_count(
                self.runtime, time, vr.view, query or ViewCountQuery(vd.name)
            )
        obs = QueryObservation(
            time=time,
            logical_answer=float(logical_answer),
            view_answer=float(answer),
            qet_seconds=qet,
        )
        vr.metrics.record_query(obs)
        return obs

    def answer_registered_sum(
        self,
        view_name: str,
        time: int,
        sum_table: str,
        sum_column: str,
        query: ViewSumQuery | None = None,
    ) -> QueryObservation:
        """SUM counterpart of :meth:`answer_registered_count`."""
        self.finalize()
        vr = self.views[view_name]
        vd = vr.view_def
        probe_rows = self.logical.instance_at(vd.probe_table, time)
        driver_rows = self.logical.instance_at(vd.driver_table, time)
        logical_answer = vd.logical_join_sum(
            probe_rows, driver_rows, sum_table, sum_column
        )
        if vr.mode == "nm":
            answer, qet = execute_nm_sum(
                self.runtime,
                time,
                vr.group.probe_scope,
                vr.group.driver_scope,
                vd,
                sum_table,
                sum_column,
            )
        else:
            if query is None:
                from ..query.rewrite import sum_view_column

                logical_query = LogicalJoinSumQuery.for_view(vd, sum_table, sum_column)
                query = ViewSumQuery(
                    vd.name, column=sum_view_column(logical_query, vd)
                )
            answer, qet = execute_view_sum(self.runtime, time, vr.view, query)
        obs = QueryObservation(
            time=time,
            logical_answer=float(logical_answer),
            view_answer=float(answer),
            qet_seconds=qet,
        )
        vr.metrics.record_query(obs)
        return obs

    # -- privacy ----------------------------------------------------------------
    def epsilon_allocation(self) -> dict[str, float]:
        """Per-DP-view ε split chosen by :func:`repro.dp.allocation`."""
        self.finalize()
        return dict(self._allocation)

    def view_realized_epsilon(self, view_name: str) -> float:
        """Theorem-3 realized ε of one view against its allocated slice."""
        self.finalize()
        vr = self.views[view_name]
        if vr.mode not in DP_MODES:
            return 0.0
        per_release = vr.epsilon / vr.view_def.budget
        contributions = vr.group.ledger.theorem3_contributions(per_release)
        return theorem3_epsilon(contributions)

    def query_epsilon(self) -> float:
        """Total ε spent by noisy query releases (0 for pre-noise runs).

        Every aggregate of every ε-released query spends its slice into
        the shared accountant under a per-invocation ``("query", seq)``
        segment; queries touch the whole scanned state, so across
        invocations they compose sequentially — a plain sum.
        """
        return sum(
            e.epsilon
            for e in self.accountant.events
            if isinstance(e.segment, tuple) and e.segment[:1] == ("query",)
        )

    # -- per-tenant ledgers ------------------------------------------------------
    def set_tenant_budgets(self, budgets: Mapping[str, float]) -> None:
        """Install (validated) per-tenant ε caps for noisy query releases.

        Budgets are declarative config, not spend state: the spends
        themselves live in the shared accountant's events (tenant-scoped
        segment keys), so installing the same budgets after a restore
        recovers every ledger exactly — there is no second store to
        double-spend from.
        """
        self.tenant_budgets = validate_budgets(budgets)

    def tenant_epsilons(self) -> dict[str, float]:
        """Spent query-ε per tenant (derived from the accountant)."""
        return self.accountant.tenant_epsilons()

    def realized_epsilon(self) -> float:
        """Composed end-to-end ε across every view of the database.

        Views observing the *same* base tables compose sequentially (a
        record feeds each view family's Transform, so its losses add —
        Theorem 3 over the union of transformation families); views over
        disjoint base tables compose in parallel (a record lives in one
        component only, so the database-wide loss is the worst
        component's total).  Noisy query releases add sequentially on
        top (:meth:`query_epsilon`).  For a run respecting the
        allocation and issuing no noisy queries this never exceeds
        ``total_epsilon``.
        """
        self.finalize()
        components = self._table_components()
        worst = 0.0
        for tables in components:
            component_eps = sum(
                self.view_realized_epsilon(vr.name)
                for vr in self.views.values()
                if vr.view_def.probe_table in tables
                or vr.view_def.driver_table in tables
            )
            worst = max(worst, component_eps)
        return worst + self.query_epsilon()

    def _table_components(self) -> list[set[str]]:
        """Connected components of base tables linked by registered views."""
        components: list[set[str]] = []
        for vr in self.views.values():
            linked = {vr.view_def.probe_table, vr.view_def.driver_table}
            merged = [c for c in components if c & linked]
            for c in merged:
                components.remove(c)
                linked |= c
            components.append(linked)
        return components

    # -- introspection ----------------------------------------------------------
    @property
    def registrations(self) -> tuple[ViewRegistration, ...]:
        """Every registered view spec, in registration order."""
        return tuple(self._registrations)

    def upload_counts(self) -> dict[str, int]:
        """Physical batches shared per base table (one per upload step)."""
        return {name: len(store.batches) for name, store in self.tables.items()}

    # -- helpers ----------------------------------------------------------------
    def _join_spec(
        self, query: LogicalQuery | LogicalJoinQuery
    ) -> JoinViewDefinition:
        """A transient join definition for NM execution of ``query``."""
        join = as_logical(query).join
        return JoinViewDefinition(
            name=f"nm:{join.probe_table}⋈{join.driver_table}",
            probe_table=join.probe_table,
            probe_schema=self.tables[join.probe_table].schema,
            probe_key=join.probe_key,
            probe_ts=join.probe_ts,
            driver_table=join.driver_table,
            driver_schema=self.tables[join.driver_table].schema,
            driver_key=join.driver_key,
            driver_ts=join.driver_ts,
            window_lo=join.window_lo,
            window_hi=join.window_hi,
            omega=1,
            budget=1,
        )

    def _logical_answer_query(
        self, lq: LogicalQuery, time: int
    ) -> QueryAnswer:
        """Ground-truth answer table over the plaintext mirror D_t.

        Materializes the exact (truncation-free) join rows in view-schema
        layout and folds the *same* lowered plan the secure paths
        execute, so logical and served answers are aggregated through
        identical code.
        """
        spec = self._join_spec(lq)
        probe_rows = self.logical.instance_at(lq.probe_table, time)
        driver_rows = self.logical.instance_at(lq.driver_table, time)
        joined = spec.logical_join_rows(probe_rows, driver_rows)
        return aggregate_plain(
            lower_to_view_scan(lq, spec), spec.view_schema, joined
        )
