"""Database-bound query planning: live candidates, live store sizes.

:mod:`repro.query.planner` scores plans over explicit candidate
descriptions; this module binds that core to a running
:class:`~repro.server.database.IncShrinkDatabase` — enumerating the
registered views that can answer a logical query, reading the public
padded sizes the cost formulas need, and deciding whether the NM
fallback is on the table (either globally enabled, or because an
NM-mode view was explicitly registered for this query class).

Planned queries are cached **by query structure**: the unified
:class:`~repro.query.ast.LogicalQuery` AST is fully hashable (join spec,
aggregate list, GROUP BY domain, structural predicate), so a dashboard
re-issuing the same query shape pays the candidate enumeration and cost
scoring once per database state.  The cache is invalidated wholesale
whenever the database's :attr:`~repro.server.database.IncShrinkDatabase.
state_version` advances (uploads and steps change the public sizes every
cost formula reads), and it is deliberately **not** persisted — a
restored database replans from its restored sizes
(:mod:`repro.server.persistence` round-trips plan-cache-free).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.errors import SchemaError
from ..query.ast import LogicalJoinQuery, LogicalQuery, as_logical
from ..query.planner import QueryPlan, ViewCandidate, plan_query
from ..query.rewrite import can_answer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .database import IncShrinkDatabase

#: Modes whose materialized view is a usable scan target.  NM views have
#: no view at all; OTM views are frozen at their (empty) setup state and
#: would win every cost comparison while answering nothing.
SCANNABLE_MODES = ("dp-timer", "dp-ant", "ep")


class DatabasePlanner:
    """Routes logical queries over one database's registered views."""

    def __init__(self, database: "IncShrinkDatabase", multiplicity: float = 1.0) -> None:
        self._db = database
        self.multiplicity = multiplicity
        self._cache: dict = {}
        self._cache_version: int | None = None
        self.cache_hits = 0
        self.cache_misses = 0

    def candidates(self, query: LogicalQuery | LogicalJoinQuery) -> list[ViewCandidate]:
        """Every registered view whose join structure answers ``query``.

        Each candidate carries its view's public shard count so the core
        planner can price the parallelism-aware wall-clock estimate
        (:meth:`repro.mpc.cost_model.CostModel.parallel_seconds`), plus
        the execution backend the scan executor resolved for it (purely
        informational: simulated seconds are backend-independent).
        """
        return [
            ViewCandidate(
                vr.view_def,
                len(vr.view),
                n_shards=vr.view.n_shards,
                scan_backend=self._db.scan_executor.backend_for(vr.view),
            )
            for vr in self._db.views.values()
            if vr.mode in SCANNABLE_MODES and can_answer(query, vr.view_def)
        ]

    def nm_allowed(self, query: LogicalQuery | LogicalJoinQuery) -> bool:
        if self._db.nm_fallback:
            return True
        return any(
            vr.mode == "nm" and can_answer(query, vr.view_def)
            for vr in self._db.views.values()
        )

    def plan(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        predicate_words: int = 1,
    ) -> QueryPlan:
        """Choose the cheapest plan for ``query`` at the current sizes.

        Structurally identical queries hit the plan cache until the next
        upload/step bumps the database's state version.  Cache access is
        benign under concurrent read sessions: a race costs at most one
        redundant (deterministic, identical) planning pass.
        """
        db = self._db
        lq = as_logical(query)
        for table in (lq.probe_table, lq.driver_table):
            if table not in db.tables:
                raise SchemaError(
                    f"query references unregistered table {table!r}; known "
                    f"tables: {sorted(db.tables)}"
                )
        version = db.state_version
        if version != self._cache_version:
            self._cache = {}
            self._cache_version = version
        key = (lq.structure_key(), predicate_words)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        probe_store = db.tables[lq.probe_table]
        driver_store = db.tables[lq.driver_table]
        plan = plan_query(
            lq,
            self.candidates(lq),
            probe_store.total_rows,
            driver_store.total_rows,
            db.runtime.cost_model,
            nm_allowed=self.nm_allowed(lq),
            multiplicity=self.multiplicity,
            predicate_words=predicate_words,
            probe_width=probe_store.schema.width,
            driver_width=driver_store.schema.width,
        )
        self._cache[key] = plan
        return plan

    def cache_info(self) -> dict:
        """Hit/miss counters and current cache size (benchmark surface)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "version": self._cache_version,
        }
