"""Database-bound query planning: live candidates, live store sizes.

:mod:`repro.query.planner` scores plans over explicit candidate
descriptions; this module binds that core to a running
:class:`~repro.server.database.IncShrinkDatabase` — enumerating the
registered views that can answer a logical query, reading the public
padded sizes the cost formulas need, and deciding whether the NM
fallback is on the table (either globally enabled, or because an
NM-mode view was explicitly registered for this query class).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common.errors import SchemaError
from ..query.ast import LogicalJoinQuery
from ..query.planner import QueryPlan, ViewCandidate, plan_query
from ..query.rewrite import can_answer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .database import IncShrinkDatabase

#: Modes whose materialized view is a usable scan target.  NM views have
#: no view at all; OTM views are frozen at their (empty) setup state and
#: would win every cost comparison while answering nothing.
SCANNABLE_MODES = ("dp-timer", "dp-ant", "ep")


class DatabasePlanner:
    """Routes logical queries over one database's registered views."""

    def __init__(self, database: "IncShrinkDatabase", multiplicity: float = 1.0) -> None:
        self._db = database
        self.multiplicity = multiplicity

    def candidates(self, query: LogicalJoinQuery) -> list[ViewCandidate]:
        """Every registered view whose join structure answers ``query``."""
        return [
            ViewCandidate(vr.view_def, len(vr.view))
            for vr in self._db.views.values()
            if vr.mode in SCANNABLE_MODES and can_answer(query, vr.view_def)
        ]

    def nm_allowed(self, query: LogicalJoinQuery) -> bool:
        if self._db.nm_fallback:
            return True
        return any(
            vr.mode == "nm" and can_answer(query, vr.view_def)
            for vr in self._db.views.values()
        )

    def plan(self, query: LogicalJoinQuery, predicate_words: int = 1) -> QueryPlan:
        """Choose the cheapest plan for ``query`` at the current sizes."""
        db = self._db
        for table in (query.probe_table, query.driver_table):
            if table not in db.tables:
                raise SchemaError(
                    f"query references unregistered table {table!r}; known "
                    f"tables: {sorted(db.tables)}"
                )
        probe_store = db.tables[query.probe_table]
        driver_store = db.tables[query.driver_table]
        return plan_query(
            query,
            self.candidates(query),
            probe_store.total_rows,
            driver_store.total_rows,
            db.runtime.cost_model,
            nm_allowed=self.nm_allowed(query),
            multiplicity=self.multiplicity,
            predicate_words=predicate_words,
            probe_width=probe_store.schema.width,
            driver_width=driver_store.schema.width,
        )
