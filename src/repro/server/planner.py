"""Database-bound query planning: live candidates, live store sizes.

:mod:`repro.query.planner` scores plans over explicit candidate
descriptions; this module binds that core to a running
:class:`~repro.server.database.IncShrinkDatabase` — enumerating the
registered views that can answer a logical query, reading the public
padded sizes the cost formulas need, and deciding whether the NM
fallback is on the table (either globally enabled, or because an
NM-mode view was explicitly registered for this query class).

Planned queries are cached **by query structure**: the unified
:class:`~repro.query.ast.LogicalQuery` AST is fully hashable (join spec,
aggregate list, GROUP BY domain, structural predicate), so a dashboard
re-issuing the same query shape pays the candidate enumeration and cost
scoring once per relevant state change.  Each cached plan carries a
*validity tuple* — the answering views' public
:attr:`~repro.storage.sharded_container.ShardedTableContainer.
content_version`\\ s and incremental cached-row counts, the base-store
sizes the NM estimate reads, and the requested scan backend — and is
reused exactly while that tuple is unchanged.  Keying on the inputs the
cost formulas actually read (instead of the database-wide
``state_version``) means uploads into view A's tables no longer evict
plans for an unrelated view B.  The cache is deliberately **not**
persisted — a restored database replans from its restored sizes
(:mod:`repro.server.persistence` round-trips plan-cache-free).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from ..common.errors import SchemaError
from ..query.ast import LogicalJoinQuery, LogicalQuery, as_logical
from ..query.planner import QueryPlan, ViewCandidate, plan_query
from ..query.rewrite import can_answer, lower_to_view_scan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .database import IncShrinkDatabase

#: Modes whose materialized view is a usable scan target.  NM views have
#: no view at all; OTM views are frozen at their (empty) setup state and
#: would win every cost comparison while answering nothing.
SCANNABLE_MODES = ("dp-timer", "dp-ant", "ep")

#: Bound on retained plan-cache entries (distinct query structures).
#: Entries now survive unrelated state changes, so without a cap a
#: long-lived server fed ever-new query shapes would grow the dict
#: forever; LRU eviction keeps the hot dashboard shapes resident.
PLAN_CACHE_MAX_ENTRIES = 256


class DatabasePlanner:
    """Routes logical queries over one database's registered views."""

    def __init__(self, database: "IncShrinkDatabase", multiplicity: float = 1.0) -> None:
        self._db = database
        self.multiplicity = multiplicity
        self._cache: "OrderedDict[tuple, tuple[tuple, QueryPlan]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def _cached_rows(self, query: LogicalQuery | LogicalJoinQuery, vr) -> int:
        """Rows an incremental scan of ``vr.view`` would skip for ``query``."""
        cache = self._db.accumulator_cache
        if cache is None:
            return 0
        lq = as_logical(query)
        return cache.cached_rows(vr.view, lower_to_view_scan(lq, vr.view_def))

    def candidates(self, query: LogicalQuery | LogicalJoinQuery) -> list[ViewCandidate]:
        """Every registered view whose join structure answers ``query``.

        Each candidate carries its view's public shard count so the core
        planner can price the parallelism-aware wall-clock estimate
        (:meth:`repro.mpc.cost_model.CostModel.parallel_seconds`), the
        execution backend the scan executor resolved for it (purely
        informational: simulated seconds are backend-independent), and
        the rows a warm accumulator-cache entry would let the scan skip
        (so warm view scans are priced at their suffix cost).
        """
        return [
            ViewCandidate(
                vr.view_def,
                len(vr.view),
                n_shards=vr.view.n_shards,
                scan_backend=self._db.scan_executor.backend_for(vr.view),
                cached_rows=self._cached_rows(query, vr),
            )
            for vr in self._db.views.values()
            if vr.mode in SCANNABLE_MODES and can_answer(query, vr.view_def)
        ]

    def _validity(self, lq: LogicalQuery) -> tuple:
        """Everything the cost comparison for ``lq`` actually reads.

        Per answering view: content version (covers size, shard count,
        reshard/restore) and the incremental cached-row count (a cold →
        warm transition changes the view's price without any content
        change).  Plus the base-store sizes the NM estimate reads and
        the requested scan backend.  A cached plan is reused iff this
        tuple is unchanged — so an upload into unrelated tables evicts
        nothing.
        """
        db = self._db
        views = tuple(
            (
                name,
                vr.view.content_version,
                self._cached_rows(lq, vr),
            )
            for name, vr in db.views.items()
            if vr.mode in SCANNABLE_MODES and can_answer(lq, vr.view_def)
        )
        return (
            views,
            db.tables[lq.probe_table].total_rows,
            db.tables[lq.driver_table].total_rows,
            db.scan_backend,
        )

    def nm_allowed(self, query: LogicalQuery | LogicalJoinQuery) -> bool:
        if self._db.nm_fallback:
            return True
        return any(
            vr.mode == "nm" and can_answer(query, vr.view_def)
            for vr in self._db.views.values()
        )

    def plan(
        self,
        query: LogicalQuery | LogicalJoinQuery,
        predicate_words: int = 1,
    ) -> QueryPlan:
        """Choose the cheapest plan for ``query`` at the current sizes.

        Structurally identical queries hit the plan cache while the
        inputs their cost comparison reads (:meth:`_validity`) are
        unchanged — uploads into other views' tables no longer evict
        them.  Cache access is benign under concurrent read sessions: a
        race costs at most one redundant (deterministic, identical)
        planning pass.
        """
        db = self._db
        lq = as_logical(query)
        for table in (lq.probe_table, lq.driver_table):
            if table not in db.tables:
                raise SchemaError(
                    f"query references unregistered table {table!r}; known "
                    f"tables: {sorted(db.tables)}"
                )
        key = (lq.structure_key(), predicate_words)
        validity = self._validity(lq)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == validity:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            return cached[1]
        self.cache_misses += 1
        probe_store = db.tables[lq.probe_table]
        driver_store = db.tables[lq.driver_table]
        plan = plan_query(
            lq,
            self.candidates(lq),
            probe_store.total_rows,
            driver_store.total_rows,
            db.runtime.cost_model,
            nm_allowed=self.nm_allowed(lq),
            multiplicity=self.multiplicity,
            predicate_words=predicate_words,
            probe_width=probe_store.schema.width,
            driver_width=driver_store.schema.width,
        )
        self._cache[key] = (validity, plan)
        self._cache.move_to_end(key)
        while len(self._cache) > PLAN_CACHE_MAX_ENTRIES:
            self._cache.popitem(last=False)
        return plan

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`plan` calls served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def cache_info(self) -> dict:
        """Hit/miss counters and current cache size (benchmark surface)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._cache),
            "hit_rate": self.hit_rate,
        }
