"""Per-step scheduling for the multi-view database.

One simulated step of an :class:`~repro.server.database.IncShrinkDatabase`
must run the Transform protocol **once per shared table pair** (more
precisely: once per *transform signature* — the join structure plus
truncation parameters that determine the circuit), fan its padded delta
out to every consuming view's secure cache, and then drive each view's
own update policy and flusher.  The scheduler owns that loop; the
database owns registration and queries.

A :class:`TransformGroup` is the unit of sharing: all views whose
definitions agree on (tables, keys, timestamps, window, ω, b, join
implementation) share one group — one ledger, one pair of store scopes,
one Transform circuit per step.  Views in one group may still run
*different* Shrink policies (e.g. an sDPTimer view next to an EP mirror
of the same join), so each consuming view keeps a private cardinality
counter that the shared Transform increments jointly and each policy
resets on its own schedule.

Sharding is transparent to the step loop: Shrink and flush outputs land
in the view through :meth:`~repro.storage.materialized_view.
MaterializedView.append`, which scatters each delta round-robin across
the view's shards by public position — the scheduler only *observes* the
resulting per-shard sizes (:attr:`DatabaseStepReport.shard_rows`) so
tests and benchmarks can assert the layout stays balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.budget import ContributionLedger
from ..core.counter import SharedCounter
from ..core.engine import StepReport
from ..core.transform import TransformProtocol, TransformReport
from ..core.view_def import JoinViewDefinition
from ..mpc.runtime import MPCRuntime
from ..sharing.shared_value import SharedTable
from ..storage.outsourced_table import OutsourcedTable
from ..storage.secure_cache import SecureCache

#: Modes whose views consume Transform output from their cache.
TRANSFORM_MODES = ("dp-timer", "dp-ant", "ep")


def transform_signature(view_def: JoinViewDefinition, join_impl: str) -> tuple:
    """Everything that determines the Transform circuit for a view.

    Two views with equal signatures materialize byte-identical padded
    deltas, so the servers run the circuit once and append the delta to
    both caches.
    """
    return (
        view_def.probe_table,
        view_def.driver_table,
        view_def.probe_key,
        view_def.driver_key,
        view_def.probe_ts,
        view_def.driver_ts,
        view_def.window_lo,
        view_def.window_hi,
        view_def.omega,
        view_def.budget,
        join_impl,
    )


class _FanoutSink:
    """Duck-typed cache target: append one Transform delta to N caches."""

    def __init__(self, caches: list[SecureCache]) -> None:
        self._caches = caches

    def append(self, delta: SharedTable) -> None:
        for cache in self._caches:
            cache.append(delta)


class TransformGroup:
    """Shared Transform state for all views with one signature."""

    def __init__(self, signature: tuple, view_def: JoinViewDefinition) -> None:
        self.signature = signature
        self.view_def = view_def
        #: Per-group budget scopes over the shared physical uploads: the
        #: same `SharedTable` objects (uploaded once) wrapped in
        #: group-local batches so contribution budgets drain per view
        #: family, not globally.
        self.probe_scope = OutsourcedTable(view_def.probe_schema, view_def.probe_table)
        self.driver_scope = OutsourcedTable(
            view_def.driver_schema, view_def.driver_table
        )
        self.ledger = ContributionLedger(view_def.omega, view_def.budget)
        self.transform: TransformProtocol | None = None
        self._counter_claimed = False
        self.sinks: list[SecureCache] = []
        self.member_names: list[str] = []
        self.last_report: TransformReport | None = None

    def ensure_transform(
        self, runtime: MPCRuntime, join_impl: str
    ) -> TransformProtocol:
        if self.transform is None:
            self.transform = TransformProtocol(
                runtime,
                self.view_def,
                self.probe_scope,
                self.driver_scope,
                self.ledger,
                join_impl=join_impl,
            )
        return self.transform

    def claim_counter(self) -> SharedCounter:
        """Hand out one cardinality counter per consuming policy."""
        assert self.transform is not None
        if not self._counter_claimed:
            self._counter_claimed = True
            return self.transform.counter
        extra = SharedCounter()
        self.transform.attach_counter(extra)
        return extra

    def register_upload(self, table_name: str, shared: SharedTable, time: int, n_rows: int) -> None:
        """Scope one already-shared physical batch into this group."""
        for role_table, scope in (
            (self.view_def.probe_table, self.probe_scope),
            (self.view_def.driver_table, self.driver_scope),
        ):
            if role_table == table_name:
                scope.append_batch(shared, time)
                self.ledger.register_batch(table_name, time, n_rows)


@dataclass
class DatabaseStepReport:
    """Aggregate of one database step: per-view reports plus totals."""

    time: int
    views: dict[str, StepReport] = field(default_factory=dict)
    transform_runs: int = 0
    transform_seconds: float = 0.0
    shrink_seconds: float = 0.0
    views_updated: int = 0
    #: public per-shard view sizes after this step (round-robin keeps
    #: every entry balanced to within one row)
    shard_rows: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def view(self, name: str) -> StepReport:
        return self.views[name]


class StepScheduler:
    """Drives Transform groups and per-view policies through one step."""

    def __init__(self, groups: dict[tuple, TransformGroup], views: dict) -> None:
        # Live references to the database's registries (insertion-ordered).
        self._groups = groups
        self._views = views

    def run_step(self, time: int) -> DatabaseStepReport:
        report = DatabaseStepReport(time=time)

        # Phase 1 — one Transform invocation per signature with fresh
        # driver data, fanned out to every consuming cache.
        for group in self._groups.values():
            group.last_report = None
            if group.transform is None:
                continue
            batches = group.driver_scope.batches
            if not batches or batches[-1].time != time:
                # No driver upload this step: nothing to transform for this
                # pair.  Policies below still run — Shrink schedules are
                # public and data-independent, so a timer tick or SVT check
                # fires (and spends its release budget) whether or not new
                # data arrived, exactly as a real deployment would.
                continue
            group.last_report = group.transform.run(time, _FanoutSink(group.sinks))
            report.transform_runs += 1
            report.transform_seconds += group.last_report.seconds

        # Phase 2 — every view's own policy and flusher, engine-identically.
        for vr in self._views.values():
            step = StepReport(time=time)
            t_rep = vr.group.last_report if vr.mode in TRANSFORM_MODES else None
            if t_rep is not None:
                step.transform_seconds = t_rep.seconds
                step.truncation_dropped = t_rep.dropped
                vr.metrics.transform_seconds.append(t_rep.seconds)
            if vr.policy is not None:
                s_rep = vr.policy.step(time, vr.cache, vr.view)
                if s_rep is not None:
                    step.shrink_seconds += s_rep.seconds
                    step.view_updated = True
                    step.deferred_real = s_rep.deferred_real
                    vr.metrics.shrink_seconds.append(s_rep.seconds)
                    vr.metrics.deferred_counts.append(s_rep.deferred_real)
            if vr.flusher is not None and vr.flusher.due(time):
                f_rep = vr.flusher.run(time, vr.cache, vr.view)
                step.flushed = True
                step.shrink_seconds += f_rep.seconds
                vr.metrics.shrink_seconds.append(f_rep.seconds)
            vr.metrics.view_size_rows.append(len(vr.view))
            vr.metrics.view_size_bytes.append(vr.view.byte_size)
            vr.metrics.cache_size_rows.append(len(vr.cache))
            report.shard_rows[vr.name] = vr.view.shard_lengths()
            report.views[vr.name] = step
            report.shrink_seconds += step.shrink_seconds
            if step.view_updated:
                report.views_updated += 1
        return report
